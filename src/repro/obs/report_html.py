"""The cross-run HTML dashboard: ``repro report --html``.

One self-contained static page — inline CSS, inline SVG sparklines
(:func:`repro.analysis.svg.sparkline_svg`), zero JavaScript and zero
external requests — summarising everything the run registry knows:

- an **overview table** of indexed runs (id, commit, seed, mode, status,
  links to each run's artifacts: report, metrics, trace, flamegraph
  stacks, event log);
- a **per-scenario drill-down**: the timing trend across runs as a
  sparkline plus a point table with the same regression verdicts as
  ``repro runs trend`` and the perf gate;
- a **plan quality & calibration section**: per-predicate-class q-error
  (p90) trends across runs as sparklines plus the calibration table
  (q-error p50/p90/max, misestimates, choice accuracy) aggregated from
  each run's ``plans.jsonl`` (see :mod:`repro.obs.planquality`).

Only artifacts that actually exist are linked (partial runs simply show
fewer links), so the report-smoke CI job can assert that **every** link
resolves.  Rendering is a pure function of the registry contents, which
is what makes the golden-structure test possible.
"""

from __future__ import annotations

import html
import os
import time
from pathlib import Path
from typing import Any

from repro.analysis.svg import sparkline_svg
from repro.obs.registry import DEFAULT_TOLERANCE, RunRegistry

REPORT_TITLE = "repro — cross-run observability report"

# Artifact filename -> link label, in display order.
_ARTIFACT_LABELS = (
    ("report.md", "report"),
    ("manifest.json", "manifest"),
    ("metrics.json", "metrics"),
    ("bench.json", "bench"),
    ("events.jsonl", "events"),
    ("plans.jsonl", "plans"),
    ("trace.json", "trace"),
    ("trace.folded", "flamegraph"),
    ("tables.json", "tables"),
)

_STYLE = """
body { font-family: -apple-system, 'Segoe UI', Helvetica, Arial, sans-serif;
       margin: 2em auto; max-width: 72em; color: #222; }
h1 { font-size: 1.5em; } h2 { font-size: 1.2em; margin-top: 2em; }
table { border-collapse: collapse; margin: 0.8em 0; }
th, td { border: 1px solid #ccc; padding: 0.3em 0.6em; text-align: left;
         font-size: 0.9em; }
th { background: #f2f2f2; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.status-ok { color: #1a7f37; } .status-failed { color: #cc3333; }
.status-partial { color: #b08000; }
.verdict-REGRESSION, .verdict-FAILED, .verdict-MISSING
  { color: #cc3333; font-weight: bold; }
.verdict-faster { color: #1a7f37; }
.muted { color: #777; } .spark { vertical-align: middle; }
code { background: #f6f6f6; padding: 0 0.2em; }
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _inline_svg(document: str) -> str:
    """An SVG document prepared for direct HTML embedding (the standalone
    XML declaration is invalid inside an HTML body)."""
    lines = document.splitlines()
    if lines and lines[0].startswith("<?xml"):
        lines = lines[1:]
    return "\n".join(lines)


def _date(created_unix: float | None) -> str:
    if created_unix is None:
        return "-"
    return time.strftime("%Y-%m-%d %H:%M:%S", time.gmtime(created_unix))


def _ms(value_ns: float | None) -> str:
    return "-" if value_ns is None else f"{value_ns / 1e6:.3f}"


def _short_sha(sha: str) -> str:
    base, dash, suffix = sha.partition("-")
    shortened = base[:10] if len(base) > 10 else base
    return shortened + dash + suffix


def artifact_links(run: dict[str, Any], link_root: str | Path) -> list[tuple[str, str]]:
    """``(label, relative_href)`` pairs for the run's existing artifacts.

    Paths are relative to ``link_root`` — the directory the HTML file is
    written into — and only files present on disk are returned, so every
    emitted link resolves.
    """
    run_path = Path(run["path"])
    links = []
    for filename, label in _ARTIFACT_LABELS:
        target = run_path / filename
        if filename in run.get("artifacts", []) and target.is_file():
            links.append(
                (label, os.path.relpath(target, Path(link_root)))
            )
    return links


def _overview_section(
    registry: RunRegistry, link_root: str | Path
) -> list[str]:
    runs = registry.runs()
    out = [f"<h2>Runs ({len(runs)} indexed)</h2>"]
    if not runs:
        out.append('<p class="muted">No run directories indexed.</p>')
        return out
    out.append("<table>")
    out.append(
        "<thead><tr><th>run</th><th>created (UTC)</th><th>commit</th>"
        "<th>seed</th><th>mode</th><th>status</th><th>scenarios</th>"
        "<th>artifacts</th></tr></thead><tbody>"
    )
    for run in runs:
        scenarios = registry.scenarios_for(run["run_id"])
        links = " ".join(
            f'<a href="{_esc(href)}">{_esc(label)}</a>'
            for label, href in artifact_links(run, link_root)
        )
        problems = run.get("problems") or []
        status_cell = (
            f'<span class="status-{_esc(run["status"])}">{_esc(run["status"])}</span>'
        )
        if problems:
            status_cell += (
                f' <span class="muted" title="{_esc("; ".join(problems))}">'
                f"({len(problems)} problem(s))</span>"
            )
        out.append(
            "<tr>"
            f'<td><code id="run-{_esc(run["run_id"])}">{_esc(run["run_id"])}</code></td>'
            f"<td>{_esc(_date(run['created_unix']))}</td>"
            f"<td><code>{_esc(_short_sha(run['git_sha']))}</code></td>"
            f'<td class="num">{_esc(run["seed"] if run["seed"] is not None else "-")}</td>'
            f"<td>{_esc(run['mode'] or '-')}</td>"
            f"<td>{status_cell}</td>"
            f'<td class="num">{len(scenarios)}</td>'
            "<td>" + (links or '<span class="muted">none</span>') + "</td>"
            "</tr>"
        )
    out.append("</tbody></table>")
    return out


def _scenario_section(
    registry: RunRegistry, scenario: str, tolerance: float
) -> list[str]:
    points = registry.trend(scenario, tolerance=tolerance)
    values = [
        None if p["value_ns"] is None else p["value_ns"] / 1e6 for p in points
    ]
    flags = [p["verdict"] in ("REGRESSION", "FAILED") for p in points]
    regressions = sum(1 for p in points if p["verdict"] == "REGRESSION")
    out = [f'<h2 id="scenario-{_esc(scenario)}">Scenario <code>{_esc(scenario)}</code></h2>']
    summary = f"{len(points)} run(s)"
    if regressions:
        summary += (
            f', <span class="verdict-REGRESSION">{regressions} regression(s)'
            "</span>"
        )
    out.append(f"<p>{summary} — best wall-clock per run, ms:</p>")
    if points:
        # Surface the newest run's deterministic result scalars (output
        # sizes, intermediate counters, AGM bounds, …) next to the
        # timing trend — the wcoj gate's numbers live here.
        latest = points[-1]["run_id"]
        for entry in registry.scenarios_for(latest):
            if entry["scenario"] == scenario and entry["results"]:
                rendered = " ".join(
                    f"{key}={value}"
                    for key, value in sorted(entry["results"].items())
                )
                out.append(
                    f'<p class="muted">latest results '
                    f"(<code>{_esc(latest)}</code>): "
                    f"<code>{_esc(rendered)}</code></p>"
                )
                break
    out.append(
        f'<div class="spark">{_inline_svg(sparkline_svg(values, flags))}</div>'
    )
    out.append("<table>")
    out.append(
        "<thead><tr><th>run</th><th>created (UTC)</th><th>commit</th>"
        "<th>status</th><th>best ms</th><th>vs prev</th><th>verdict</th>"
        "</tr></thead><tbody>"
    )
    for point in points:
        ratio = "-" if point["ratio"] is None else f"{point['ratio']:.2f}x"
        out.append(
            "<tr>"
            f'<td><a href="#run-{_esc(point["run_id"])}"><code>'
            f'{_esc(point["run_id"])}</code></a></td>'
            f"<td>{_esc(_date(point['created_unix']))}</td>"
            f"<td><code>{_esc(_short_sha(point['git_sha']))}</code></td>"
            f"<td>{_esc(point['status'])}</td>"
            f'<td class="num">{_esc(_ms(point["value_ns"]))}</td>'
            f'<td class="num">{_esc(ratio)}</td>'
            f'<td class="verdict-{_esc(point["verdict"])}">'
            f"{_esc(point['verdict'])}</td>"
            "</tr>"
        )
    out.append("</tbody></table>")
    return out


def _fmt_q(value: float | None) -> str:
    return "-" if value is None else f"{value:.2f}"


def _fmt_pct(value: float | None) -> str:
    return "-" if value is None else f"{value:.0%}"


def _plan_quality_section(
    registry: RunRegistry, predicate: str, tolerance: float
) -> list[str]:
    points = registry.plan_trend(predicate, metric="q_p90", tolerance=tolerance)
    values = [p["value"] for p in points]
    flags = [p["verdict"] == "REGRESSION" for p in points]
    regressions = sum(flags)
    out = [
        f'<h3 id="plan-{_esc(predicate)}">Predicate <code>{_esc(predicate)}'
        "</code></h3>"
    ]
    summary = f"{len(points)} run(s)"
    if regressions:
        summary += (
            f', <span class="verdict-REGRESSION">{regressions} regression(s)'
            "</span>"
        )
    out.append(f"<p>{summary} — q-error p90 per run:</p>")
    out.append(
        f'<div class="spark">{_inline_svg(sparkline_svg(values, flags))}</div>'
    )
    out.append("<table>")
    out.append(
        "<thead><tr><th>run</th><th>plans</th><th>q-error p50</th>"
        "<th>q-error p90</th><th>q-error max</th><th>misestimates</th>"
        "<th>choice accuracy</th><th>vs prev</th><th>verdict</th>"
        "</tr></thead><tbody>"
    )
    for point in points:
        row = next(
            (
                r
                for r in registry.plan_quality_for(point["run_id"])
                if r["predicate"] == predicate
            ),
            {},
        )
        ratio = "-" if point["ratio"] is None else f"{point['ratio']:.2f}x"
        out.append(
            "<tr>"
            f'<td><a href="#run-{_esc(point["run_id"])}"><code>'
            f'{_esc(point["run_id"])}</code></a></td>'
            f'<td class="num">{_esc(row.get("plans", "-"))}</td>'
            f'<td class="num">{_esc(_fmt_q(row.get("q_p50")))}</td>'
            f'<td class="num">{_esc(_fmt_q(row.get("q_p90")))}</td>'
            f'<td class="num">{_esc(_fmt_q(row.get("q_max")))}</td>'
            f'<td class="num">{_esc(row.get("misestimates", "-"))}</td>'
            f'<td class="num">{_esc(_fmt_pct(row.get("choice_accuracy")))}</td>'
            f'<td class="num">{_esc(ratio)}</td>'
            f'<td class="verdict-{_esc(point["verdict"])}">'
            f"{_esc(point['verdict'])}</td>"
            "</tr>"
        )
    out.append("</tbody></table>")
    return out


def render_report(
    registry: RunRegistry,
    link_root: str | Path = ".",
    tolerance: float = DEFAULT_TOLERANCE,
) -> str:
    """The full dashboard as one self-contained HTML document.

    ``link_root`` is the directory the page will be saved in; artifact
    hrefs are computed relative to it.  Rendering reads only the registry
    (plus an existence check per artifact), so equal registry contents
    give byte-equal HTML — the golden test's contract.
    """
    parts = [
        "<!DOCTYPE html>",
        '<html lang="en">',
        "<head>",
        '<meta charset="utf-8">',
        f"<title>{_esc(REPORT_TITLE)}</title>",
        f"<style>{_STYLE}</style>",
        "</head>",
        "<body>",
        f"<h1>{_esc(REPORT_TITLE)}</h1>",
        "<p class=\"muted\">Regression threshold: "
        f"{tolerance:.0%} over the previous ok run "
        "(the <code>tools/bench_diff.py</code> perf-gate rule).</p>",
    ]
    parts.extend(_overview_section(registry, link_root))
    for scenario in registry.scenario_names():
        parts.extend(_scenario_section(registry, scenario, tolerance))
    predicates = registry.plan_predicates()
    if predicates:
        parts.append('<h2 id="plan-quality">Plan quality &amp; calibration</h2>')
        parts.append(
            '<p class="muted">Per-predicate-class planner calibration '
            "aggregated from each run's <code>plans.jsonl</code>: q-error "
            "= max(est/act, act/est) on output-size estimates, choice "
            "accuracy from shadow-executed runner-up plans "
            "(<code>make plan-gate</code> gates these).</p>"
        )
        for predicate in predicates:
            parts.extend(_plan_quality_section(registry, predicate, tolerance))
    parts.append("</body>")
    parts.append("</html>")
    return "\n".join(parts) + "\n"


def write_report(
    registry: RunRegistry,
    output: str | Path,
    tolerance: float = DEFAULT_TOLERANCE,
) -> Path:
    """Render and write the dashboard next to its link root; returns the
    written path."""
    target = Path(output)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        render_report(registry, link_root=target.parent, tolerance=tolerance)
    )
    return target
