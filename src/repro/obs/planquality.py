"""Plan-quality observability: structured EXPLAIN records and calibration.

The planner (:mod:`repro.engine.planner`) chooses join algorithms from
sampled selectivity estimates, but an estimate can be silently wrong —
and a miscalibrated estimator flips algorithm choices without a trace.
This module makes plan quality a first-class observable:

- :class:`PlanRecord` — one planned (and optionally executed) query:
  predicate class, chosen algorithm, every **candidate** the planner
  considered with its cost-model estimate and rejection reason, the
  estimated vs actual output size, and the derived **q-error**;
- :func:`q_error` — the canonical estimation-error metric of Leis et
  al., *How Good Are Query Optimizers, Really?*:
  ``max(est / act, act / est)`` with both sides clamped to ``>= 1`` (a
  perfectly calibrated estimate scores 1.0, symmetric in over- and
  under-estimation);
- **plan-regret accounting** — on small inputs the executor can shadow-
  execute the runner-up candidates and score each by its pebbling
  effective cost (the paper's cost model, deterministic unlike wall
  time); a plan is *choice-correct* when the chosen candidate is the
  a-posteriori cheapest;
- :class:`PlanLog` — the process-global, off-by-default record log
  (mirrors :mod:`repro.obs.events`), serialized as ``plans.jsonl`` in
  each run directory;
- :func:`calibration` — per-predicate-class aggregation (q-error
  p50/p90/max, misestimate count, choice accuracy) feeding the run
  registry, ``repro runs plan-quality``, and the HTML report;
- :func:`validate_records` / :func:`validate_jsonl` /
  :func:`validate_explain_document` — the structural schema shared by
  the test-suite and ``tools/check_plan_quality.py``.

Like every collector in :mod:`repro.obs`, the log is **off by default**
and recording is behaviour-neutral: plans and results are identical with
the log enabled or disabled.

>>> from repro.obs import planquality
>>> planquality.q_error(100.0, 25.0)
4.0
>>> planquality.q_error(25.0, 100.0)
4.0
>>> planquality.q_error(0.0, 0.0)  # both clamped to 1
1.0
"""

from __future__ import annotations

import json
import math
import os
import threading
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

PLAN_SCHEMA = "repro-plan/v1"

# q-error above which the executor emits a ``planner.misestimate`` event
# (estimate off by more than 4x in either direction).
MISESTIMATE_THRESHOLD = 4.0

# Largest query.input_size the executor will shadow-execute runner-up
# candidates on: regret accounting is a diagnostic, not a tax.
SHADOW_INPUT_LIMIT = 600


def q_error(estimated: float, actual: float) -> float:
    """``max(est/act, act/est)`` with both sides clamped to ``>= 1``.

    The clamp makes the metric total (no division by zero on empty
    outputs) and keeps "estimated 0, got 0" a perfect score.
    """
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est / act, act / est)


@dataclass
class CandidateRecord:
    """One algorithm the planner considered for a query.

    ``estimated_cost`` is in cost-model units (expected tuple touches,
    not wall time); ``shadow_cost`` is the pebbling effective cost
    measured by shadow execution, ``None`` until measured.
    """

    algorithm: str
    estimated_cost: float
    reason: str
    chosen: bool = False
    shadow_cost: int | None = None

    def as_dict(self) -> dict[str, Any]:
        return {
            "algorithm": self.algorithm,
            "estimated_cost": self.estimated_cost,
            "reason": self.reason,
            "chosen": self.chosen,
            "shadow_cost": self.shadow_cost,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CandidateRecord":
        return cls(
            algorithm=data["algorithm"],
            estimated_cost=data["estimated_cost"],
            reason=data["reason"],
            chosen=bool(data.get("chosen", False)),
            shadow_cost=data.get("shadow_cost"),
        )


@dataclass
class PlanRecord:
    """The structured record behind one EXPLAIN line.

    Created at plan time (estimates and candidates), completed at
    execution time (``actual_output``; shadow-execution fields when
    regret accounting ran).  ``estimated_output`` is ``-1.0`` when the
    planner skipped estimation under deadline pressure.
    """

    query: str
    predicate: str
    left: str
    right: str
    left_size: int
    right_size: int
    algorithm: str
    reason: str
    estimated_output: float
    candidates: list[CandidateRecord] = field(default_factory=list)
    deadline_pressure: bool = False
    actual_output: int | None = None
    shadow_checked: bool = False
    best_algorithm: str | None = None
    regret: int | None = None

    # -- derived -------------------------------------------------------
    @property
    def executed(self) -> bool:
        return self.actual_output is not None

    @property
    def q_error(self) -> float | None:
        """q-error of the output-size estimate; ``None`` until executed
        (or when estimation was skipped under deadline pressure)."""
        if self.actual_output is None or self.estimated_output < 0:
            return None
        return q_error(self.estimated_output, self.actual_output)

    def misestimate(self, threshold: float = MISESTIMATE_THRESHOLD) -> bool:
        qe = self.q_error
        return qe is not None and qe > threshold

    @property
    def choice_correct(self) -> bool | None:
        """Whether the chosen candidate was the a-posteriori cheapest;
        ``None`` when shadow execution did not run."""
        if not self.shadow_checked:
            return None
        return self.regret == 0

    # -- rendering -----------------------------------------------------
    def explain_line(self) -> str:
        """The classic one-line EXPLAIN string (the :meth:`Plan.explain`
        golden format, rendered from the structured record)."""
        return (
            f"{self.query} -> {self.algorithm} "
            f"(est. m = {self.estimated_output:.0f}; {self.reason})"
        )

    def render(self) -> str:
        """A multi-line plan tree: the EXPLAIN line, every candidate with
        its cost estimate, and (when known) actuals and regret."""
        lines = [self.explain_line()]
        for candidate in self.candidates:
            mark = "*" if candidate.chosen else " "
            shadow = (
                ""
                if candidate.shadow_cost is None
                else f", shadow pi = {candidate.shadow_cost}"
            )
            lines.append(
                f"  {mark} {candidate.algorithm:<14} "
                f"est. cost {candidate.estimated_cost:.0f}{shadow}  "
                f"-- {candidate.reason}"
            )
        if self.actual_output is not None:
            qe = self.q_error
            q_part = "q-error n/a" if qe is None else f"q-error {qe:.2f}"
            lines.append(f"  actual m = {self.actual_output} ({q_part})")
        if self.shadow_checked:
            verdict = (
                "optimal"
                if self.regret == 0
                else f"regret {self.regret} vs chosen {self.algorithm}"
            )
            lines.append(f"  a-posteriori best: {self.best_algorithm} ({verdict})")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------
    def as_dict(self) -> dict[str, Any]:
        qe = self.q_error
        return {
            "schema": PLAN_SCHEMA,
            "query": self.query,
            "predicate": self.predicate,
            "left": self.left,
            "right": self.right,
            "left_size": self.left_size,
            "right_size": self.right_size,
            "algorithm": self.algorithm,
            "reason": self.reason,
            "estimated_output": self.estimated_output,
            "candidates": [c.as_dict() for c in self.candidates],
            "deadline_pressure": self.deadline_pressure,
            "actual_output": self.actual_output,
            "q_error": None if qe is None else round(qe, 6),
            "shadow_checked": self.shadow_checked,
            "best_algorithm": self.best_algorithm,
            "regret": self.regret,
            "choice_correct": self.choice_correct,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PlanRecord":
        return cls(
            query=data["query"],
            predicate=data["predicate"],
            left=data.get("left", ""),
            right=data.get("right", ""),
            left_size=data["left_size"],
            right_size=data["right_size"],
            algorithm=data["algorithm"],
            reason=data["reason"],
            estimated_output=data["estimated_output"],
            candidates=[
                CandidateRecord.from_dict(c) for c in data.get("candidates", [])
            ],
            deadline_pressure=bool(data.get("deadline_pressure", False)),
            actual_output=data.get("actual_output"),
            shadow_checked=bool(data.get("shadow_checked", False)),
            best_algorithm=data.get("best_algorithm"),
            regret=data.get("regret"),
        )


class PlanLog:
    """A process-global, append-only log of :class:`PlanRecord` objects.

    Mirrors :class:`repro.obs.events.EventLog`: off by default, one
    attribute check per plan while disabled, serialized as
    ``plans.jsonl`` (one sorted-key JSON object per line) in each run
    directory.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._records: list[PlanRecord] = []
        self._lock = threading.Lock()

    # -- control -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all records (enabled flag unchanged)."""
        self._records = []

    # -- recording -----------------------------------------------------
    def record(self, record: PlanRecord) -> None:
        """Append one record; a single attribute check while disabled.

        Records are appended at *plan* time and completed in place by the
        executor (actuals, shadow costs), so a record serialized after
        execution carries the full estimate-vs-actual story.
        """
        if not self.enabled:
            return
        with self._lock:
            self._records.append(record)

    # -- inspection ----------------------------------------------------
    def records(self) -> list[PlanRecord]:
        return list(self._records)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [r.as_dict() for r in self._records]

    def to_jsonl(self) -> str:
        return "".join(
            json.dumps(r.as_dict(), sort_keys=True) + "\n" for r in self._records
        )


PLANS = PlanLog()


def enable() -> None:
    """Turn plan recording on (module-level singleton)."""
    PLANS.enable()


def disable() -> None:
    """Turn plan recording off; already-recorded plans are kept."""
    PLANS.disable()


def is_enabled() -> bool:
    return PLANS.enabled


def reset() -> None:
    """Drop all plan records recorded so far."""
    PLANS.reset()


def record(plan_record: PlanRecord) -> None:
    """Record one plan on the global log (near-free no-op when disabled)."""
    PLANS.record(plan_record)


def records() -> list[PlanRecord]:
    """All records on the global log, in plan order."""
    return PLANS.records()


def to_jsonl() -> str:
    """The global log as JSONL (one object per line)."""
    return PLANS.to_jsonl()


def write_plans(path: str | Path) -> Path:
    """Write the global log as ``plans.jsonl`` via fsync-and-rename, so a
    crash mid-write never leaves a truncated log; returns the path."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w") as handle:
            handle.write(PLANS.to_jsonl())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


# ---------------------------------------------------------------------------
# Calibration aggregation (registry tables, `repro runs plan-quality`,
# the HTML report's calibration section, and the plan-quality gate).
# ---------------------------------------------------------------------------


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of ``values`` (``fraction`` in [0, 1])."""
    if not values:
        raise ValueError("percentile of empty list")
    ordered = sorted(values)
    rank = max(1, math.ceil(fraction * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def calibration(
    plan_records: list[PlanRecord | dict[str, Any]],
) -> list[dict[str, Any]]:
    """Per-predicate-class calibration rows, sorted by predicate name.

    Each row:  ``predicate``, ``plans`` (records), ``executed`` (with
    actuals), ``q_p50``/``q_p90``/``q_max`` (``None`` when nothing
    executed), ``misestimates`` (q-error above the threshold),
    ``shadow_checked`` (regret-accounted plans), ``choice_correct``, and
    ``choice_accuracy`` (``None`` when nothing was shadow-checked).
    """
    normalized = [
        r if isinstance(r, PlanRecord) else PlanRecord.from_dict(r)
        for r in plan_records
    ]
    by_predicate: dict[str, list[PlanRecord]] = {}
    for rec in normalized:
        by_predicate.setdefault(rec.predicate, []).append(rec)
    rows: list[dict[str, Any]] = []
    for predicate in sorted(by_predicate):
        group = by_predicate[predicate]
        q_errors = [r.q_error for r in group if r.q_error is not None]
        shadowed = [r for r in group if r.choice_correct is not None]
        correct = sum(1 for r in shadowed if r.choice_correct)
        rows.append(
            {
                "predicate": predicate,
                "plans": len(group),
                "executed": sum(1 for r in group if r.executed),
                "q_p50": round(percentile(q_errors, 0.50), 6) if q_errors else None,
                "q_p90": round(percentile(q_errors, 0.90), 6) if q_errors else None,
                "q_max": round(max(q_errors), 6) if q_errors else None,
                "misestimates": sum(1 for r in group if r.misestimate()),
                "shadow_checked": len(shadowed),
                "choice_correct": correct,
                "choice_accuracy": (
                    round(correct / len(shadowed), 6) if shadowed else None
                ),
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Validation (shared by the test-suite and tools/check_plan_quality.py).
# ---------------------------------------------------------------------------

_REQUIRED_FIELDS = (
    "query",
    "predicate",
    "left_size",
    "right_size",
    "algorithm",
    "reason",
    "estimated_output",
    "candidates",
)


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_count(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool) and value >= 0


def validate_records(
    plan_records: list[Any], context: str = "plans"
) -> list[str]:
    """All structural problems in parsed plan records (empty = valid).

    Checks field presence and types, that exactly one candidate is
    marked chosen and that it names the record's algorithm, that q-error
    (when present) is ``>= 1``, and that shadow-derived fields are
    internally consistent.
    """
    problems: list[str] = []
    for position, rec in enumerate(plan_records):
        where = f"{context}[{position}]"
        if not isinstance(rec, dict):
            problems.append(f"{where}: must be an object")
            continue
        for missing in [f for f in _REQUIRED_FIELDS if f not in rec]:
            problems.append(f"{where}: missing field {missing!r}")
        schema = rec.get("schema")
        if schema is not None and schema != PLAN_SCHEMA:
            problems.append(
                f"{where}: schema {schema!r} is not {PLAN_SCHEMA!r}"
            )
        for str_field in ("query", "predicate", "algorithm", "reason"):
            value = rec.get(str_field)
            if str_field in rec and (not isinstance(value, str) or not value):
                problems.append(
                    f"{where}: {str_field!r} must be a non-empty string"
                )
        for size_field in ("left_size", "right_size"):
            if size_field in rec and not _is_count(rec.get(size_field)):
                problems.append(
                    f"{where}: {size_field!r} must be a non-negative integer"
                )
        if "estimated_output" in rec and not _is_number(
            rec.get("estimated_output")
        ):
            problems.append(f"{where}: 'estimated_output' must be a number")
        actual = rec.get("actual_output")
        if actual is not None and not _is_count(actual):
            problems.append(
                f"{where}: 'actual_output' must be a non-negative integer or null"
            )
        qe = rec.get("q_error")
        if qe is not None and (not _is_number(qe) or qe < 1.0):
            problems.append(f"{where}: 'q_error' must be a number >= 1 or null")
        candidates = rec.get("candidates")
        if "candidates" in rec:
            if not isinstance(candidates, list) or not candidates:
                problems.append(
                    f"{where}: 'candidates' must be a non-empty array"
                )
            else:
                chosen_names: list[str] = []
                for c_pos, candidate in enumerate(candidates):
                    c_where = f"{where}.candidates[{c_pos}]"
                    if not isinstance(candidate, dict):
                        problems.append(f"{c_where}: must be an object")
                        continue
                    if not isinstance(candidate.get("algorithm"), str):
                        problems.append(
                            f"{c_where}: 'algorithm' must be a string"
                        )
                    if not _is_number(candidate.get("estimated_cost")):
                        problems.append(
                            f"{c_where}: 'estimated_cost' must be a number"
                        )
                    if not isinstance(candidate.get("reason"), str):
                        problems.append(f"{c_where}: 'reason' must be a string")
                    shadow = candidate.get("shadow_cost")
                    if shadow is not None and not _is_count(shadow):
                        problems.append(
                            f"{c_where}: 'shadow_cost' must be a "
                            "non-negative integer or null"
                        )
                    if candidate.get("chosen"):
                        chosen_names.append(candidate.get("algorithm"))
                if len(chosen_names) != 1:
                    problems.append(
                        f"{where}: exactly one candidate must be chosen "
                        f"(found {len(chosen_names)})"
                    )
                elif (
                    isinstance(rec.get("algorithm"), str)
                    and chosen_names[0] != rec["algorithm"]
                ):
                    problems.append(
                        f"{where}: chosen candidate {chosen_names[0]!r} does "
                        f"not match record algorithm {rec['algorithm']!r}"
                    )
        if rec.get("shadow_checked"):
            if not isinstance(rec.get("best_algorithm"), str):
                problems.append(
                    f"{where}: shadow-checked record needs 'best_algorithm'"
                )
            if not _is_count(rec.get("regret")):
                problems.append(
                    f"{where}: shadow-checked record needs a "
                    "non-negative integer 'regret'"
                )
    return problems


def validate_jsonl(text: str, context: str = "plans") -> list[str]:
    """Parse ``plans.jsonl`` text and validate it; parse errors become
    problems."""
    parsed: list[Any] = []
    problems: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError as exc:
            problems.append(f"{context}:{number}: unparseable JSON ({exc})")
    return problems + validate_records(parsed, context=context)


def validate_explain_document(
    document: Any, context: str = "explain"
) -> list[str]:
    """Validate a ``repro explain --json`` document:
    ``{"schema": "repro-plan/v1", "records": [...]}``."""
    problems: list[str] = []
    if not isinstance(document, dict):
        return [f"{context}: must be an object"]
    if document.get("schema") != PLAN_SCHEMA:
        problems.append(
            f"{context}: 'schema' must be {PLAN_SCHEMA!r} "
            f"(got {document.get('schema')!r})"
        )
    records_field = document.get("records")
    if not isinstance(records_field, list):
        problems.append(f"{context}: 'records' must be an array")
        return problems
    return problems + validate_records(
        records_field, context=f"{context}.records"
    )
