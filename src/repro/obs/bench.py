"""The benchmark harness behind ``repro bench``: the perf trajectory's feeder.

Each *scenario* re-runs one of the repo's benchmark workloads (the same
shapes as ``benchmarks/bench_*.py``) through the span/metrics layer and
returns a small dict of result scalars.  The harness times every scenario
with ``perf_counter_ns`` over a configurable number of repeats, snapshots
the metrics it generated, writes a run-manifest directory
(``runs/{run_id}/``) and emits a top-level ``BENCH_<date>.json`` — the
file the perf trajectory accumulates, one per benchmarked commit.

Two sizes per scenario: ``--smoke`` runs CI-sized inputs in a few
seconds; the default size is what perf PRs should compare against.
Everything is seeded, so scenario *results* (not timings) are
reproducible run to run.
"""

from __future__ import annotations

import contextlib
import json
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Callable

from repro.analysis.report import Table
from repro.obs import events as obs_events
from repro.obs import export as obs_export
from repro.obs import manifest as obs_manifest
from repro.obs import metrics as obs_metrics
from repro.obs import planquality as obs_plans
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget, use_budget

# v2 (see docs/ROBUSTNESS.md): per-scenario status/attempts/error fields
# and structured failure records instead of aborting the whole run.
BENCH_SCHEMA = "repro-bench/v2"

# One wall-clock budget per scenario attempt, installed ambiently so the
# solving stack degrades (it is cooperative, not preemptive).
DEFAULT_SCENARIO_DEADLINE = 60.0

# The tracked perf-trajectory feed: every bench run publishes its
# canonical BENCH_<date>.json here (in addition to the scratch out_dir),
# so the longitudinal record survives scratch-dir cleanup.
DEFAULT_PUBLISH_DIR = "benchmarks/results"


@dataclass(frozen=True)
class BenchConfig:
    """Knobs shared by every scenario invocation."""

    smoke: bool = False
    seed: int = 0
    # Worker processes for batch scenarios (repro bench --jobs).  Results
    # must not depend on it — only timings may; solver-batch asserts so.
    jobs: int = 1

    def size(self, full: int, smoke: int) -> int:
        """Pick the full-size or smoke-size parameter."""
        return smoke if self.smoke else full


ScenarioFn = Callable[[BenchConfig], dict[str, Any]]


@dataclass(frozen=True)
class Scenario:
    """One named benchmark scenario."""

    name: str
    description: str
    run: ScenarioFn


SCENARIOS: dict[str, Scenario] = {}


def scenario(name: str, description: str) -> Callable[[ScenarioFn], ScenarioFn]:
    """Register a scenario function under ``name``."""

    def register(fn: ScenarioFn) -> ScenarioFn:
        SCENARIOS[name] = Scenario(name=name, description=description, run=fn)
        return fn

    return register


# ---------------------------------------------------------------------------
# Scenario definitions (mirroring benchmarks/bench_*.py workload shapes).
# ---------------------------------------------------------------------------


@scenario("engine-planner", "planner choices + execution pebbling (bench_engine)")
def _engine_planner(config: BenchConfig) -> dict[str, Any]:
    from repro.engine import JoinQuery, execute
    from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
    from repro.workloads.equijoin import fk_pk_workload, zipf_equijoin_workload
    from repro.workloads.sets import zipf_sets_workload
    from repro.workloads.spatial import uniform_rectangles_workload

    n = config.size(40, 12)
    seed = config.seed + 1
    cases = [
        JoinQuery(
            *zipf_equijoin_workload(n, n, key_universe=8, seed=seed), Equality()
        ),
        JoinQuery(*fk_pk_workload(n + n // 2, n, seed=seed), Equality()),
        JoinQuery(
            *uniform_rectangles_workload(n, n, seed=seed), SpatialOverlap()
        ),
        JoinQuery(
            *zipf_sets_workload(n // 2, n // 2, universe=30, seed=seed),
            SetContainment(),
        ),
    ]
    total_m = 0
    worst_ratio = 1.0
    records = []
    for query in cases:
        # shadow=True: runner-up candidates are re-executed and scored by
        # pebbling cost, so this scenario also measures plan regret.
        result = execute(query, shadow=True)
        total_m += result.output_size
        if result.trace is not None:
            worst_ratio = max(worst_ratio, result.trace.cost_ratio)
        if result.plan.record is not None:
            records.append(result.plan.record)
    # Plan-quality scalars for the perf/calibration trajectory: all are
    # seed-deterministic (q-error from counts, regret from pebbling).
    from repro.obs.planquality import percentile

    q_errors = [r.q_error for r in records if r.q_error is not None]
    checked = [r for r in records if r.choice_correct is not None]
    return {
        "queries": len(cases),
        "total_m": total_m,
        "worst_ratio": worst_ratio,
        "plans": len(records),
        "q_p90": round(percentile(q_errors, 0.90), 4) if q_errors else None,
        "choice_accuracy": (
            round(sum(1 for r in checked if r.choice_correct) / len(checked), 4)
            if checked
            else None
        ),
    }


@scenario("engine-equijoin", "equijoin query throughput (bench_engine)")
def _engine_equijoin(config: BenchConfig) -> dict[str, Any]:
    from repro.engine import JoinQuery, execute
    from repro.joins.predicates import Equality
    from repro.workloads.equijoin import zipf_equijoin_workload

    n = config.size(200, 40)
    query = JoinQuery(
        *zipf_equijoin_workload(n, n, key_universe=max(8, n // 5), seed=config.seed + 3),
        Equality(),
    )
    result = execute(query, None, False)
    return {"n": n, "m": result.output_size, "plan": result.plan.algorithm_name}


@scenario("engine-spatial", "spatial query throughput (bench_engine)")
def _engine_spatial(config: BenchConfig) -> dict[str, Any]:
    from repro.engine import JoinQuery, execute
    from repro.joins.predicates import SpatialOverlap
    from repro.workloads.spatial import uniform_rectangles_workload

    n = config.size(150, 30)
    query = JoinQuery(
        *uniform_rectangles_workload(
            n, n, mean_side=6.0 if config.smoke else 3.0, seed=config.seed + 3
        ),
        SpatialOverlap(),
    )
    result = execute(query, None, False)
    return {"n": n, "m": result.output_size, "plan": result.plan.algorithm_name}


@scenario("engine-chain", "three-way chain throughput (bench_engine)")
def _engine_chain(config: BenchConfig) -> dict[str, Any]:
    from repro.engine import ChainQuery, execute_chain
    from repro.joins.predicates import Equality
    from repro.workloads.equijoin import zipf_equijoin_workload

    n = config.size(80, 20)
    a, b = zipf_equijoin_workload(n, n, key_universe=20, seed=config.seed + 4)
    _, c = zipf_equijoin_workload(1, n, key_universe=20, seed=config.seed + 5)
    chain = ChainQuery([a, b, c], [Equality(), Equality()])
    result = execute_chain(chain, False)
    return {"n": n, "rows": result.output_size, "stages": len(result.stages)}


@scenario("solver-exact", "exact search on the worst-case family (bench_hardness_scaling)")
def _solver_exact(config: BenchConfig) -> dict[str, Any]:
    from repro.core.families import worst_case_family
    from repro.core.solvers.registry import solve

    n = config.size(6, 4)
    family = worst_case_family(n)
    result = solve(family, "exact")
    return {"n": n, "m": family.num_edges, "pi": result.effective_cost}


@scenario("solver-dfs-approx", "1.25-approximation on random graphs (bench_dfs_approx)")
def _solver_dfs(config: BenchConfig) -> dict[str, Any]:
    from repro.core.solvers.registry import solve
    from repro.graphs.generators import random_connected_bipartite

    edges = config.size(120, 30)
    graph = random_connected_bipartite(
        edges // 4, edges // 4, edges, seed=config.seed + 7
    )
    result = solve(graph, "dfs+polish")
    return {
        "m": graph.num_edges,
        "pi": result.effective_cost,
        "jumps": result.jumps,
    }


@scenario("solver-anneal", "annealing polish on random graphs (bench_approx_quality)")
def _solver_anneal(config: BenchConfig) -> dict[str, Any]:
    from repro.core.solvers.registry import solve
    from repro.graphs.generators import random_connected_bipartite

    edges = config.size(60, 20)
    graph = random_connected_bipartite(
        edges // 4, edges // 4, edges, seed=config.seed + 11
    )
    result = solve(
        graph, "anneal", seed=config.seed, steps=config.size(2000, 300)
    )
    return {"m": graph.num_edges, "pi": result.effective_cost}


@scenario("solver-batch", "batched component solves via solve_many (parallel service)")
def _solver_batch(config: BenchConfig) -> dict[str, Any]:
    from repro.core.families import worst_case_family
    from repro.graphs.components import disjoint_union_many
    from repro.graphs.generators import random_connected_bipartite
    from repro.parallel import solve_many

    top = config.size(5, 3)
    edges = config.size(40, 16)
    graphs = [worst_case_family(n) for n in range(2, top + 1)]
    graphs.append(
        disjoint_union_many(
            [worst_case_family(2), worst_case_family(3), worst_case_family(2)]
        )
    )
    graphs.append(
        random_connected_bipartite(
            edges // 4, edges // 4, edges, seed=config.seed + 19
        )
    )
    results = solve_many(graphs, method="auto", jobs=config.jobs)
    # `jobs` is deliberately absent from the results: scenario results
    # must be byte-identical across --jobs values (it is reported once,
    # at the top of the bench report).
    return {
        "graphs": len(graphs),
        "pi_total": sum(r.effective_cost for r in results),
        "optimal": sum(1 for r in results if r.optimal),
    }


@scenario("join-algorithms", "join algorithms traced in the model (bench_join_algorithms)")
def _join_algorithms(config: BenchConfig) -> dict[str, Any]:
    from repro.joins.algorithms import (
        hash_join,
        plane_sweep_join,
        sort_merge_join,
    )
    from repro.joins.join_graph import build_join_graph
    from repro.joins.predicates import Equality, SpatialOverlap
    from repro.joins.trace import trace_report
    from repro.workloads.equijoin import zipf_equijoin_workload
    from repro.workloads.spatial import uniform_rectangles_workload

    n = config.size(60, 15)
    eq_left, eq_right = zipf_equijoin_workload(
        n, n, key_universe=max(6, n // 5), seed=config.seed + 13
    )
    eq_graph = build_join_graph(eq_left, eq_right, Equality())
    sp_left, sp_right = uniform_rectangles_workload(
        n, n, mean_side=6.0, seed=config.seed + 13
    )
    sp_graph = build_join_graph(sp_left, sp_right, SpatialOverlap())
    reports = [
        trace_report(eq_graph, sort_merge_join(eq_left, eq_right), "sort-merge"),
        trace_report(eq_graph, hash_join(eq_left, eq_right), "hash"),
        trace_report(sp_graph, plane_sweep_join(sp_left, sp_right), "plane-sweep"),
    ]
    return {
        "algorithms": len(reports),
        "total_m": sum(r.output_size for r in reports),
        "worst_ratio": max(r.cost_ratio for r in reports),
    }


@scenario("storage-paging", "page-fetch scheduling on paged relations (storage)")
def _storage_paging(config: BenchConfig) -> dict[str, Any]:
    from repro.core.solvers.registry import solve
    from repro.relations.storage import (
        PagedRelation,
        page_connection_graph,
        schedule_report,
    )
    from repro.workloads.equijoin import zipf_equijoin_workload

    n = config.size(80, 24)
    left, right = zipf_equijoin_workload(
        n, n, key_universe=max(6, n // 8), seed=config.seed + 17
    )
    paged_left = PagedRelation(left, page_size=4)
    paged_right = PagedRelation(right, page_size=4)
    graph = page_connection_graph(paged_left, paged_right, lambda a, b: a == b)
    result = solve(graph, "dfs+polish")
    report = schedule_report(graph, result.scheme)
    return {
        "pages": paged_left.num_pages + paged_right.num_pages,
        "page_pairs": report.page_pairs,
        "fetches": report.fetches,
    }


@scenario("server-load", "concurrent zipf-skewed load on the solve server (repro serve)")
def _server_load(config: BenchConfig) -> dict[str, Any]:
    from repro.parallel.cache import SolveCache
    from repro.server.server import SolveServer, serve_background
    from repro.workloads.loadgen import LoadSpec, run_load

    spec = LoadSpec(
        requests=config.size(60, 20),
        concurrency=config.size(8, 4),
        universe=config.size(10, 6),
        edges=config.size(16, 10),
        seed=config.seed,
    )
    cache = SolveCache()
    server = SolveServer(port=0, jobs=config.jobs, cache=cache)
    with serve_background(server) as live:
        host, port = live.address
        # Two identical waves through one server: the first populates the
        # shared cache, the second measures the cache-hot steady state —
        # the shape a long-lived server actually serves.  The cold wave
        # runs serially: concurrent first-touches of one fingerprint
        # race consult-vs-store, which would make hit/miss counts (and
        # so this scenario's results) scheduling-dependent.
        cold = run_load(replace(spec, concurrency=1), host=host, port=port)
        warm = run_load(spec, host=host, port=port)
    hits = cache.stats.hits
    consults = hits + cache.stats.misses
    # Terminal statuses and counts are seed-deterministic; throughput and
    # latency are timings and belong here the same way wall_ns does.
    return {
        "requests": cold.requests + warm.requests,
        "ok": cold.ok + warm.ok,
        "rejected": cold.rejected + warm.rejected,
        "errors": cold.errors + warm.errors,
        "degraded": cold.degraded + warm.degraded,
        "cache_hit_rate": round(hits / consults, 4) if consults else 0.0,
        "throughput_rps": warm.as_dict()["throughput_rps"],
        "p50_ms": warm.as_dict()["p50_ms"],
        "p99_ms": warm.as_dict()["p99_ms"],
        # Per-op breakdown of the warm wave: request counts are mix-
        # deterministic, the quantiles are timings like p50_ms above.
        "per_op": warm.per_op(),
    }


def _wcoj_scenario(query) -> dict[str, Any]:
    """Shared body of the WCOJ scenarios: plan, race LFTJ against the
    binary cascade, and report both against the AGM bound."""
    import time

    from repro.engine import execute_multiway, plan_multiway
    from repro.joins.multiway import agm_bound, estimate_cascade

    the_plan = plan_multiway(query)

    def race(name: str, repeats: int = 3):
        """Best-of-N wall clock, so one scheduler hiccup cannot flip the
        LFTJ-vs-cascade comparison."""
        best_ns, best = None, None
        for _ in range(repeats):
            t0 = time.perf_counter_ns()
            run = execute_multiway(query, algorithm=name, with_trace=False)
            elapsed = time.perf_counter_ns() - t0
            if best_ns is None or elapsed < best_ns:
                best_ns, best = elapsed, run
        return best, best_ns

    lftj, lftj_ns = race("lftj")
    cascade, cascade_ns = race("binary-cascade")
    if lftj.result.binding_set() != cascade.result.binding_set():
        raise RuntimeError("lftj and binary cascade disagree on the output set")
    # Feed the plan's feedback loop (actuals, q-error) from the LFTJ run.
    trace = execute_multiway(query, chosen_plan=the_plan).trace
    agm = agm_bound(query)
    stages = estimate_cascade(query)
    return {
        # Deterministic: counters and estimates.
        "m": lftj.result.output_size,
        "agm_bound": round(agm, 1),
        "lftj_intermediates": lftj.result.intermediates,
        "cascade_intermediates": cascade.result.intermediates,
        "cascade_estimate": max(stages[:-1], default=0),
        "plan": the_plan.algorithm_name,
        "beta0": None if trace is None else trace.beta0,
        "cost_ratio": None if trace is None else round(trace.report.cost_ratio, 4),
        # Timings (excluded from determinism gates like wall_ns).
        "lftj_ms": round(lftj_ns / 1e6, 3),
        "cascade_ms": round(cascade_ns / 1e6, 3),
        "speedup_vs_cascade": round(cascade_ns / max(1, lftj_ns), 2),
    }


@scenario(
    "wcoj-triangle",
    "skewed triangle: LFTJ vs binary cascade against the AGM bound",
)
def _wcoj_triangle(config: BenchConfig) -> dict[str, Any]:
    from repro.workloads.multiway import triangle_query

    n = config.size(600, 400)
    query = triangle_query(n, skew="worst-case", seed=config.seed)
    return {"n": n, "skew": "worst-case", **_wcoj_scenario(query)}


@scenario(
    "wcoj-4cycle",
    "4-cycle query: worst-case-optimal evaluation within the AGM bound",
)
def _wcoj_4cycle(config: BenchConfig) -> dict[str, Any]:
    from repro.workloads.multiway import four_cycle_query

    n = config.size(300, 120)
    query = four_cycle_query(n, skew="uniform", seed=config.seed)
    return {"n": n, "skew": "uniform", **_wcoj_scenario(query)}


# ---------------------------------------------------------------------------
# Harness
# ---------------------------------------------------------------------------


@dataclass
class ScenarioResult:
    """Timing + results + metrics delta for one scenario.

    ``status`` is ``"ok"`` or ``"failed"``; a failed scenario keeps its
    structured ``error`` (exception type + message) and whatever timings
    completed before the failure, so one bad scenario no longer aborts —
    or vanishes from — the whole report.
    """

    name: str
    repeats: int
    wall_ns: list[int]
    results: dict[str, Any]
    counters: dict[str, int]
    status: str = "ok"
    attempts: int = 1
    error: str | None = None

    @property
    def best_ns(self) -> int:
        return min(self.wall_ns) if self.wall_ns else 0

    @property
    def mean_ns(self) -> float:
        if not self.wall_ns:
            return 0.0
        return sum(self.wall_ns) / len(self.wall_ns)

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "repeats": self.repeats,
            "wall_ns": {
                "best": self.best_ns,
                "mean": self.mean_ns,
                "all": list(self.wall_ns),
            },
            "results": self.results,
            "counters": self.counters,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }


@dataclass
class BenchReport:
    """The full outcome of one ``repro bench`` invocation."""

    run_id: str
    mode: str  # "smoke" | "full"
    seed: int
    jobs: int = 1
    scenarios: list[ScenarioResult] = field(default_factory=list)

    @property
    def failed(self) -> list[ScenarioResult]:
        return [s for s in self.scenarios if s.status != "ok"]

    def table(self) -> Table:
        table = Table(
            ["scenario", "status", "best ms", "mean ms", "repeats", "results"],
            title=f"repro bench ({self.mode}, seed={self.seed})",
        )
        for s in self.scenarios:
            if s.status == "ok":
                summary = " ".join(
                    f"{k}={v}" for k, v in sorted(s.results.items())
                )
            else:
                summary = s.error or "failed"
            table.add_row(
                [
                    s.name,
                    s.status,
                    round(s.best_ns / 1e6, 3),
                    round(s.mean_ns / 1e6, 3),
                    s.repeats,
                    summary,
                ]
            )
        return table

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": BENCH_SCHEMA,
            "run_id": self.run_id,
            "mode": self.mode,
            "seed": self.seed,
            "jobs": self.jobs,
            "git_sha": obs_manifest.git_sha(),
            "created_unix": time.time(),
            "date": time.strftime("%Y-%m-%d", time.gmtime()),
            "failed": len(self.failed),
            "scenarios": [s.as_dict() for s in self.scenarios],
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"


def _run_one(
    name: str,
    config: BenchConfig,
    repeats: int,
    deadline: float | None = None,
) -> ScenarioResult:
    """Time one scenario; its metrics delta is read from the global registry.

    Robustness contract: up to **two attempts** (one retry — transient
    faults get a second chance, deterministic bugs do not loop), each
    under an ambient per-scenario ``deadline`` budget so the solving
    stack degrades instead of overrunning.  A scenario that fails both
    attempts is reported as a structured failure, never raised.
    """
    entry = SCENARIOS[name]
    before = dict(obs_metrics.snapshot()["counters"])
    wall: list[int] = []
    results: dict[str, Any] = {}
    status = "ok"
    error: str | None = None
    attempts = 0
    for attempt in (1, 2):
        attempts = attempt
        wall.clear()
        budget = Budget(deadline=deadline) if deadline is not None else None
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_SCENARIO_START,
                scenario=name,
                attempt=attempt,
                repeats=repeats,
            )
        try:
            for _ in range(repeats):
                with obs_trace.span(
                    f"bench.{name}", smoke=config.smoke, attempt=attempt
                ):
                    with use_budget(budget):
                        start = time.perf_counter_ns()
                        results = entry.run(config)
                        wall.append(time.perf_counter_ns() - start)
            status = "ok"
            error = None
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SCENARIO_END,
                    scenario=name,
                    attempt=attempt,
                    status=status,
                )
            break
        except Exception as exc:  # noqa: BLE001 — bench must survive anything
            status = "failed"
            error = f"{type(exc).__name__}: {exc}"
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc(f"bench.scenario_failed.{name}")
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SCENARIO_END,
                    scenario=name,
                    attempt=attempt,
                    status=status,
                    error=error,
                )
    after = obs_metrics.snapshot()["counters"]
    delta = {
        key: after[key] - before.get(key, 0)
        for key in sorted(after)
        if after[key] != before.get(key, 0)
    }
    return ScenarioResult(
        name=name,
        repeats=repeats,
        wall_ns=wall,
        results=results,
        counters=delta,
        status=status,
        attempts=attempts,
        error=error,
    )


def run_bench(
    smoke: bool = False,
    seed: int = 0,
    names: list[str] | None = None,
    repeats: int | None = None,
    runs_dir: str | Path = obs_manifest.DEFAULT_RUNS_DIR,
    out_dir: str | Path | None = ".",
    run_id: str | None = None,
    scenario_deadline: float | None = DEFAULT_SCENARIO_DEADLINE,
    publish_dir: str | Path | None = None,
    jobs: int = 1,
    cache_path: str | Path | None = None,
) -> tuple[BenchReport, Path, Path | None]:
    """Run the harness end to end.

    Enables span/metric/event collection for the duration, runs the
    selected scenarios, writes ``runs/{run_id}/`` artifacts (manifest,
    metrics, tables, ``bench.json``, ``events.jsonl``, traces), and —
    unless ``out_dir`` is None — a top-level ``BENCH_<date>.json``.
    With ``publish_dir`` set, the same snapshot is also published there:
    the CLI points it at the tracked ``benchmarks/results/`` directory so
    the perf-trajectory feed is never empty.  Returns
    ``(report, run_dir, bench_path)``.

    ``jobs`` flows to batch scenarios (``solver-batch``) through
    :class:`BenchConfig`; scenario *results* are jobs-invariant, only
    timings may change.  ``cache_path`` installs an ambient
    :class:`~repro.parallel.cache.SolveCache` persisted at that path for
    the whole run, so a warm second run surfaces ``cache.hit`` events in
    ``events.jsonl``.

    Each scenario gets ``scenario_deadline`` seconds of ambient budget and
    one retry; failures become structured entries in the report rather
    than aborting the run (check ``report.failed``).
    """
    chosen = list(names or SCENARIOS)
    for name in chosen:
        if name not in SCENARIOS:
            raise KeyError(
                f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
            )
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    config = BenchConfig(smoke=smoke, seed=seed, jobs=jobs)
    if repeats is None:
        repeats = 1 if smoke else 3
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    mode = "smoke" if smoke else "full"
    the_run_id = run_id or obs_manifest.make_run_id("bench", seed)
    report = BenchReport(run_id=the_run_id, mode=mode, seed=seed, jobs=jobs)

    was_trace = obs_trace.is_enabled()
    was_metrics = obs_metrics.is_enabled()
    was_events = obs_events.is_enabled()
    was_plans = obs_plans.is_enabled()
    obs_trace.reset()
    obs_metrics.reset()
    obs_events.reset()
    obs_plans.reset()
    obs_trace.enable()
    obs_metrics.enable()
    obs_events.enable()
    obs_plans.enable()
    obs_events.set_run_id(the_run_id)
    obs_events.emit(
        obs_events.EVENT_RUN_START, mode=mode, seed=seed, scenarios=chosen
    )
    try:
        with contextlib.ExitStack() as stack:
            if cache_path is not None:
                from repro.parallel.cache import SolveCache, use_cache

                solve_cache = SolveCache(path=cache_path)
                stack.callback(solve_cache.close)
                stack.enter_context(use_cache(solve_cache))
            for name in chosen:
                report.scenarios.append(
                    _run_one(name, config, repeats, deadline=scenario_deadline)
                )
    finally:
        obs_events.emit(
            obs_events.EVENT_RUN_END,
            failed=[s.name for s in report.failed],
        )
        if not was_trace:
            obs_trace.disable()
        if not was_metrics:
            obs_metrics.disable()
        if not was_events:
            obs_events.disable()
        if not was_plans:
            obs_plans.disable()

    run_dir = obs_manifest.write_run(
        the_run_id,
        runs_dir=runs_dir,
        seed=seed,
        args={
            "smoke": smoke,
            "scenarios": chosen,
            "repeats": repeats,
        },
        tables=[report.table()],
        extra={"mode": mode, "failed": [s.name for s in report.failed]},
    )
    # The full structured report lives next to the manifest, so the run
    # registry indexes exact nanosecond timings instead of re-parsing
    # rounded table cells.
    obs_manifest.write_atomic(run_dir / "bench.json", report.to_json())
    # Every planned query's structured EXPLAIN record, estimate-vs-actual
    # included — the run registry aggregates it into calibration tables.
    if obs_plans.records():
        obs_plans.write_plans(run_dir / "plans.jsonl")
    # Every bench run leaves an inspectable trace next to its manifest:
    # open trace.json in Perfetto, feed trace.folded to flamegraph.pl.
    obs_export.write_trace(run_dir / "trace.json", "perfetto")
    obs_export.write_trace(run_dir / "trace.folded", "folded")
    bench_path: Path | None = None
    payload_json = report.to_json()
    filename = f"BENCH_{report.as_dict()['date']}.json"
    if out_dir is not None:
        bench_path = Path(out_dir) / filename
        bench_path.write_text(payload_json)
    if publish_dir is not None:
        publish_root = Path(publish_dir)
        publish_root.mkdir(parents=True, exist_ok=True)
        obs_manifest.write_atomic(publish_root / filename, payload_json)
    return report, run_dir, bench_path
