"""Run manifests: every observed run leaves a reproducible artifact trail.

A *run* is one observed unit of work — a benchmark sweep, an experiment
regeneration, any CLI invocation that opts in.  Its artifacts land under
``runs/{run_id}/``:

- ``manifest.json`` — provenance: git SHA, seed, python/platform
  versions, the arguments the run was invoked with, span totals;
- ``metrics.json`` — the canonical metrics snapshot
  (:meth:`repro.obs.metrics.MetricsRegistry.to_json`); byte-identical
  across same-seed runs;
- ``report.md`` — a human-readable report rendered with the repo's own
  :class:`repro.analysis.report.Table`;
- ``events.jsonl`` — the structured event log
  (:mod:`repro.obs.events`), when any events were recorded.

The layout follows the manifest-per-run convention of reproducible-ML
harnesses: one directory per run, provenance separated from measurements,
everything plain JSON/markdown so artifacts diff cleanly in review.

Every artifact is written **atomically** (write to a sibling temp file,
``fsync``, then ``os.replace``), so a run killed mid-write leaves either
the previous complete file or nothing — never a truncated
``manifest.json`` that would poison the run registry's index.
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.analysis.report import Table
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

DEFAULT_RUNS_DIR = "runs"


def write_atomic(path: str | Path, text: str) -> Path:
    """Write ``text`` to ``path`` via temp-file + fsync + rename.

    The temp file lives in the same directory (rename must not cross
    filesystems); on any failure mid-write the target is untouched and
    the temp file is removed.
    """
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


def git_sha(cwd: str | Path | None = None) -> str:
    """The current git commit SHA, or ``"unknown"`` outside a checkout.

    Defaults to the checkout that holds this source tree (not the process
    working directory), so manifests stay attributable when the CLI runs
    from elsewhere.  A ``-dirty`` suffix marks uncommitted changes, so a
    manifest never silently attributes a modified tree to a clean commit.
    """
    if cwd is None:
        cwd = Path(__file__).resolve().parent

    def _git(*argv: str) -> subprocess.CompletedProcess | None:
        try:
            return subprocess.run(
                ["git", *argv],
                cwd=str(cwd),
                capture_output=True,
                text=True,
                timeout=10,
            )
        except (OSError, subprocess.SubprocessError):
            return None

    out = _git("rev-parse", "HEAD")
    if out is None:
        return "unknown"
    sha = out.stdout.strip()
    if out.returncode != 0 or not sha:
        return "unknown"
    status = _git("status", "--porcelain")
    if status is not None and status.returncode == 0 and status.stdout.strip():
        sha += "-dirty"
    return sha


def make_run_id(prefix: str = "run", seed: int | None = None) -> str:
    """A unique, sortable run id: ``<prefix>-<utc timestamp>-<pid>[-s<seed>]``."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    suffix = f"-s{seed}" if seed is not None else ""
    return f"{prefix}-{stamp}-p{os.getpid()}{suffix}"


@dataclass
class RunManifest:
    """Provenance for one observed run (the ``manifest.json`` payload)."""

    run_id: str
    seed: int | None
    args: dict[str, Any] = field(default_factory=dict)
    git_sha: str = "unknown"
    python_version: str = ""
    platform: str = ""
    created_unix: float = 0.0
    span_count: int = 0
    extra: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def collect(
        cls,
        run_id: str,
        seed: int | None = None,
        args: dict[str, Any] | None = None,
        extra: dict[str, Any] | None = None,
    ) -> "RunManifest":
        """Fill provenance fields from the current process and git state."""
        return cls(
            run_id=run_id,
            seed=seed,
            args=dict(args or {}),
            git_sha=git_sha(),
            python_version=sys.version.split()[0],
            platform=platform.platform(),
            created_unix=time.time(),
            span_count=len(obs_trace.spans()),
            extra=dict(extra or {}),
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "run_id": self.run_id,
            "seed": self.seed,
            "args": self.args,
            "git_sha": self.git_sha,
            "python_version": self.python_version,
            "platform": self.platform,
            "created_unix": self.created_unix,
            "span_count": self.span_count,
            "extra": self.extra,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True, indent=2) + "\n"


def _metrics_table(snapshot: dict[str, Any]) -> Table:
    table = Table(["metric", "kind", "value"], title="Metrics")
    for name, value in snapshot["counters"].items():
        table.add_row([name, "counter", value])
    for name, value in snapshot["gauges"].items():
        table.add_row([name, "gauge", value])
    for name, summary in snapshot["histograms"].items():
        table.add_row(
            [name, "histogram", f"n={summary['count']} mean={summary['mean']:.4g}"]
        )
    return table


def _spans_table(limit: int = 20) -> Table:
    """The slowest recorded spans, widest first."""
    table = Table(["span", "depth", "ms"], title=f"Slowest spans (top {limit})")
    ranked = sorted(obs_trace.spans(), key=lambda s: -s.duration_ns)[:limit]
    for s in ranked:
        table.add_row([s.name, s.depth, round(s.duration_ms, 3)])
    return table


def render_report(
    manifest: RunManifest,
    snapshot: dict[str, Any],
    tables: list[Table] | None = None,
) -> str:
    """``report.md``: provenance header plus rendered tables."""
    lines = [
        f"# Run report — {manifest.run_id}",
        "",
        f"- git SHA: `{manifest.git_sha}`",
        f"- seed: {manifest.seed}",
        f"- python: {manifest.python_version} ({manifest.platform})",
        f"- spans recorded: {manifest.span_count}",
        "",
    ]
    for table in tables or []:
        lines.append("```")
        lines.append(table.render())
        lines.append("```")
        lines.append("")
    lines.append("```")
    lines.append(_metrics_table(snapshot).render())
    lines.append("```")
    lines.append("")
    if manifest.span_count:
        lines.append("```")
        lines.append(_spans_table().render())
        lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_run(
    run_id: str,
    runs_dir: str | Path = DEFAULT_RUNS_DIR,
    seed: int | None = None,
    args: dict[str, Any] | None = None,
    tables: list[Table] | None = None,
    extra: dict[str, Any] | None = None,
) -> Path:
    """Write ``manifest.json``, ``metrics.json``, ``report.md`` and — when
    tables were supplied — ``tables.json`` for the current global
    tracer/metrics state; returns the run directory.

    The metrics snapshot is taken here, so callers enable observability,
    do the work, then call this once at the end.  ``tables.json`` carries
    the un-formatted cell values (:meth:`Table.as_dict`), so downstream
    tooling reads typed data instead of re-parsing ASCII.
    """
    run_dir = Path(runs_dir) / run_id
    run_dir.mkdir(parents=True, exist_ok=True)
    manifest = RunManifest.collect(run_id, seed=seed, args=args, extra=extra)
    snapshot = obs_metrics.snapshot()
    write_atomic(run_dir / "manifest.json", manifest.to_json())
    write_atomic(run_dir / "metrics.json", obs_metrics.to_json())
    write_atomic(
        run_dir / "report.md", render_report(manifest, snapshot, tables)
    )
    if tables:
        payload = [t.as_dict() for t in tables]
        write_atomic(
            run_dir / "tables.json",
            json.dumps(payload, sort_keys=True, indent=2, default=str) + "\n",
        )
    if obs_events.events():
        obs_events.write_events(run_dir / "events.jsonl")
    return run_dir
