"""Named counters, gauges, and histogram summaries.

The numeric half of the observability layer: a process-global registry of

- **counters** — monotonically increasing integers (solver search nodes,
  pruned branches, planner sample pairs, page fetches, cache hits);
- **gauges** — last-written scalar values (current instance size, chosen
  thresholds);
- **histograms** — streaming summaries (count / total / min / max) of a
  value distribution, e.g. per-query output sizes.

Everything is deterministic: snapshots hold no timestamps and serialize
with sorted keys, so two runs of the same seeded workload produce
**byte-identical** ``metrics.json`` files — a property the test-suite
asserts.  Durations therefore never go through this module; they belong
to :mod:`repro.obs.trace` and the benchmark harness.

Like tracing, the registry starts disabled and every recording call
returns after one attribute check, so hooks are safe to leave in hot
paths permanently.

>>> from repro.obs import metrics
>>> metrics.reset(); metrics.enable()
>>> metrics.inc("solver.calls")
>>> metrics.inc("solver.search_nodes", 41)
>>> metrics.observe("engine.output_size", 7)
>>> metrics.snapshot()["counters"]["solver.search_nodes"]
41
>>> metrics.disable(); metrics.reset()
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any


@dataclass
class HistogramSummary:
    """A streaming count/total/min/max summary of observed values."""

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """A registry of named metrics with an on/off switch.

    Normal use goes through the module-level singleton ``METRICS`` and
    the helper functions below; tests may instantiate private registries.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}

    # -- control -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values (does not change the enabled flag)."""
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at 0)."""
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        if not self.enabled:
            return
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the named histogram summary."""
        if not self.enabled:
            return
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = HistogramSummary()
        histogram.observe(value)

    # -- inspection ----------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramSummary | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view with deterministically sorted keys."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].as_dict() for k in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        """The snapshot as canonical JSON (sorted keys, 2-space indent).

        Given identical seeded work, two runs produce byte-identical
        output — the reproducibility contract of run manifests.
        """
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"


METRICS = MetricsRegistry()


def enable() -> None:
    """Turn metric recording on (module-level singleton)."""
    METRICS.enable()


def disable() -> None:
    """Turn metric recording off; recorded values are kept."""
    METRICS.disable()


def is_enabled() -> bool:
    return METRICS.enabled


def reset() -> None:
    """Drop all metrics recorded so far."""
    METRICS.reset()


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the global registry (no-op when disabled)."""
    METRICS.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    METRICS.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the global registry."""
    METRICS.observe(name, value)


def counter(name: str) -> int:
    """Current value of a counter on the global registry (0 if unset)."""
    return METRICS.counter(name)


def snapshot() -> dict[str, Any]:
    """Deterministic plain-dict view of the global registry."""
    return METRICS.snapshot()


def to_json() -> str:
    """Canonical JSON rendering of the global registry's snapshot."""
    return METRICS.to_json()
