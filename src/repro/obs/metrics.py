"""Named counters, gauges, and histogram summaries.

The numeric half of the observability layer: a process-global registry of

- **counters** — monotonically increasing integers (solver search nodes,
  pruned branches, planner sample pairs, page fetches, cache hits);
- **gauges** — last-written scalar values (current instance size, chosen
  thresholds);
- **histograms** — streaming summaries (count / total / min / max plus
  deterministic log-spaced bucket counts and p50/p90/p99 estimates) of a
  value distribution, e.g. per-query output sizes.

Everything is deterministic: snapshots hold no timestamps and serialize
with sorted keys, so two runs of the same seeded workload produce
**byte-identical** ``metrics.json`` files — a property the test-suite
asserts.  Durations therefore never go through this module; they belong
to :mod:`repro.obs.trace` and the benchmark harness.  Histogram buckets
are log-spaced (boundaries at powers of ``sqrt(2)``), so quantiles are
estimated to within a factor of ~1.42 without storing samples — the
bucket counts, like everything else, are a pure function of the observed
values.

Snapshots carry a ``schema`` version (``repro-metrics/v2``) and the
registry's ``enabled`` state so downstream tools can validate what they
read; v1 snapshots (no schema field) predate both.

Like tracing, the registry starts disabled and every recording call
returns after one attribute check, so hooks are safe to leave in hot
paths permanently.

>>> from repro.obs import metrics
>>> metrics.reset(); metrics.enable()
>>> metrics.inc("solver.calls")
>>> metrics.inc("solver.search_nodes", 41)
>>> metrics.observe("engine.output_size", 7)
>>> metrics.snapshot()["counters"]["solver.search_nodes"]
41
>>> metrics.disable(); metrics.reset()
"""

from __future__ import annotations

import json
import math
import threading
from dataclasses import dataclass, field
from typing import Any

SNAPSHOT_SCHEMA = "repro-metrics/v2"

# Bucket boundaries sit at 2**(index / _BUCKETS_PER_DOUBLING): two buckets
# per doubling bounds the quantile estimation error by a factor of
# sqrt(2) while keeping bucket counts small for any realistic range.
_BUCKETS_PER_DOUBLING = 2

# Values <= 0 cannot be log-bucketed; they share one underflow bucket
# whose upper bound is 0 (floats sort below every int bucket index).
_UNDERFLOW = float("-inf")


def bucket_index(value: float) -> float:
    """The log-spaced bucket holding ``value``: the smallest index ``i``
    with ``value <= 2**(i / 2)``, or the underflow bucket for ``<= 0``."""
    if value <= 0:
        return _UNDERFLOW
    return math.ceil(_BUCKETS_PER_DOUBLING * math.log2(value))


def bucket_upper_bound(index: float) -> float:
    """The inclusive upper boundary of a bucket returned by
    :func:`bucket_index`."""
    if index == _UNDERFLOW:
        return 0.0
    return 2.0 ** (index / _BUCKETS_PER_DOUBLING)


@dataclass
class HistogramSummary:
    """A streaming summary of observed values.

    Tracks count/total/min/max exactly, plus per-bucket counts over the
    deterministic log-spaced grid of :func:`bucket_index`, from which
    :meth:`quantile` estimates p50/p90/p99 without storing samples.
    """

    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    buckets: dict[float, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)
        index = bucket_index(value)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float | None:
        """An estimate of the ``q``-quantile (``0 < q <= 1``) from the
        bucket counts: the upper bound of the bucket where the target
        rank falls, clamped into ``[min, max]`` so estimates never leave
        the observed range.  ``None`` on an empty histogram."""
        if not self.count:
            return None
        if not 0 < q <= 1:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        target = q * self.count
        cumulative = 0
        for index in sorted(self.buckets):
            cumulative += self.buckets[index]
            if cumulative >= target:
                bound = bucket_upper_bound(index)
                assert self.min is not None and self.max is not None
                return min(max(bound, self.min), self.max)
        raise AssertionError("bucket counts always sum to count")

    def bucket_counts(self) -> dict[str, int]:
        """Bucket counts keyed by a stable upper-bound label
        (``le_0`` for the underflow bucket, ``le_<bound>`` otherwise)."""
        labels: dict[str, int] = {}
        for index in sorted(self.buckets):
            if index == _UNDERFLOW:
                labels["le_0"] = self.buckets[index]
            else:
                labels[f"le_{bucket_upper_bound(index):.6g}"] = self.buckets[index]
        return labels

    def as_dict(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": self.bucket_counts(),
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """A registry of named metrics with an on/off switch.

    Normal use goes through the module-level singleton ``METRICS`` and
    the helper functions below; tests may instantiate private registries.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, HistogramSummary] = {}
        # The solve server records from its event loop while bench code
        # records from the main thread; the lock keeps read-modify-write
        # updates coherent.  Disabled recording never touches it.
        self._lock = threading.Lock()

    # -- control -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded values (does not change the enabled flag)."""
        self._counters = {}
        self._gauges = {}
        self._histograms = {}

    # -- recording -----------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to the named counter (created at 0)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set the named gauge to ``value`` (last write wins)."""
        if not self.enabled:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold ``value`` into the named histogram summary."""
        if not self.enabled:
            return
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = HistogramSummary()
            histogram.observe(value)

    # -- inspection ----------------------------------------------------
    def counter(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> HistogramSummary | None:
        return self._histograms.get(name)

    def snapshot(self) -> dict[str, Any]:
        """A plain-dict view with deterministically sorted keys.

        Carries the schema version and the registry's enabled state so
        downstream consumers can tell "disabled, hence empty" apart from
        "enabled but nothing recorded" and validate what they parse.
        """
        return {
            "schema": SNAPSHOT_SCHEMA,
            "enabled": self.enabled,
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "gauges": {k: self._gauges[k] for k in sorted(self._gauges)},
            "histograms": {
                k: self._histograms[k].as_dict() for k in sorted(self._histograms)
            },
        }

    def to_json(self) -> str:
        """The snapshot as canonical JSON (sorted keys, 2-space indent).

        Given identical seeded work, two runs produce byte-identical
        output — the reproducibility contract of run manifests.
        """
        return json.dumps(self.snapshot(), sort_keys=True, indent=2) + "\n"


METRICS = MetricsRegistry()


def enable() -> None:
    """Turn metric recording on (module-level singleton)."""
    METRICS.enable()


def disable() -> None:
    """Turn metric recording off; recorded values are kept."""
    METRICS.disable()


def is_enabled() -> bool:
    return METRICS.enabled


def reset() -> None:
    """Drop all metrics recorded so far."""
    METRICS.reset()


def inc(name: str, amount: int = 1) -> None:
    """Increment a counter on the global registry (no-op when disabled)."""
    METRICS.inc(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set a gauge on the global registry (no-op when disabled)."""
    METRICS.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the global registry."""
    METRICS.observe(name, value)


def counter(name: str) -> int:
    """Current value of a counter on the global registry (0 if unset)."""
    return METRICS.counter(name)


def snapshot() -> dict[str, Any]:
    """Deterministic plain-dict view of the global registry."""
    return METRICS.snapshot()


def to_json() -> str:
    """Canonical JSON rendering of the global registry's snapshot."""
    return METRICS.to_json()
