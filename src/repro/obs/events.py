"""Structured event log: discrete, correlated facts about a run.

Spans (:mod:`repro.obs.trace`) answer "where did the time go"; the event
log answers "what *happened*, in what order".  An :class:`Event` is one
discrete occurrence — a budget tripping, a degradation-ladder step, a
solver phase change, an injected fault, a bench scenario starting or
finishing, a solve-cache hit or miss, a pool task dispatched or
collected — stamped with

- ``seq`` — a monotonic per-process sequence number, so total order is
  recoverable from the log alone even when wall clocks are equal;
- ``run_id`` — the observed run the event belongs to (``None`` outside a
  run), the cross-artifact correlation key of the run registry;
- ``span_id`` — the ``index`` of the innermost open span at emission
  time (``None`` at top level), correlating events with the trace.

Events serialize as JSONL (``events.jsonl`` in each run directory, one
object per line), so anytime/robustness behaviour is greppable::

    grep '"name": "ladder.degraded"' runs/*/events.jsonl

Like the tracer and metrics registry, the log is **off by default**: an
emission site costs one attribute check while disabled, and recording is
behaviour-neutral (property-tested alongside the other collectors).

>>> from repro.obs import events
>>> events.reset(); events.enable()
>>> events.emit(events.EVENT_BUDGET_TRIPPED, reason="deadline")
>>> [(e.seq, e.name) for e in events.events()]
[(0, 'budget.tripped')]
>>> events.disable(); events.reset()
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.obs import trace as obs_trace

EVENTS_SCHEMA = "repro-events/v1"

# -- event vocabulary -------------------------------------------------------
# The closed set of event names the repo emits; tools/check_events_jsonl.py
# warns on names outside it, so additions belong here (and in
# docs/OBSERVABILITY.md).

EVENT_RUN_START = "run.start"
EVENT_RUN_END = "run.end"
EVENT_SCENARIO_START = "bench.scenario_start"
EVENT_SCENARIO_END = "bench.scenario_end"
EVENT_BUDGET_TRIPPED = "budget.tripped"
EVENT_LADDER_DEGRADED = "ladder.degraded"
EVENT_SOLVER_PHASE = "solver.phase"
EVENT_FAULT_INJECTED = "fault.injected"
EVENT_CACHE_HIT = "cache.hit"
EVENT_CACHE_MISS = "cache.miss"
EVENT_POOL_TASK_START = "pool.task_start"
EVENT_POOL_TASK_END = "pool.task_end"
EVENT_POOL_SKEW = "pool.skew"
EVENT_SERVER_START = "server.start"
EVENT_SERVER_STOP = "server.stop"
EVENT_SERVER_ADMIT = "server.admit"
EVENT_SERVER_REJECT = "server.reject"
EVENT_SERVER_REQUEST_START = "server.request_start"
EVENT_SERVER_REQUEST_END = "server.request_end"
EVENT_RETRY_ATTEMPT = "retry.attempt"
EVENT_RETRY_GIVE_UP = "retry.give_up"
EVENT_POOL_WORKER_CRASH = "pool.worker_crash"
EVENT_POOL_QUARANTINE = "pool.quarantine"
EVENT_SERVER_RECOVER = "server.recover"
EVENT_PLANNER_PLAN = "planner.plan"
EVENT_PLANNER_MISESTIMATE = "planner.misestimate"

VOCABULARY = (
    EVENT_RUN_START,
    EVENT_RUN_END,
    EVENT_SCENARIO_START,
    EVENT_SCENARIO_END,
    EVENT_BUDGET_TRIPPED,
    EVENT_LADDER_DEGRADED,
    EVENT_SOLVER_PHASE,
    EVENT_FAULT_INJECTED,
    EVENT_CACHE_HIT,
    EVENT_CACHE_MISS,
    EVENT_POOL_TASK_START,
    EVENT_POOL_TASK_END,
    EVENT_POOL_SKEW,
    EVENT_SERVER_START,
    EVENT_SERVER_STOP,
    EVENT_SERVER_ADMIT,
    EVENT_SERVER_REJECT,
    EVENT_SERVER_REQUEST_START,
    EVENT_SERVER_REQUEST_END,
    EVENT_RETRY_ATTEMPT,
    EVENT_RETRY_GIVE_UP,
    EVENT_POOL_WORKER_CRASH,
    EVENT_POOL_QUARANTINE,
    EVENT_SERVER_RECOVER,
    EVENT_PLANNER_PLAN,
    EVENT_PLANNER_MISESTIMATE,
)


@dataclass
class Event:
    """One recorded occurrence (an ``events.jsonl`` line)."""

    seq: int
    name: str
    ts_unix: float
    run_id: str | None
    span_id: int | None
    attrs: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        return {
            "seq": self.seq,
            "name": self.name,
            "ts_unix": self.ts_unix,
            "run_id": self.run_id,
            "span_id": self.span_id,
            "attrs": dict(self.attrs),
        }


class EventLog:
    """A process-global, append-only log of :class:`Event` records.

    Normal use goes through the module-level singleton ``EVENTS`` and the
    helpers below; tests may instantiate private logs.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.run_id: str | None = None
        self._events: list[Event] = []
        self._next_seq = 0
        # The solve server emits from its event loop while bench/CLI
        # code emits from the main thread; the lock keeps ``seq``
        # strictly increasing (the total order the log promises).
        self._lock = threading.Lock()

    # -- control -------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all events and the run binding (enabled flag unchanged)."""
        self._events = []
        self._next_seq = 0
        self.run_id = None

    def set_run_id(self, run_id: str | None) -> None:
        """Bind subsequent events to ``run_id`` (the registry's join key)."""
        self.run_id = run_id

    # -- recording -----------------------------------------------------
    def emit(self, name: str, **attrs: Any) -> None:
        """Append one event; a single attribute check while disabled.

        ``span_id`` is filled from the innermost open span of the global
        tracer, so an event inside ``with span("solver.solve"): ...``
        correlates to that span's ``index`` in the exported trace.
        """
        if not self.enabled:
            return
        open_span = obs_trace.current_span()
        with self._lock:
            self._events.append(
                Event(
                    seq=self._next_seq,
                    name=name,
                    ts_unix=time.time(),
                    run_id=self.run_id,
                    span_id=None if open_span is None else open_span.index,
                    attrs=attrs,
                )
            )
            self._next_seq += 1

    # -- inspection ----------------------------------------------------
    def events(self) -> list[Event]:
        """All recorded events in emission (= ``seq``) order."""
        return list(self._events)

    def as_dicts(self) -> list[dict[str, Any]]:
        return [e.as_dict() for e in self._events]

    def to_jsonl(self) -> str:
        """One sorted-key JSON object per line, in ``seq`` order."""
        return "".join(
            json.dumps(e.as_dict(), sort_keys=True) + "\n" for e in self._events
        )


EVENTS = EventLog()


def enable() -> None:
    """Turn event recording on (module-level singleton)."""
    EVENTS.enable()


def disable() -> None:
    """Turn event recording off; already-recorded events are kept."""
    EVENTS.disable()


def is_enabled() -> bool:
    return EVENTS.enabled


def reset() -> None:
    """Drop all events recorded so far (and the bound run id)."""
    EVENTS.reset()


def set_run_id(run_id: str | None) -> None:
    """Bind subsequent global-log events to ``run_id``."""
    EVENTS.set_run_id(run_id)


def emit(name: str, **attrs: Any) -> None:
    """Record one event on the global log (near-free no-op when disabled)."""
    EVENTS.emit(name, **attrs)


def events() -> list[Event]:
    """All events on the global log, in ``seq`` order."""
    return EVENTS.events()


def to_jsonl() -> str:
    """The global log as JSONL (one object per line)."""
    return EVENTS.to_jsonl()


def write_events(path: str | Path) -> Path:
    """Write the global log as ``events.jsonl`` via fsync-and-rename, so
    a crash mid-write never leaves a truncated log; returns the path."""
    target = Path(path)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with open(tmp, "w") as handle:
            handle.write(EVENTS.to_jsonl())
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


# ---------------------------------------------------------------------------
# Validation (shared by the test-suite and tools/check_events_jsonl.py).
# ---------------------------------------------------------------------------

_REQUIRED_FIELDS = ("seq", "name", "ts_unix", "run_id", "span_id", "attrs")


def validate_events(records: list[Any], context: str = "events") -> list[str]:
    """All structural problems in parsed event records (empty = valid).

    Each record must carry every field of :meth:`Event.as_dict` with the
    right type, ``seq`` values must be strictly increasing (the total
    order the log promises), and unknown event names are flagged so the
    vocabulary stays closed.
    """
    problems: list[str] = []
    previous_seq: int | None = None
    for position, record in enumerate(records):
        where = f"{context}[{position}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: must be an object")
            continue
        for missing in [f for f in _REQUIRED_FIELDS if f not in record]:
            problems.append(f"{where}: missing field {missing!r}")
        seq = record.get("seq")
        if not isinstance(seq, int) or isinstance(seq, bool) or seq < 0:
            problems.append(f"{where}: 'seq' must be a non-negative integer")
        else:
            if previous_seq is not None and seq <= previous_seq:
                problems.append(
                    f"{where}: 'seq' {seq} not greater than previous "
                    f"{previous_seq} (events must be strictly ordered)"
                )
            previous_seq = seq
        name = record.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"{where}: 'name' must be a non-empty string")
        elif name not in VOCABULARY:
            problems.append(
                f"{where}: unknown event name {name!r} "
                f"(vocabulary: {', '.join(VOCABULARY)})"
            )
        ts = record.get("ts_unix")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool) or ts < 0:
            problems.append(f"{where}: 'ts_unix' must be a non-negative number")
        run_id = record.get("run_id")
        if run_id is not None and not isinstance(run_id, str):
            problems.append(f"{where}: 'run_id' must be a string or null")
        span_id = record.get("span_id")
        if span_id is not None and (
            not isinstance(span_id, int) or isinstance(span_id, bool) or span_id < 0
        ):
            problems.append(
                f"{where}: 'span_id' must be a non-negative integer or null"
            )
        if "attrs" in record and not isinstance(record.get("attrs"), dict):
            problems.append(f"{where}: 'attrs' must be an object")
    return problems


def validate_jsonl(text: str, context: str = "events") -> list[str]:
    """Parse JSONL ``text`` and validate it; parse errors become problems."""
    records: list[Any] = []
    problems: list[str] = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            problems.append(f"{context}:{number}: unparseable JSON ({exc})")
    return problems + validate_events(records, context=context)
