"""Live telemetry: rolling-window request aggregation + Prometheus text.

Where :mod:`repro.obs.metrics` is the *deterministic, post-hoc* numeric
record (byte-identical ``metrics.json`` per seed, so never any timings),
this module is the *live* surface of a running solve server: what is the
request rate, the per-op latency distribution, the error and degradation
rates — right now, over the trailing window — and how much work has the
process done since it started.  The server answers the ``metrics``
protocol op (and ``repro top`` renders) from here.

Two layers:

- :class:`TelemetryWindow` — per-op request accounting.  Cumulative
  totals (requests, outcomes, error codes, one latency
  :class:`~repro.obs.metrics.HistogramSummary` per op reusing the
  log-spaced buckets) plus a ring of time slots holding the same shape
  for the trailing window.  The design is **lock-free**: the server
  records from a single thread (its event loop), each record is a
  handful of dict operations atomic under the GIL, and a slot is
  recycled by replacing the ring entry with a fresh object — a reader
  on another thread sees either the old slot or the new one, never a
  half-cleared mix.  No lock sits on the request hot path.
- The **exposition** functions — render counters / gauges / histograms
  as Prometheus text format v0.0.4 (``# HELP`` / ``# TYPE`` comments,
  cumulative ``le`` buckets ending at ``+Inf``, ``_sum`` / ``_count``
  series), plus a parser and structural validator used by ``repro top``,
  the test-suite, and ``tools/check_metrics_exposition.py``.

Log-spaced summary buckets convert directly to Prometheus histogram
buckets: the per-bucket counts become cumulative counts at each
``le = 2**(i/2)`` boundary (with the underflow bucket at ``le="0"``),
so quantile error stays the same factor-of-sqrt(2) the offline metrics
promise.
"""

from __future__ import annotations

import math
import re
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.obs.metrics import _UNDERFLOW, HistogramSummary, bucket_upper_bound

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"
EXPOSITION_VERSION = "0.0.4"

# Terminal classification of one served request.
OUTCOMES = ("ok", "degraded", "rejected", "error")

_METRIC_KINDS = ("counter", "gauge", "histogram")


def _merge_into(target: HistogramSummary, source: HistogramSummary) -> None:
    target.count += source.count
    target.total += source.total
    if source.min is not None:
        target.min = source.min if target.min is None else min(target.min, source.min)
    if source.max is not None:
        target.max = source.max if target.max is None else max(target.max, source.max)
    for index, count in source.buckets.items():
        target.buckets[index] = target.buckets.get(index, 0) + count


class _Slot:
    """One time slice of the rolling window (plain dicts, no locking)."""

    __slots__ = ("stamp", "outcomes", "latency")

    def __init__(self, stamp: int) -> None:
        self.stamp = stamp
        self.outcomes: dict[tuple[str, str], int] = {}
        self.latency: dict[str, HistogramSummary] = {}


class TelemetryWindow:
    """Per-op request telemetry: cumulative totals + a trailing window.

    ``window_seconds`` is the span the windowed view (rps, live
    quantiles, error rates) covers, sliced into ``slots`` ring entries;
    finer slicing smooths the window's leading edge at the cost of a few
    more dicts.  ``clock`` is injectable for tests (monotonic seconds).
    """

    def __init__(
        self,
        window_seconds: float = 60.0,
        slots: int = 12,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window_seconds <= 0:
            raise ValueError(f"window_seconds must be positive, got {window_seconds}")
        if slots <= 0:
            raise ValueError(f"slots must be positive, got {slots}")
        self.window_seconds = float(window_seconds)
        self.slot_seconds = self.window_seconds / slots
        self._clock = clock
        self._slots: list[_Slot] = [_Slot(-1) for _ in range(slots)]
        self.started = clock()
        # Cumulative since construction (Prometheus counter semantics).
        self._requests_total: dict[str, int] = {}
        self._outcomes_total: dict[tuple[str, str], int] = {}
        self._errors_total: dict[tuple[str, str], int] = {}
        self._latency_total: dict[str, HistogramSummary] = {}

    # -- recording -----------------------------------------------------
    def record(
        self,
        op: str,
        latency_ms: float,
        outcome: str = "ok",
        code: str | None = None,
    ) -> None:
        """Fold one served request into the totals and the live window."""
        if outcome not in OUTCOMES:
            outcome = "error"
        self._requests_total[op] = self._requests_total.get(op, 0) + 1
        key = (op, outcome)
        self._outcomes_total[key] = self._outcomes_total.get(key, 0) + 1
        if code:
            error_key = (op, str(code))
            self._errors_total[error_key] = self._errors_total.get(error_key, 0) + 1
        hist = self._latency_total.get(op)
        if hist is None:
            hist = self._latency_total[op] = HistogramSummary()
        hist.observe(latency_ms)

        slot_id = int(self._clock() / self.slot_seconds)
        position = slot_id % len(self._slots)
        slot = self._slots[position]
        if slot.stamp != slot_id:
            # Recycle by replacement: a concurrent reader holds either
            # the stale slot or this fresh one, never a partial clear.
            slot = _Slot(slot_id)
            self._slots[position] = slot
        slot.outcomes[key] = slot.outcomes.get(key, 0) + 1
        slot_hist = slot.latency.get(op)
        if slot_hist is None:
            slot_hist = slot.latency[op] = HistogramSummary()
        slot_hist.observe(latency_ms)

    # -- inspection ----------------------------------------------------
    def uptime_seconds(self) -> float:
        return max(0.0, self._clock() - self.started)

    def requests_total(self, op: str | None = None) -> int:
        if op is not None:
            return self._requests_total.get(op, 0)
        return sum(self._requests_total.values())

    def totals(self) -> dict[str, dict[str, Any]]:
        """Cumulative per-op accounting since construction."""
        out: dict[str, dict[str, Any]] = {}
        for op in sorted(self._requests_total):
            outcomes = {
                outcome: self._outcomes_total.get((op, outcome), 0)
                for outcome in OUTCOMES
            }
            errors = {
                code: count
                for (err_op, code), count in sorted(self._errors_total.items())
                if err_op == op
            }
            out[op] = {
                "requests": self._requests_total[op],
                "outcomes": outcomes,
                "errors": errors,
                "latency": self._latency_total[op],
            }
        return out

    def window(self, now: float | None = None) -> dict[str, dict[str, Any]]:
        """The trailing-window view: per-op rps, rates, and quantiles.

        Merges every live slot (stamp within the window ending at
        ``now``).  The rps denominator is the window span, clamped to
        the uptime so a server two seconds old doesn't under-report.
        """
        clock_now = self._clock() if now is None else now
        current_slot = int(clock_now / self.slot_seconds)
        oldest = current_slot - len(self._slots) + 1
        merged_outcomes: dict[tuple[str, str], int] = {}
        merged_latency: dict[str, HistogramSummary] = {}
        for slot in list(self._slots):
            if slot.stamp < oldest or slot.stamp > current_slot:
                continue
            for key, count in slot.outcomes.items():
                merged_outcomes[key] = merged_outcomes.get(key, 0) + count
            for op, hist in slot.latency.items():
                target = merged_latency.get(op)
                if target is None:
                    target = merged_latency[op] = HistogramSummary()
                _merge_into(target, hist)
        span = min(self.window_seconds, max(self.slot_seconds, self.uptime_seconds()))
        ops = sorted({op for op, _ in merged_outcomes} | set(merged_latency))
        view: dict[str, dict[str, Any]] = {}
        for op in ops:
            outcomes = {
                outcome: merged_outcomes.get((op, outcome), 0) for outcome in OUTCOMES
            }
            requests = sum(outcomes.values())
            hist = merged_latency.get(op, HistogramSummary())
            failed = outcomes["error"] + outcomes["rejected"]
            view[op] = {
                "requests": requests,
                "rps": requests / span,
                "error_rate": failed / requests if requests else 0.0,
                "degraded_rate": outcomes["degraded"] / requests if requests else 0.0,
                "p50_ms": hist.quantile(0.50) if hist.count else None,
                "p99_ms": hist.quantile(0.99) if hist.count else None,
                "outcomes": outcomes,
            }
        return view


# ---------------------------------------------------------------------------
# Prometheus text exposition (format v0.0.4).
# ---------------------------------------------------------------------------


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: Mapping[str, str]) -> str:
    if not labels:
        return ""
    parts = ",".join(
        f'{key}="{_escape_label(str(labels[key]))}"' for key in sorted(labels)
    )
    return "{" + parts + "}"


def sample_line(name: str, labels: Mapping[str, str], value: float) -> str:
    return f"{name}{_format_labels(labels)} {_format_value(value)}"


def scalar_family(
    name: str,
    kind: str,
    help_text: str,
    samples: Sequence[tuple[Mapping[str, str], float]],
) -> list[str]:
    """``# HELP`` / ``# TYPE`` header plus one line per sample."""
    if kind not in ("counter", "gauge"):
        raise ValueError(f"scalar family kind must be counter|gauge, got {kind!r}")
    lines = [f"# HELP {name} {_escape_help(help_text)}", f"# TYPE {name} {kind}"]
    for labels, value in samples:
        lines.append(sample_line(name, labels, value))
    return lines


def histogram_family(
    name: str,
    help_text: str,
    samples: Sequence[tuple[Mapping[str, str], HistogramSummary]],
) -> list[str]:
    """A :class:`HistogramSummary` per label-set as a Prometheus histogram.

    The log-spaced summary buckets become cumulative ``le`` buckets: the
    underflow bucket surfaces as ``le="0"``, each populated log bucket
    at its upper bound, and the mandatory ``le="+Inf"`` bucket equals
    the observation count.
    """
    lines = [f"# HELP {name} {_escape_help(help_text)}", f"# TYPE {name} histogram"]
    for labels, summary in samples:
        cumulative = 0
        for index in sorted(summary.buckets):
            cumulative += summary.buckets[index]
            bound = "0" if index == _UNDERFLOW else _format_value(
                bucket_upper_bound(index)
            )
            lines.append(
                sample_line(name + "_bucket", {**labels, "le": bound}, cumulative)
            )
        lines.append(
            sample_line(name + "_bucket", {**labels, "le": "+Inf"}, summary.count)
        )
        lines.append(sample_line(name + "_sum", labels, summary.total))
        lines.append(sample_line(name + "_count", labels, summary.count))
    return lines


def render_exposition(families: Iterable[Sequence[str]]) -> str:
    """Join family line-blocks into one exposition document."""
    lines: list[str] = []
    for block in families:
        lines.extend(block)
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Parsing and structural validation (repro top, CI smoke).
# ---------------------------------------------------------------------------

_NAME_PATTERN = r"[a-zA-Z_:][a-zA-Z0-9_:]*"
_SAMPLE_RE = re.compile(
    rf"^({_NAME_PATTERN})(?:\{{(.*)\}})?\s+(\S+)(?:\s+(-?\d+))?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass
class ParsedSample:
    name: str  # the full series name, e.g. ``foo_bucket``
    labels: dict[str, str]
    value: float


@dataclass
class ParsedFamily:
    name: str
    kind: str | None = None
    help: str | None = None
    samples: list[ParsedSample] = field(default_factory=list)


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\x00", "\\")
    )


def _base_name(series: str, families: Mapping[str, ParsedFamily]) -> str:
    for suffix in ("_bucket", "_sum", "_count"):
        if series.endswith(suffix):
            base = series[: -len(suffix)]
            family = families.get(base)
            if family is not None and family.kind == "histogram":
                return base
    return series


def parse_exposition(text: str) -> tuple[dict[str, ParsedFamily], list[str]]:
    """Parse a text-format document into families; returns problems too.

    Deliberately strict about what the repo *produces* (sample lines,
    HELP/TYPE comments) and silent about what Prometheus allows beyond
    that (other comments are skipped).
    """
    families: dict[str, ParsedFamily] = {}
    problems: list[str] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 3 and parts[1] == "TYPE":
                name, kind = parts[2], parts[3] if len(parts) > 3 else ""
                family = families.setdefault(name, ParsedFamily(name))
                if family.kind is not None:
                    problems.append(f"line {lineno}: duplicate TYPE for {name}")
                if kind not in _METRIC_KINDS:
                    problems.append(
                        f"line {lineno}: TYPE {name} has unknown kind {kind!r}"
                    )
                family.kind = kind
            elif len(parts) >= 3 and parts[1] == "HELP":
                name = parts[2]
                family = families.setdefault(name, ParsedFamily(name))
                family.help = parts[3] if len(parts) > 3 else ""
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            problems.append(f"line {lineno}: unparseable sample line {line!r}")
            continue
        series, label_text, value_text = match.group(1), match.group(2), match.group(3)
        labels: dict[str, str] = {}
        if label_text:
            consumed = 0
            for label_match in _LABEL_RE.finditer(label_text):
                labels[label_match.group(1)] = _unescape_label(label_match.group(2))
                consumed += 1
            expected = label_text.count("=")
            if consumed != expected:
                problems.append(f"line {lineno}: malformed labels {label_text!r}")
        try:
            value = float(value_text)
        except ValueError:
            problems.append(f"line {lineno}: bad sample value {value_text!r}")
            continue
        base = _base_name(series, families)
        family = families.setdefault(base, ParsedFamily(base))
        family.samples.append(ParsedSample(name=series, labels=labels, value=value))
    return families, problems


def _histogram_problems(family: ParsedFamily) -> list[str]:
    problems: list[str] = []
    groups: dict[tuple[tuple[str, str], ...], dict[str, Any]] = {}
    for sample in family.samples:
        labels = {k: v for k, v in sample.labels.items() if k != "le"}
        key = tuple(sorted(labels.items()))
        group = groups.setdefault(key, {"buckets": [], "sum": None, "count": None})
        if sample.name.endswith("_bucket"):
            le = sample.labels.get("le")
            if le is None:
                problems.append(f"{family.name}: bucket sample without 'le' label")
                continue
            try:
                bound = math.inf if le == "+Inf" else float(le)
            except ValueError:
                problems.append(f"{family.name}: bad le value {le!r}")
                continue
            group["buckets"].append((bound, sample.value))
        elif sample.name.endswith("_sum"):
            group["sum"] = sample.value
        elif sample.name.endswith("_count"):
            group["count"] = sample.value
        else:
            problems.append(
                f"{family.name}: unexpected series {sample.name!r} in histogram"
            )
    if not groups:
        problems.append(f"{family.name}: histogram with no samples")
    for key, group in sorted(groups.items()):
        where = f"{family.name}{dict(key) or ''}"
        buckets = sorted(group["buckets"])
        if not buckets or buckets[-1][0] != math.inf:
            problems.append(f"{where}: missing le=\"+Inf\" bucket")
            continue
        counts = [count for _, count in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            problems.append(f"{where}: bucket counts are not cumulative")
        if group["count"] is None:
            problems.append(f"{where}: missing _count series")
        elif group["count"] != buckets[-1][1]:
            problems.append(f"{where}: _count disagrees with le=\"+Inf\" bucket")
        if group["sum"] is None:
            problems.append(f"{where}: missing _sum series")
    return problems


def validate_exposition(
    text: str, required: Mapping[str, str] | None = None
) -> list[str]:
    """All structural problems in an exposition document (empty = valid).

    ``required`` maps family name to expected kind; each must be present
    with at least one sample.
    """
    families, problems = parse_exposition(text)
    for name, family in sorted(families.items()):
        if family.samples and family.kind is None:
            problems.append(f"{name}: samples without a TYPE declaration")
        if family.kind == "histogram":
            problems.extend(_histogram_problems(family))
    for name, kind in sorted((required or {}).items()):
        family = families.get(name)
        if family is None:
            problems.append(f"required family {name} is missing")
            continue
        if family.kind != kind:
            problems.append(
                f"required family {name} has kind {family.kind!r}, expected {kind!r}"
            )
        if not family.samples:
            problems.append(f"required family {name} has no samples")
    return problems
