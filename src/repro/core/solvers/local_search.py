"""Local search on TSP(1,2) tours: 2-opt and or-opt for pebbling schemes.

Polishing pass applied on top of any constructive solver.  Operates on the
edge-tour representation; with weights in {1, 2} every improving move
removes at least one jump, so the number of improvement steps is bounded by
the initial jump count and the search is fast in practice.

Moves implemented:

- **2-opt** (segment reversal): replace steps ``(t[i−1], t[i])`` and
  ``(t[j], t[j+1])`` by ``(t[i−1], t[j])`` and ``(t[i], t[j+1])``.  Path
  variant: prefix/suffix reversals touch only one boundary.
- **or-opt** (node relocation): move a single tour node between two
  adjacent tour positions elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.core.tsp import edges_share_endpoint, tour_cost
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph


def _w(a, b) -> int:
    """TSP(1,2) step weight between two edge nodes."""
    return 1 if edges_share_endpoint(a, b) else 2


def two_opt_pass(tour: list) -> bool:
    """One first-improvement 2-opt sweep; returns True if improved."""
    n = len(tour)
    for i in range(n - 1):
        for j in range(i + 1, n):
            # Reversing tour[i..j]: boundary steps are (i-1, i) and (j, j+1).
            before = 0
            after = 0
            if i > 0:
                before += _w(tour[i - 1], tour[i])
                after += _w(tour[i - 1], tour[j])
            if j < n - 1:
                before += _w(tour[j], tour[j + 1])
                after += _w(tour[i], tour[j + 1])
            if after < before:
                tour[i : j + 1] = reversed(tour[i : j + 1])
                return True
    return False


def or_opt_pass(tour: list) -> bool:
    """One first-improvement single-node relocation sweep."""
    n = len(tour)
    for i in range(n):
        node = tour[i]
        removal_gain = 0
        if i > 0:
            removal_gain += _w(tour[i - 1], node)
        if i < n - 1:
            removal_gain += _w(node, tour[i + 1])
        if 0 < i < n - 1:
            removal_gain -= _w(tour[i - 1], tour[i + 1])
        rest = tour[:i] + tour[i + 1 :]
        for k in range(len(rest) + 1):
            if k == i:
                continue  # reinserting in place
            insertion_cost = 0
            if k > 0:
                insertion_cost += _w(rest[k - 1], node)
            if k < len(rest):
                insertion_cost += _w(node, rest[k])
            if 0 < k < len(rest):
                insertion_cost -= _w(rest[k - 1], rest[k])
            if insertion_cost < removal_gain:
                tour[:] = rest[:k] + [node] + rest[k:]
                return True
    return False


def improve_tour(
    tour: list, max_rounds: int = 10_000, budget: Budget | None = None
) -> list:
    """Run 2-opt and or-opt to a local optimum; returns the improved tour.

    The input list is not modified.  Anytime: the tour is valid between
    passes, so a tripped ``budget`` just stops improving early.
    """
    working = list(tour)
    for _ in range(max_rounds):
        if budget is not None and budget.poll(max(1, len(working))):
            break  # anytime cut between passes; tour stays valid
        if two_opt_pass(working):
            continue
        if or_opt_pass(working):
            continue
        break
    assert tour_cost(working) <= tour_cost(list(tour))
    return working


@dataclass(frozen=True)
class PolishResult:
    scheme: PebblingScheme
    effective_cost: int
    jumps: int
    improvement: int  # jumps removed relative to the input scheme


def polish_scheme(
    graph: AnyGraph, scheme: PebblingScheme, budget: Budget | None = None
) -> PolishResult:
    """Improve a canonical scheme with local search, per component.

    The scheme must be an edge order.  Each component's slice of the order
    is polished independently (cross-component steps are unavoidable jumps).
    """
    working = graph.without_isolated_vertices()
    by_component: dict[int, list] = {}
    component_of: dict = {}
    for index, vertex_set in enumerate(component_vertex_sets(working)):
        for v in vertex_set:
            component_of[v] = index
        by_component[index] = []
    for a, b in scheme.configurations:
        by_component[component_of[a]].append(
            working.orient_edge(a, b)
            if isinstance(working, BipartiteGraph)
            else (a, b)
        )
    flat: list = []
    with obs_trace.span("solver.polish"):
        for index in sorted(by_component):
            flat.extend(improve_tour(by_component[index], budget=budget))
    improved = PebblingScheme.from_edge_order(working, flat)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("solver.polish.passes")
        obs_metrics.inc(
            "solver.polish.jumps_removed", scheme.jumps() - improved.jumps()
        )
    return PolishResult(
        scheme=improved,
        effective_cost=improved.effective_cost(working),
        jumps=improved.jumps(),
        improvement=scheme.jumps() - improved.jumps(),
    )
