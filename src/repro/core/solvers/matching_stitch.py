"""Matching-based TSP(1,2) fragment stitching.

The paper notes that "an algorithm by Papadimitriou and Yannakakis can be
used to approximate PEBBLE within a factor of 7/6".  That algorithm grows a
tour out of a maximum matching; this module implements the same idea as a
practical heuristic:

1. compute a large matching of ``L(G)`` (greedy, improved by
   augmenting-path search);
2. treat each matched pair as a 2-node path fragment and each exposed node
   as a 1-node fragment;
3. repeatedly merge fragments whose endpoints are adjacent in ``L(G)``
   (each merge removes one future jump);
4. concatenate what remains, greedily ordering fragments so free junctions
   are exploited.

No formal 7/6 certificate is claimed for this simplified variant — the
benchmark ``bench_approx_quality`` measures its ratio against the exact
optimum instead, which is the reproduction-relevant comparison.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.line_graph import line_graph
from repro.graphs.matching import greedy_maximal_matching, improve_matching
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.core.tsp import reorder_paths_greedily, tour_from_paths
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class MatchingStitchResult:
    scheme: PebblingScheme
    effective_cost: int
    jumps: int
    fragments_initial: int
    fragments_final: int


def _merge_fragments(
    line: Graph, fragments: list[deque], budget: Budget | None = None
) -> list[deque]:
    """Greedily merge fragments whose endpoints are adjacent in ``line``.

    Anytime: every intermediate fragment set concatenates into a valid
    tour (unmerged boundaries are just jumps), so a tripped ``budget``
    simply stops merging early.
    """
    active = [f for f in fragments if f]
    merged = True
    while merged and len(active) > 1:
        if budget is not None and budget.poll(len(active)):
            break  # anytime cut: remaining fragment boundaries become jumps
        merged = False
        # The endpoint index is rebuilt after every merge (a merge can turn
        # a recorded endpoint into an interior node, so the map goes stale).
        endpoint_of: dict = {}
        for index, fragment in enumerate(active):
            endpoint_of.setdefault(fragment[0], []).append(index)
            if len(fragment) > 1:
                endpoint_of.setdefault(fragment[-1], []).append(index)
        for index, fragment in enumerate(active):
            for end, flip_self in ((fragment[-1], False), (fragment[0], True)):
                partner_index = None
                partner_flip = False
                for neighbor in line.neighbors(end):
                    for j in endpoint_of.get(neighbor, []):
                        if j == index:
                            continue
                        partner_index = j
                        partner_flip = active[j][0] != neighbor
                        break
                    if partner_index is not None:
                        break
                if partner_index is None:
                    continue
                other = active[partner_index]
                if flip_self:
                    fragment.reverse()
                if partner_flip:
                    other.reverse()
                fragment.extend(other)
                other.clear()
                merged = True
                break
            if merged:
                break
        active = [f for f in active if f]
    return active


def component_tour_matching(
    component: AnyGraph, budget: Budget | None = None
) -> tuple[list, int, int]:
    """Tour of one component: ``(tour, initial_fragments, final_fragments)``."""
    line = line_graph(component)
    if line.num_vertices == 0:
        return [], 0, 0
    matching = improve_matching(line, greedy_maximal_matching(line))
    matched_nodes = {v for pair in matching for v in pair}
    fragments = [deque(pair) for pair in matching]
    fragments.extend(
        deque([v]) for v in line.vertices if v not in matched_nodes
    )
    initial = len(fragments)
    merged = _merge_fragments(line, fragments, budget=budget)
    paths = reorder_paths_greedily([list(f) for f in merged])
    return tour_from_paths(paths), initial, len(merged)


def solve_matching_stitch(
    graph: AnyGraph, budget: Budget | None = None
) -> MatchingStitchResult:
    """Matching-stitch scheme over every component of ``graph``."""
    working = graph.without_isolated_vertices()
    flat: list = []
    initial_total = 0
    final_total = 0
    for vertex_set in component_vertex_sets(working):
        component = working.subgraph(vertex_set)
        tour, initial, final = component_tour_matching(component, budget=budget)
        flat.extend(tour)
        initial_total += initial
        final_total += final
    scheme = PebblingScheme.from_edge_order(working, flat)
    return MatchingStitchResult(
        scheme=scheme,
        effective_cost=scheme.effective_cost(working),
        jumps=scheme.jumps(),
        fragments_initial=initial_total,
        fragments_final=final_total,
    )
