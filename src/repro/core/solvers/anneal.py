"""Simulated annealing for TSP(1,2) pebbling tours.

The last rung of the heuristic ladder: start from the best constructive
solution (DFS 1.25 algorithm), then anneal with 2-opt reversals and
single-edge relocations, accepting uphill moves with temperature-scheduled
probability.  With integer costs and the optimum frequently equal to
``m``, annealing usually lands exactly on the optimum for mid-size
instances where exact search is already expensive — the benchmark
``bench_approx_quality`` quantifies this.

Deterministic given the seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.core.solvers.dfs_approx import component_tour_dfs
from repro.core.tsp import edges_share_endpoint, tour_cost
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class AnnealResult:
    scheme: PebblingScheme
    effective_cost: int
    jumps: int
    steps_accepted: int


def _w(a, b) -> int:
    return 1 if edges_share_endpoint(a, b) else 2


def anneal_component_tour(
    tour: list,
    rng: random.Random,
    steps: int = 4000,
    start_temperature: float = 1.5,
    budget: Budget | None = None,
) -> tuple[list, int]:
    """Anneal one component's tour in place semantics (returns a new list).

    Returns ``(tour, accepted_moves)``.  Anytime: the start tour is always
    a full valid tour, so a tripped ``budget`` just ends the annealing loop
    early and returns the best tour seen so far.
    """
    n = len(tour)
    if n < 3:
        return list(tour), 0
    current = list(tour)
    cost = tour_cost(current)
    best = list(current)
    best_cost = cost
    accepted = 0
    temperature = start_temperature
    cooling = 0.999
    for _ in range(steps):
        if best_cost == n - 1:
            break  # perfect tour: no jumps left to remove
        if budget is not None and budget.poll():
            break  # anytime cut: keep the best tour found so far
        i = rng.randrange(n - 1)
        j = rng.randrange(i + 1, n)
        # 2-opt delta for reversing current[i..j].
        delta = 0
        if i > 0:
            delta += _w(current[i - 1], current[j]) - _w(current[i - 1], current[i])
        if j < n - 1:
            delta += _w(current[i], current[j + 1]) - _w(current[j], current[j + 1])
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature, 1e-6)):
            current[i : j + 1] = reversed(current[i : j + 1])
            cost += delta
            accepted += 1
            if cost < best_cost:
                best_cost = cost
                best = list(current)
        temperature *= cooling
    return best, accepted


def solve_anneal(
    graph: AnyGraph, seed: int = 0, steps: int = 4000, budget: Budget | None = None
) -> AnnealResult:
    """Anneal every component from the DFS constructive start."""
    working = graph.without_isolated_vertices()
    rng = random.Random(seed)
    flat: list = []
    accepted_total = 0
    with obs_trace.span("solver.anneal"):
        for vertex_set in component_vertex_sets(working):
            component = working.subgraph(vertex_set)
            start, _chunks = component_tour_dfs(component)
            tour, accepted = anneal_component_tour(
                start, rng, steps=steps, budget=budget
            )
            flat.extend(tour)
            accepted_total += accepted
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("solver.anneal.solves")
        obs_metrics.inc("solver.anneal.moves_accepted", accepted_total)
    scheme = PebblingScheme.from_edge_order(working, flat)
    return AnnealResult(
        scheme=scheme,
        effective_cost=scheme.effective_cost(working),
        jumps=scheme.jumps(),
        steps_accepted=accepted_total,
    )
