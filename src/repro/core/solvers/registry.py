"""Uniform solver front door with automatic method selection.

``solve(graph)`` picks the cheapest method that is guaranteed optimal or,
failing that, the best approximation available:

1. if the graph is a union of bicliques (equijoin shape), the linear-time
   perfect pebbler — optimal (Theorems 3.2/4.1);
2. if each component's edge count is within the exact budget, the exact
   search — optimal;
3. otherwise the certified 1.25-approximation, polished with local search.

Explicit methods can be requested by name, which benchmarks use to compare
strategies on identical inputs.

Budgeted, anytime solving (see ``docs/ROBUSTNESS.md``): passing
``deadline=`` / ``memo_cap=`` (or an explicit ``budget=Budget(...)``, or
installing one ambiently with :func:`repro.runtime.use_budget`) makes every
method cooperative.  On exhaustion the registry never raises — it walks
the **fallback ladder** ``exact → dfs+polish → greedy``, so the
1.25-approximation guarantee (Theorem 3.1) is the worst case actually
served.  The result's ``status`` records what happened
(``optimal | complete | budget_exhausted | timed_out``) and
``provenance`` carries the partial-search evidence (nodes expanded,
elapsed time, the poly-time lower bound, and each degradation step).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

from repro.errors import BudgetExhaustedError, InstanceTooLargeError, SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.simple import Graph
from repro.core.lower_bounds import effective_cost_lower_bound
from repro.core.scheme import PebblingScheme
from repro.core.solvers import exact as exact_mod
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.equijoin import is_union_of_bicliques, solve_equijoin
from repro.core.solvers.greedy import solve_greedy
from repro.core.solvers.local_search import polish_scheme
from repro.core.solvers.matching_stitch import solve_matching_stitch
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.anytime import (
    DEGRADED_STATUSES,
    STATUS_BUDGET_EXHAUSTED,
    STATUS_COMPLETE,
    STATUS_OPTIMAL,
    STATUS_TIMED_OUT,
    SolveProvenance,
)
from repro.runtime.budget import Budget, current_budget

AnyGraph = Graph | BipartiteGraph

# Largest per-component edge count the auto method hands to exact search.
AUTO_EXACT_EDGE_LIMIT = 16

METHODS = (
    "auto",
    "exact",
    "equijoin",
    "dfs",
    "dfs+polish",
    "greedy",
    "greedy+polish",
    "matching",
    "matching+polish",
    "anneal",
)


@dataclass(frozen=True)
class SolveResult:
    """A solved pebbling instance.

    ``optimal`` is True only when the method carries an optimality
    guarantee (exact search, or the equijoin fast path).  ``status`` is the
    anytime outcome (:mod:`repro.runtime.anytime`); ``provenance`` is only
    populated when a budget was in play or the fallback ladder fired, so
    un-budgeted callers see exactly the legacy result shape.
    """

    scheme: PebblingScheme
    method: str
    effective_cost: int
    raw_cost: int
    jumps: int
    optimal: bool
    status: str = STATUS_OPTIMAL
    provenance: SolveProvenance | None = None

    def summary(self) -> str:
        flag = "optimal" if self.optimal else "approximate"
        base = (
            f"{self.method}: pi={self.effective_cost} "
            f"(pi_hat={self.raw_cost}, jumps={self.jumps}, {flag})"
        )
        if self.status in DEGRADED_STATUSES:
            base += f" [{self.status}]"
        return base


def _status_of(exc: Exception) -> str:
    """The anytime status a caught exhaustion exception maps to."""
    if isinstance(exc, BudgetExhaustedError) and exc.reason == "deadline":
        return STATUS_TIMED_OUT
    return STATUS_BUDGET_EXHAUSTED


def _count_exhaustion(exc: Exception) -> None:
    if not obs_metrics.METRICS.enabled:
        return
    if _status_of(exc) == STATUS_TIMED_OUT:
        obs_metrics.inc("solver.deadline_exceeded")
    else:
        obs_metrics.inc("solver.budget_exhausted")


def _count_degradation(src: str, dst: str, exc: Exception | None = None) -> None:
    """Record one degradation-ladder step: a counter for the metrics
    snapshot plus a structured ``ladder.degraded`` event carrying the
    triggering status, so anytime behaviour is greppable per run."""
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc(f"solver.degraded.{src}_to_{dst}")
    if obs_events.EVENTS.enabled:
        obs_events.emit(
            obs_events.EVENT_LADDER_DEGRADED,
            src=src,
            dst=dst,
            status=_status_of(exc) if exc is not None else None,
            error_type=type(exc).__name__ if exc is not None else None,
        )


def _wrap(
    graph: AnyGraph,
    scheme: PebblingScheme,
    method: str,
    optimal: bool,
    budget: Budget | None = None,
    degradations: tuple[str, ...] = (),
    forced_status: str | None = None,
) -> SolveResult:
    working = graph.without_isolated_vertices()
    if forced_status is not None:
        status = forced_status
    elif budget is not None and budget.exhausted:
        status = budget.status()
    else:
        status = STATUS_OPTIMAL if optimal else STATUS_COMPLETE
    if status in DEGRADED_STATUSES or degradations:
        optimal = False
    provenance = None
    if budget is not None or degradations:
        provenance = SolveProvenance(
            nodes_expanded=budget.nodes_charged if budget is not None else 0,
            elapsed_seconds=budget.elapsed() if budget is not None else 0.0,
            lower_bound=effective_cost_lower_bound(working),
            degradations=tuple(degradations),
        )
    return SolveResult(
        scheme=scheme,
        method=method,
        effective_cost=scheme.effective_cost(working),
        raw_cost=scheme.cost(),
        jumps=scheme.jumps(),
        optimal=optimal,
        status=status,
        provenance=provenance,
    )


def _max_component_edges(graph: AnyGraph) -> int:
    working = graph.without_isolated_vertices()
    sizes = [
        working.subgraph(vs).num_edges
        for vs in component_vertex_sets(working)
    ]
    return max(sizes, default=0)


# Options consumed by budget resolution; solve() strips them before
# forwarding the remaining solver options down the method dispatch.
_BUDGET_OPTION_KEYS = ("budget", "deadline", "memo_cap", "clock", "check_interval")


def _resolve_budget(options: dict) -> Budget | None:
    """Extract/construct the cooperative budget for this solve.

    Priority: explicit ``budget=`` > a budget built from ``deadline=`` /
    ``memo_cap=`` (plus optional ``clock=`` / ``check_interval=``) > the
    ambient budget installed by :func:`repro.runtime.use_budget` > none.
    The legacy ``node_budget`` option is *not* consumed here: it remains
    the exact solver's hard search limit.

    Resolution is **non-destructive**: the caller's dict is only read, so
    a batch caller (``repro.parallel.solve_many``) can reuse one options
    dict across many solves without silently losing ``deadline=`` /
    ``budget=`` / ``memo_cap=`` after the first one.
    """
    budget = options.get("budget")
    deadline = options.get("deadline")
    memo_cap = options.get("memo_cap")
    clock = options.get("clock")
    check_interval = options.get("check_interval", 1)
    if budget is not None:
        return budget
    if deadline is not None or memo_cap is not None:
        return Budget(
            deadline=deadline,
            memo_cap=memo_cap,
            clock=clock,
            check_interval=check_interval,
        )
    return current_budget()


def _current_solve_cache():
    """The ambient solve cache, if :mod:`repro.parallel.cache` installed
    one (late import: the parallel package depends on this module)."""
    cache_mod = sys.modules.get("repro.parallel.cache")
    if cache_mod is None:
        return None
    return cache_mod.current_cache()


def solve(graph: AnyGraph, method: str = "auto", **options) -> SolveResult:
    """Solve PEBBLE on ``graph`` with the requested ``method``.

    Options: ``node_budget`` (exact search hard limit),
    ``exact_edge_limit`` (auto-mode threshold for exact search),
    ``deadline`` / ``memo_cap`` / ``clock`` / ``check_interval`` /
    ``budget`` (cooperative anytime budget — see ``docs/ROBUSTNESS.md``).

    When a solve cache is installed (``docs/PARALLEL.md``), it is
    consulted *before* the degradation ladder: a hit returns the cached
    result immediately, and clean (undegraded) results are stored on the
    way out.
    """
    if method not in METHODS:
        raise SolverError(f"unknown method {method!r}; choose from {METHODS}")

    budget = _resolve_budget(options)
    solver_options = {
        k: v for k, v in options.items() if k not in _BUDGET_OPTION_KEYS
    }
    cache = _current_solve_cache()
    token = None
    if cache is not None:
        hit, token = cache.consult(graph, method, solver_options)
        if hit is not None:
            return hit
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc(f"solver.method.{method}")
    with obs_trace.span("solver.solve", method=method):
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_SOLVER_PHASE, phase="solve", method=method
            )
        result = _solve(graph, method, budget, **solver_options)
    if cache is not None and token is not None:
        cache.store(token, result)
    return result


def _solve_exact(
    graph: AnyGraph,
    budget: Budget | None,
    degradations: tuple[str, ...],
    **options,
) -> SolveResult:
    """The ``exact`` method, anytime under a budget.

    Without a budget this is the legacy path: the hard ``node_budget``
    raises :class:`InstanceTooLargeError`.  With a budget, exhaustion
    (cooperative *or* legacy) degrades to the DFS 1.25-approximation and
    the result records the degradation instead of raising.
    """
    hard_limit = options.get("node_budget", exact_mod.DEFAULT_NODE_BUDGET)
    if budget is None:
        result = exact_mod.solve_exact(graph, node_budget=hard_limit)
        return _wrap(graph, result.scheme, "exact", optimal=True,
                     degradations=degradations)
    try:
        result = exact_mod.solve_exact(
            graph, node_budget=hard_limit, budget=budget
        )
        return _wrap(graph, result.scheme, "exact", optimal=True,
                     budget=budget, degradations=degradations)
    except (BudgetExhaustedError, InstanceTooLargeError) as exc:
        _count_exhaustion(exc)
        _count_degradation("exact", "dfs+polish", exc)
        forced = _status_of(exc)
        degradations = degradations + ("exact->dfs+polish",)
        # The guarantee rung: unbudgeted so it always completes (linear
        # time); polishing polls the (already tripped) budget and no-ops.
        scheme = solve_dfs_approx(graph).scheme
        scheme = polish_scheme(graph, scheme, budget=budget).scheme
        return _wrap(graph, scheme, "dfs+polish", optimal=False,
                     budget=budget, degradations=degradations,
                     forced_status=forced)


def _solve(
    graph: AnyGraph,
    method: str,
    budget: Budget | None = None,
    degradations: tuple[str, ...] = (),
    **options,
) -> SolveResult:
    if method == "auto":
        if isinstance(graph, BipartiteGraph) and is_union_of_bicliques(graph):
            return _solve(graph, "equijoin", budget, degradations)
        limit = options.get("exact_edge_limit", AUTO_EXACT_EDGE_LIMIT)
        if _max_component_edges(graph) <= limit:
            # _solve_exact already absorbs exhaustion when a budget is in
            # play; without one, legacy InstanceTooLargeError must still
            # not leak out of auto — fall to the approximation rung.
            try:
                return _solve_exact(graph, budget, degradations, **options)
            except InstanceTooLargeError as exc:
                _count_exhaustion(exc)
                _count_degradation("exact", "dfs+polish", exc)
                degradations = degradations + ("exact->dfs+polish",)
                forced = _status_of(exc)
                result = _solve(
                    graph, "dfs+polish", budget, degradations, **options
                )
                return _wrap(
                    graph, result.scheme, "dfs+polish", optimal=False,
                    budget=budget, degradations=degradations,
                    forced_status=forced,
                )
        try:
            return _solve(graph, "dfs+polish", budget, degradations, **options)
        except BudgetExhaustedError as exc:
            # Defensive final rung: dfs+polish only polls today, but if a
            # future checkpoint raises, greedy still serves an answer.
            _count_exhaustion(exc)
            _count_degradation("dfs+polish", "greedy", exc)
            degradations = degradations + ("dfs+polish->greedy",)
            result = solve_greedy(graph)
            return _wrap(
                graph, result.scheme, "greedy", optimal=False, budget=budget,
                degradations=degradations, forced_status=_status_of(exc),
            )

    if method == "equijoin":
        scheme = solve_equijoin(graph)
        return _wrap(graph, scheme, method, optimal=True,
                     degradations=degradations)

    if method == "exact":
        return _solve_exact(graph, budget, degradations, **options)

    if method in ("dfs", "dfs+polish"):
        result = solve_dfs_approx(graph, budget=budget)
        scheme = result.scheme
        if method == "dfs+polish":
            scheme = polish_scheme(graph, scheme, budget=budget).scheme
        return _wrap(graph, scheme, method, optimal=False, budget=budget,
                     degradations=degradations)

    if method in ("greedy", "greedy+polish"):
        result = solve_greedy(graph, budget=budget)
        scheme = result.scheme
        if method == "greedy+polish":
            scheme = polish_scheme(graph, scheme, budget=budget).scheme
        return _wrap(graph, scheme, method, optimal=False, budget=budget,
                     degradations=degradations)

    if method == "anneal":
        from repro.core.solvers.anneal import solve_anneal

        result = solve_anneal(
            graph,
            seed=options.get("seed", 0),
            steps=options.get("steps", 4000),
            budget=budget,
        )
        return _wrap(graph, result.scheme, method, optimal=False,
                     budget=budget, degradations=degradations)

    # matching / matching+polish
    result = solve_matching_stitch(graph, budget=budget)
    scheme = result.scheme
    if method == "matching+polish":
        scheme = polish_scheme(graph, scheme, budget=budget).scheme
    return _wrap(graph, scheme, method, optimal=False, budget=budget,
                 degradations=degradations)


def optimal_effective_cost(graph: AnyGraph, **options) -> int:
    """``π(G)`` via the cheapest guaranteed-optimal method.

    Raises :class:`SolverError` if a budget forced the exact search to
    degrade — a degraded answer carries no optimality certificate.
    """
    if isinstance(graph, BipartiteGraph) and is_union_of_bicliques(graph):
        return graph.without_isolated_vertices().num_edges
    result = solve(graph, "exact", **options)
    if not result.optimal:
        raise SolverError(
            "exact search degraded under its budget "
            f"(status={result.status}); no optimality certificate"
        )
    return result.effective_cost
