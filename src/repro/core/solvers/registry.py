"""Uniform solver front door with automatic method selection.

``solve(graph)`` picks the cheapest method that is guaranteed optimal or,
failing that, the best approximation available:

1. if the graph is a union of bicliques (equijoin shape), the linear-time
   perfect pebbler — optimal (Theorems 3.2/4.1);
2. if each component's edge count is within the exact budget, the exact
   search — optimal;
3. otherwise the certified 1.25-approximation, polished with local search.

Explicit methods can be requested by name, which benchmarks use to compare
strategies on identical inputs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.core.solvers import exact as exact_mod
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.equijoin import is_union_of_bicliques, solve_equijoin
from repro.core.solvers.greedy import solve_greedy
from repro.core.solvers.local_search import polish_scheme
from repro.core.solvers.matching_stitch import solve_matching_stitch
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

AnyGraph = Graph | BipartiteGraph

# Largest per-component edge count the auto method hands to exact search.
AUTO_EXACT_EDGE_LIMIT = 16

METHODS = (
    "auto",
    "exact",
    "equijoin",
    "dfs",
    "dfs+polish",
    "greedy",
    "greedy+polish",
    "matching",
    "matching+polish",
    "anneal",
)


@dataclass(frozen=True)
class SolveResult:
    """A solved pebbling instance.

    ``optimal`` is True only when the method carries an optimality
    guarantee (exact search, or the equijoin fast path).
    """

    scheme: PebblingScheme
    method: str
    effective_cost: int
    raw_cost: int
    jumps: int
    optimal: bool

    def summary(self) -> str:
        flag = "optimal" if self.optimal else "approximate"
        return (
            f"{self.method}: pi={self.effective_cost} "
            f"(pi_hat={self.raw_cost}, jumps={self.jumps}, {flag})"
        )


def _wrap(graph: AnyGraph, scheme: PebblingScheme, method: str, optimal: bool) -> SolveResult:
    working = graph.without_isolated_vertices()
    return SolveResult(
        scheme=scheme,
        method=method,
        effective_cost=scheme.effective_cost(working),
        raw_cost=scheme.cost(),
        jumps=scheme.jumps(),
        optimal=optimal,
    )


def _max_component_edges(graph: AnyGraph) -> int:
    working = graph.without_isolated_vertices()
    sizes = [
        working.subgraph(vs).num_edges
        for vs in component_vertex_sets(working)
    ]
    return max(sizes, default=0)


def solve(graph: AnyGraph, method: str = "auto", **options) -> SolveResult:
    """Solve PEBBLE on ``graph`` with the requested ``method``.

    Options: ``node_budget`` (exact search budget),
    ``exact_edge_limit`` (auto-mode threshold for exact search).
    """
    if method not in METHODS:
        raise SolverError(f"unknown method {method!r}; choose from {METHODS}")

    if obs_metrics.METRICS.enabled:
        obs_metrics.inc(f"solver.method.{method}")
    with obs_trace.span("solver.solve", method=method):
        return _solve(graph, method, **options)


def _solve(graph: AnyGraph, method: str, **options) -> SolveResult:
    if method == "auto":
        if isinstance(graph, BipartiteGraph) and is_union_of_bicliques(graph):
            return solve(graph, "equijoin")
        limit = options.get("exact_edge_limit", AUTO_EXACT_EDGE_LIMIT)
        if _max_component_edges(graph) <= limit:
            return solve(graph, "exact", **options)
        return solve(graph, "dfs+polish", **options)

    if method == "equijoin":
        scheme = solve_equijoin(graph)
        return _wrap(graph, scheme, method, optimal=True)

    if method == "exact":
        budget = options.get("node_budget", exact_mod.DEFAULT_NODE_BUDGET)
        result = exact_mod.solve_exact(graph, node_budget=budget)
        return _wrap(graph, result.scheme, method, optimal=True)

    if method in ("dfs", "dfs+polish"):
        result = solve_dfs_approx(graph)
        scheme = result.scheme
        if method == "dfs+polish":
            scheme = polish_scheme(graph, scheme).scheme
        return _wrap(graph, scheme, method, optimal=False)

    if method in ("greedy", "greedy+polish"):
        result = solve_greedy(graph)
        scheme = result.scheme
        if method == "greedy+polish":
            scheme = polish_scheme(graph, scheme).scheme
        return _wrap(graph, scheme, method, optimal=False)

    if method == "anneal":
        from repro.core.solvers.anneal import solve_anneal

        result = solve_anneal(
            graph,
            seed=options.get("seed", 0),
            steps=options.get("steps", 4000),
        )
        return _wrap(graph, result.scheme, method, optimal=False)

    # matching / matching+polish
    result = solve_matching_stitch(graph)
    scheme = result.scheme
    if method == "matching+polish":
        scheme = polish_scheme(graph, scheme).scheme
    return _wrap(graph, scheme, method, optimal=False)


def optimal_effective_cost(graph: AnyGraph, **options) -> int:
    """``π(G)`` via the cheapest guaranteed-optimal method."""
    if isinstance(graph, BipartiteGraph) and is_union_of_bicliques(graph):
        return graph.without_isolated_vertices().num_edges
    return solve(graph, "exact", **options).effective_cost
