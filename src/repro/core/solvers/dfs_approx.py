"""The 1.25-approximation of Theorem 3.1 / Lemma 3.1.

The algorithm follows the paper's proof:

1. Build ``L(G)`` for a connected component; it is connected and claw-free.
2. Take a rooted DFS tree of ``L(G)``.  Claw-freeness forces every node to
   have at most two children (three children would be pairwise non-adjacent
   — DFS trees have no cross edges — forming an induced ``K_{1,3}``).
3. *Twin elimination*: while two leaves ``l1, l2`` share a parent ``p`` with
   grandparent ``g``, claw-freeness at ``p`` (whose neighbours ``g, l1, l2``
   cannot be pairwise non-adjacent) yields a rewiring that turns the twin
   pair into a chain using only real ``L(G)`` edges:

   - ``g ~ l1``: re-hang ``l1`` under ``g`` and ``p`` under ``l1``
     (chain ``g–l1–p–l2``);
   - ``g ~ l2``: symmetric;
   - ``l1 ~ l2``: re-hang ``l2`` under ``l1`` (chain ``p–l1–l2``).

4. *Path peeling*: in the twin-free binary tree, pick a deepest node ``r``
   with at least 4 descendants.  Each child subtree of ``r`` has at most 3
   nodes and — being twin-free and binary — is a chain hanging from the
   child, so the subtree of ``r`` is a path of 4–7 nodes.  Emit it as a
   chunk and remove it; re-eliminate twins (removals create new leaves) and
   repeat while at least 4 nodes remain.  The final at-most-3 remaining
   nodes always form a path (chain, or a 3-star traversed through its
   centre).

Every chunk except possibly the last has ≥ 4 nodes, so the tour formed by
concatenating chunks has at most ``⌊m/4⌋`` jumps, giving
``π ≤ m + ⌊m/4⌋ ≤ 1.25 m`` — the bound of Theorem 3.1.  A final greedy
reordering of chunks (which can only remove jumps) often does noticeably
better than the guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.line_graph import line_graph
from repro.graphs.simple import Graph
from repro.graphs.traversal import RootedTree, dfs_tree
from repro.core.scheme import PebblingScheme
from repro.core.tsp import reorder_paths_greedily, tour_from_paths
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class DfsApproxResult:
    """Outcome of the DFS 1.25-approximation."""

    scheme: PebblingScheme
    effective_cost: int
    jumps: int
    chunks: int
    guarantee: int  # the certified upper bound m + floor(m/4)


def _find_twins(tree: RootedTree) -> tuple | None:
    """Locate one twin pair: two leaves sharing a parent.  Returns
    ``(parent, leaf1, leaf2)`` or ``None``."""
    for node in tree.nodes():
        children = tree.children(node)
        if len(children) == 2 and all(tree.is_leaf(c) for c in children):
            return (node, children[0], children[1])
    return None


def _eliminate_twins(tree: RootedTree, line: Graph) -> None:
    """Rewire the tree until no two leaves share a parent.

    Each rewiring uses a real ``L(G)`` edge guaranteed by claw-freeness and
    strictly decreases the number of leaves, so the loop terminates.
    """
    while True:
        twins = _find_twins(tree)
        if twins is None:
            return
        parent, l1, l2 = twins
        grandparent = tree.parent(parent)
        if grandparent is None:
            # Parent is the root with exactly the two twin leaves: the whole
            # tree has 3 nodes and the caller handles it as a final chunk.
            return
        if line.has_edge(grandparent, l1):
            tree.reattach(l1, grandparent)
            tree.reattach(parent, l1)
        elif line.has_edge(grandparent, l2):
            tree.reattach(l2, grandparent)
            tree.reattach(parent, l2)
        elif line.has_edge(l1, l2):
            tree.reattach(l2, l1)
        else:
            raise SolverError(
                "claw K_{1,3} found in a line graph — input corrupted"
            )


def _chain_down(tree: RootedTree, node) -> list:
    """The chain hanging from ``node``; raises if a branch is found.

    Twin-free binary subtrees of ≤ 3 nodes are guaranteed chains, which is
    the only place this is called.
    """
    chain = [node]
    current = node
    while True:
        children = tree.children(current)
        if not children:
            return chain
        if len(children) > 1:
            raise SolverError("subtree expected to be a chain has a branch")
        current = children[0]
        chain.append(current)


def _subtree_as_path(tree: RootedTree, node) -> list:
    """The subtree of ``node`` flattened into a path through ``node``."""
    children = tree.children(node)
    if not children:
        return [node]
    if len(children) == 1:
        return [node] + _chain_down(tree, children[0])
    first = _chain_down(tree, children[0])
    second = _chain_down(tree, children[1])
    return list(reversed(first)) + [node] + second


def _peel_chunks(tree: RootedTree, line: Graph) -> list[list]:
    """Decompose the tree into path chunks per the Theorem 3.1 procedure."""
    chunks: list[list] = []
    while len(tree) >= 4:
        _eliminate_twins(tree, line)
        if len(tree) < 4:
            break
        sizes = tree.subtree_sizes()
        # Deepest node with >= 4 descendants (including itself).
        candidates = [n for n in tree.nodes() if sizes[n] >= 4]
        target = max(candidates, key=lambda n: (tree.depth(n), repr(n)))
        chunks.append(_subtree_as_path(tree, target))
        tree.remove_subtree(target)
    if len(tree) > 0:
        root = tree.root
        children = tree.children(root)
        if len(children) <= 1:
            chunks.append(_chain_down(tree, root))
        else:
            # A 3-node star: traverse through the root.
            chunks.append([children[0], root, children[1]])
    return chunks


def component_tour_dfs(component: AnyGraph) -> tuple[list, int]:
    """A 1.25-approximate tour for one connected component.

    Returns ``(tour, chunk_count)``.
    """
    line = line_graph(component)
    if line.num_vertices == 0:
        return [], 0
    root = min(line.vertices, key=repr)
    tree = dfs_tree(line, root)
    chunks = _peel_chunks(tree, line)
    # Verify each chunk really is a weight-1 path (cheap certification).
    for chunk in chunks:
        for a, b in zip(chunk, chunk[1:]):
            if not line.has_edge(a, b):
                raise SolverError("internal error: chunk is not an L(G) path")
    ordered = reorder_paths_greedily(chunks)
    return tour_from_paths(ordered), len(chunks)


def solve_dfs_approx(
    graph: AnyGraph, budget: Budget | None = None
) -> DfsApproxResult:
    """Run the Theorem 3.1 approximation over every component of ``graph``.

    The returned ``guarantee`` is ``Σ_c (m_c + ⌊m_c/4⌋)``; the scheme's
    measured effective cost never exceeds it (asserted by the test-suite on
    thousands of random graphs).

    This is the bottom of the degradation ladder that still carries a
    guarantee, so it never stops early: a ``budget`` is polled only for
    node accounting (linear time — by the time a deadline can trip, the
    answer is essentially done anyway).
    """
    working = graph.without_isolated_vertices()
    tours: list[list] = []
    chunk_total = 0
    guarantee = 0
    with obs_trace.span("solver.dfs_approx"):
        for vertex_set in component_vertex_sets(working):
            component = working.subgraph(vertex_set)
            if budget is not None:
                budget.poll(max(1, component.num_edges))
            tour, chunks = component_tour_dfs(component)
            tours.append(tour)
            chunk_total += chunks
            mc = component.num_edges
            guarantee += mc + mc // 4
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("solver.dfs_approx.solves")
        obs_metrics.inc("solver.dfs_approx.chunks", chunk_total)
    flat = [edge for tour in tours for edge in tour]
    scheme = PebblingScheme.from_edge_order(working, flat)
    return DfsApproxResult(
        scheme=scheme,
        effective_cost=scheme.effective_cost(working),
        jumps=scheme.jumps(),
        chunks=chunk_total,
        guarantee=guarantee,
    )
