"""Held–Karp dynamic program for TSP(1,2) paths: an independent oracle.

The primary exact solver searches path partitions; this module solves the
same problem by the classic bitmask DP over the completed line graph and
exists to *cross-check* it (the test-suite asserts both engines agree on
every instance they can both handle).  Being Θ(2ⁿ n²) in time and Θ(2ⁿ n)
in memory, it is capped at 18 nodes.

The DP tracks, for every (visited set, last node), the minimum number of
*jumps* of a path visiting exactly that set and ending there; the tour
cost is then ``n − 1 + J`` and, through Prop 2.2's identity,
``π = m + 1 + J − β₀``.
"""

from __future__ import annotations

import math

from repro.errors import InstanceTooLargeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import betti_number
from repro.graphs.line_graph import line_graph
from repro.graphs.simple import Graph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph

_DP_LIMIT = 18
_INFINITY = float("inf")


def held_karp_min_jumps(line: Graph, budget: Budget | None = None) -> int:
    """The minimum number of weight-2 steps over all visiting orders of the
    nodes of ``line`` (weights: 1 on edges, 2 off edges)."""
    order = sorted(line.vertices, key=repr)
    n = len(order)
    if n == 0:
        return 0
    if n > _DP_LIMIT:
        raise InstanceTooLargeError(f"Held-Karp limited to {_DP_LIMIT} nodes, got {n}")
    with obs_trace.span("solver.held_karp.build", n=n):
        index = {v: i for i, v in enumerate(order)}
        adjacency = [0] * n
        for u, v in line.edges():
            adjacency[index[u]] |= 1 << index[v]
            adjacency[index[v]] |= 1 << index[u]

    size = 1 << n
    if budget is not None:
        # The DP table is allocated whole, so account for it up front —
        # a memo cap rejects the instance before the 2^n * n allocation.
        budget.charge_memo(size * n)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("solver.held_karp.memo_cells", size * n)
    # jumps[mask * n + last] = min jumps of a path over `mask` ending at `last`.
    with obs_trace.span("solver.held_karp.dp", cells=size * n):
        jumps = [_INFINITY] * (size * n)
        for i in range(n):
            jumps[(1 << i) * n + i] = 0
        for mask in range(1, size):
            if budget is not None:
                budget.checkpoint()
            base = mask * n
            for last in range(n):
                # Compare by value, not identity: `current is _INFINITY`
                # only held by CPython object-sharing accident and breaks
                # once DP state crosses a pickle boundary into a worker.
                current = jumps[base + last]
                if math.isinf(current):
                    continue
                if not (mask >> last) & 1:
                    continue
                good = adjacency[last] & ~mask
                remaining = ~mask & (size - 1)
                while remaining:
                    low = remaining & (-remaining)
                    remaining ^= low
                    nxt = low.bit_length() - 1
                    step = 0 if (good >> nxt) & 1 else 1
                    slot = (mask | low) * n + nxt
                    if current + step < jumps[slot]:
                        jumps[slot] = current + step
        best = min(jumps[(size - 1) * n + last] for last in range(n))
    assert not math.isinf(best)
    return int(best)


def held_karp_effective_cost(graph: AnyGraph, budget: Budget | None = None) -> int:
    """``π(G)`` via the Held–Karp DP: ``m + 1 + J_min − β₀``.

    Independent of the path-partition engine; used as a second opinion in
    tests.  Limited to graphs whose edge count is at most 18.
    """
    working = graph.without_isolated_vertices()
    m = working.num_edges
    if m == 0:
        return 0
    line = line_graph(working)
    with obs_trace.span("solver.held_karp"):
        j_min = held_karp_min_jumps(line, budget=budget)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("solver.held_karp.solves")
        # 2^n * n DP cells relaxed — the TSP-relaxation work counter.
        obs_metrics.inc(
            "solver.held_karp.relaxations", (1 << line.num_vertices) * line.num_vertices
        )
    return m + 1 + j_min - betti_number(working)
