"""Nearest-neighbour greedy pebbling.

The natural baseline heuristic: repeatedly move to an undeleted edge
adjacent to the current one (a 1-move step), jumping only when stuck.
Among adjacent candidates it prefers the one with the fewest remaining
adjacent edges (a Warnsdorff-style tie-break), which empirically avoids
stranding leaf edges.  No approximation guarantee — benchmarks compare it
against the certified 1.25 algorithm and the exact optimum.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.line_graph import line_graph
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class GreedyResult:
    scheme: PebblingScheme
    effective_cost: int
    jumps: int


def component_tour_greedy(component: AnyGraph) -> list:
    """Greedy tour of one connected component's line graph."""
    line = line_graph(component)
    unvisited = set(line.vertices)
    if not unvisited:
        return []

    def remaining_degree(node) -> int:
        return sum(1 for nbr in line.neighbors(node) if nbr in unvisited)

    current = min(unvisited, key=lambda v: (line.degree(v), repr(v)))
    unvisited.discard(current)
    tour = [current]
    while unvisited:
        candidates = [n for n in line.neighbors(current) if n in unvisited]
        if candidates:
            current = min(candidates, key=lambda v: (remaining_degree(v), repr(v)))
        else:
            # Jump: restart at the most constrained unvisited node.
            current = min(unvisited, key=lambda v: (remaining_degree(v), repr(v)))
        unvisited.discard(current)
        tour.append(current)
    return tour


def solve_greedy(graph: AnyGraph, budget: Budget | None = None) -> GreedyResult:
    """Greedy scheme over every component of ``graph``.

    The bottom rung of the degradation ladder: linear-time, so a ``budget``
    is polled per component for accounting but never stops the solve.
    """
    working = graph.without_isolated_vertices()
    flat: list = []
    for vertex_set in component_vertex_sets(working):
        component = working.subgraph(vertex_set)
        if budget is not None:
            budget.poll(max(1, component.num_edges))
        flat.extend(component_tour_greedy(component))
    scheme = PebblingScheme.from_edge_order(working, flat)
    return GreedyResult(
        scheme=scheme,
        effective_cost=scheme.effective_cost(working),
        jumps=scheme.jumps(),
    )
