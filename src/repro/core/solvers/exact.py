"""Exact PEBBLE: optimal pebbling schemes (ground truth).

Finding ``π(G)`` is NP-complete (Theorem 4.2), so no polynomial algorithm is
possible; this solver is nonetheless exact and practical on the instance
sizes the test-suite and benchmarks use, because it searches the *right*
space: by §2.2, an optimal scheme for a connected graph is a minimum-jump
tour of ``L(G)``, and a tour with ``J`` jumps is exactly a partition of
``L(G)``'s nodes into ``J + 1`` vertex-disjoint paths.  The solver therefore
runs iterative deepening on the number of paths, starting from the
deficiency lower bound of :mod:`repro.core.lower_bounds`, with
branch-and-bound pruning.  On easy graphs (perfect pebblings exist) it
terminates at the first level; on adversarial families its running time
grows exponentially — benchmark ``bench_hardness_scaling`` measures exactly
this, which is the empirical face of Theorem 4.2.

Two safety valves:

- components that are complete bipartite are pebbled by the closed-form
  boustrophedon order (always optimal since ``π ≥ m``);
- a search-node budget raises
  :class:`~repro.errors.InstanceTooLargeError` instead of hanging.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import permutations

from repro.errors import InstanceTooLargeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.line_graph import line_graph
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme
from repro.core.solvers.equijoin import biclique_tour
from repro.core.tsp import tour_cost, tour_from_paths
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget

AnyGraph = Graph | BipartiteGraph

DEFAULT_NODE_BUDGET = 5_000_000


@dataclass(frozen=True)
class ExactResult:
    """Outcome of an exact solve.

    ``deficiency_tight`` records *why* the answer is optimal: True means
    the deficiency lower bound (:mod:`repro.core.lower_bounds`) matched
    the achieved cost on every component — a succinct optimality
    certificate needing no search transcript; False means optimality
    rests on the iterative-deepening search having exhausted the cheaper
    levels.
    """

    scheme: PebblingScheme
    effective_cost: int
    jumps: int
    search_nodes: int
    deficiency_tight: bool = False


class _PathPartitionSearch:
    """Branch-and-bound search for a partition of a graph into ≤ p paths.

    Nodes are compiled to indices with adjacency bitmasks.  Paths are built
    one at a time; each new path is seeded at the smallest unvisited index
    and grown in two phases (first from the tail, then — after the tail is
    sealed — from the head), which keeps the search complete while avoiding
    mirrored duplicates.  Seeding at the smallest unvisited index is safe
    *because* of two-sided growth: every path contains the smallest index
    among its nodes somewhere, and growing both directions from that node
    reaches all such paths.
    """

    def __init__(
        self,
        line: Graph,
        node_budget: int,
        use_ordering: bool = True,
        budget: Budget | None = None,
    ) -> None:
        self.order = sorted(line.vertices, key=repr)
        self.index = {v: i for i, v in enumerate(self.order)}
        self.n = len(self.order)
        self.adjacency = [0] * self.n
        for u, v in line.edges():
            iu, iv = self.index[u], self.index[v]
            self.adjacency[iu] |= 1 << iv
            self.adjacency[iv] |= 1 << iu
        self.node_budget = node_budget
        self.budget = budget
        self.nodes_expanded = 0
        self.pruned = 0
        self.bound_checks = 0
        self.full = (1 << self.n) - 1
        # Ablation switch: with use_ordering=False, pivots and extensions
        # are taken in raw index order instead of most-constrained-first
        # (bench_ablations measures the difference in search effort).
        self.use_ordering = use_ordering

    # -- lower bound on paths needed for an unvisited set ---------------
    def _partition_lb(self, unvisited: int) -> int:
        self.bound_checks += 1
        if not unvisited:
            return 0
        count = 0
        capacity = 0
        mask = unvisited
        while mask:
            low = mask & (-mask)
            mask ^= low
            v = low.bit_length() - 1
            count += 1
            capacity += min((self.adjacency[v] & unvisited).bit_count(), 2)
        return max(1, count - capacity // 2)

    def _charge(self) -> None:
        self.nodes_expanded += 1
        if self.budget is not None:
            # Cooperative checkpoint: raises BudgetExhaustedError on a
            # tripped deadline/node/memo cap (the registry ladder catches
            # it and serves the 1.25-approximation instead).
            self.budget.checkpoint()
        if self.nodes_expanded > self.node_budget:
            raise InstanceTooLargeError(
                f"exact search exceeded node budget {self.node_budget}"
            )

    def _unvisited_degree(self, v: int, unvisited: int) -> int:
        return (self.adjacency[v] & unvisited).bit_count()

    def _ordered_bits(self, mask: int, unvisited: int) -> list[int]:
        """Bits of ``mask`` ordered most-constrained first (fewest unvisited
        neighbours), which lets dead-end chains get absorbed early."""
        out = []
        remaining = mask
        while remaining:
            low = remaining & (-remaining)
            remaining ^= low
            out.append(low.bit_length() - 1)
        if self.use_ordering:
            out.sort(key=lambda v: self._unvisited_degree(v, unvisited))
        return out

    def solve(self, max_paths: int) -> list[list[int]] | None:
        """Return a partition into at most ``max_paths`` paths, or None."""
        if self.n == 0:
            return []
        result = self._search(self.full, [], max_paths)
        return result

    def _search(
        self, unvisited: int, done: list[list[int]], budget: int
    ) -> list[list[int]] | None:
        if not unvisited:
            return [list(p) for p in done]
        if budget <= 0:
            return None
        self._charge()
        # Prune: remaining nodes need at least lb paths; the new path we are
        # about to open counts toward the budget.
        lb = self._partition_lb(unvisited)
        if lb > budget:
            self.pruned += 1
            return None
        # Pivot on the most constrained unvisited node; the next path is the
        # (unique, by two-sided growth) path containing it.
        pivot = min(
            self._ordered_bits(unvisited, unvisited),
            key=lambda v: (self._unvisited_degree(v, unvisited), v),
        )
        path = [pivot]
        return self._grow_tail(
            unvisited ^ (1 << pivot), path, done, budget - 1
        )

    # In _grow_tail/_grow_head, ``future`` is the number of *additional*
    # paths that may still be opened after the current one.  Pruning rule:
    # restricting any completing solution to the unvisited set shows it can
    # be covered by (open ends of the current path) + future paths, so
    # prune when lb(unvisited) − open_ends > future.

    def _grow_tail(
        self, unvisited: int, path: list[int], done: list[list[int]], future: int
    ) -> list[list[int]] | None:
        self._charge()
        if self._partition_lb(unvisited) - 2 > future:
            self.pruned += 1
            return None
        tail = path[-1]
        extensions = self.adjacency[tail] & unvisited
        for v in self._ordered_bits(extensions, unvisited):
            low = 1 << v
            path.append(v)
            found = self._grow_tail(unvisited ^ low, path, done, future)
            if found is not None:
                return found
            path.pop()
        # Seal the tail; continue growing from the head.
        return self._grow_head(unvisited, path, done, future)

    def _grow_head(
        self, unvisited: int, path: list[int], done: list[list[int]], future: int
    ) -> list[list[int]] | None:
        self._charge()
        if self._partition_lb(unvisited) - 1 > future:
            self.pruned += 1
            return None
        head = path[0]
        extensions = self.adjacency[head] & unvisited
        for v in self._ordered_bits(extensions, unvisited):
            low = 1 << v
            path.insert(0, v)
            found = self._grow_head(unvisited ^ low, path, done, future)
            if found is not None:
                return found
            path.pop(0)
        # Close this path and recurse for the remaining nodes.
        done.append(list(path))
        found = self._search(unvisited, done, future)
        if found is not None:
            return found
        done.pop()
        return None


def minimum_path_partition(
    line: Graph,
    node_budget: int = DEFAULT_NODE_BUDGET,
    budget: Budget | None = None,
) -> list[list]:
    """A minimum partition of the nodes of ``line`` into vertex-disjoint
    paths (each path given as a node list, consecutive nodes adjacent).

    Iterative deepening from the deficiency lower bound guarantees
    optimality of the first partition found.
    """
    search = _PathPartitionSearch(line, node_budget, budget=budget)
    if search.n == 0:
        return []
    lower = search._partition_lb(search.full)
    for p in range(lower, search.n + 1):
        with obs_trace.span("solver.exact.level", paths=p):
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SOLVER_PHASE,
                    phase="exact.deepening",
                    paths=p,
                )
            partition = search.solve(p)
        if partition is not None:
            return [[search.order[i] for i in path] for path in partition]
    raise AssertionError("a partition into n singleton paths always exists")


def optimal_component_tour(
    component: AnyGraph,
    node_budget: int = DEFAULT_NODE_BUDGET,
    budget: Budget | None = None,
) -> tuple[list, int]:
    """An optimal edge tour for one connected component.

    Returns ``(tour, search_nodes)``.  Complete bipartite components are
    answered in closed form (boustrophedon, Lemma 3.2) without any search.
    """
    if (
        isinstance(component, BipartiteGraph)
        and component.without_isolated_vertices().is_complete_bipartite()
    ):
        return biclique_tour(component.without_isolated_vertices()), 0
    with obs_trace.span("solver.exact.line_graph"):
        line = line_graph(component)
    search = _PathPartitionSearch(line, node_budget, budget=budget)
    lower = search._partition_lb(search.full)
    for p in range(lower, max(search.n, 1) + 1):
        # One span per iterative-deepening level: the profile shows how
        # much of the exponential blow-up each extra path level costs.
        with obs_trace.span("solver.exact.level", paths=p):
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_SOLVER_PHASE,
                    phase="exact.deepening",
                    paths=p,
                )
            partition = search.solve(p)
        if partition is not None:
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("solver.exact.search_nodes", search.nodes_expanded)
                obs_metrics.inc("solver.exact.pruned_branches", search.pruned)
                obs_metrics.inc("solver.exact.bound_checks", search.bound_checks)
                obs_metrics.inc("solver.exact.deepening_levels", p - lower + 1)
            paths = [[search.order[i] for i in path] for path in partition]
            return tour_from_paths(paths), search.nodes_expanded
    raise AssertionError("unreachable: singleton partition always works")


def solve_exact(
    graph: AnyGraph,
    node_budget: int = DEFAULT_NODE_BUDGET,
    budget: Budget | None = None,
) -> ExactResult:
    """An optimal pebbling scheme for ``graph`` (any bipartite or general
    graph; isolated vertices are ignored per §2).

    Components are solved independently and concatenated — optimal by the
    additivity lemma (Lemma 2.2).  With a cooperative ``budget``, the search
    raises :class:`~repro.errors.BudgetExhaustedError` when it trips; exact
    search has no useful partial state, so the registry ladder degrades to
    the DFS approximation instead.
    """
    working = graph.without_isolated_vertices()
    tours: list[list] = []
    total_nodes = 0
    with obs_trace.span("solver.exact"):
        for vertex_set in component_vertex_sets(working):
            component = working.subgraph(vertex_set)
            with obs_trace.span(
                "solver.exact.component", m=component.num_edges
            ):
                tour, nodes = optimal_component_tour(
                    component, node_budget, budget=budget
                )
            tours.append(tour)
            total_nodes += nodes
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("solver.exact.solves")
    flat = [edge for tour in tours for edge in tour]
    scheme = PebblingScheme.from_edge_order(working, flat)
    effective_cost = scheme.effective_cost(working)
    from repro.core.lower_bounds import effective_cost_lower_bound

    return ExactResult(
        scheme=scheme,
        effective_cost=effective_cost,
        jumps=scheme.jumps(),
        search_nodes=total_nodes,
        deficiency_tight=(
            effective_cost == effective_cost_lower_bound(working)
        ),
    )


def exact_search_effort(
    graph: AnyGraph,
    use_ordering: bool = True,
    node_budget: int = DEFAULT_NODE_BUDGET,
) -> int:
    """Search nodes the exact engine expands on ``graph``'s components,
    with or without the most-constrained-first ordering heuristic — the
    ablation probe behind ``bench_ablations``.  Raises
    :class:`~repro.errors.InstanceTooLargeError` past the budget either
    way, so both arms stay bounded."""
    working = graph.without_isolated_vertices()
    total = 0
    for vertex_set in component_vertex_sets(working):
        component = working.subgraph(vertex_set)
        if component.num_edges == 0:
            continue
        line = line_graph(component)
        search = _PathPartitionSearch(line, node_budget, use_ordering=use_ordering)
        lower = search._partition_lb(search.full)
        for p in range(lower, max(search.n, 1) + 1):
            if search.solve(p) is not None:
                break
        total += search.nodes_expanded
    return total


def optimal_effective_cost_bruteforce(graph: AnyGraph) -> int:
    """``π(G)`` by brute force over all edge permutations.

    Only for cross-validating the search on tiny inputs (``m ≤ 8``).
    """
    working = graph.without_isolated_vertices()
    edges = working.edges()
    if len(edges) > 8:
        raise InstanceTooLargeError("brute force limited to 8 edges")
    if not edges:
        return 0
    from repro.graphs.components import betti_number

    beta = betti_number(working)
    best = None
    for order in permutations(edges):
        cost = tour_cost(order) + 2 - beta
        if best is None or cost < best:
            best = cost
    assert best is not None
    return best
