"""PEBBLE solvers: exact and approximate strategies for the pebble game.

- :mod:`repro.core.solvers.exact` — optimal schemes via minimum path
  partition of the line graph (ground truth; exponential worst case, as
  Theorem 4.2 demands).
- :mod:`repro.core.solvers.equijoin` — the linear-time perfect pebbler for
  equijoin graphs (Lemma 3.2 / Theorems 3.2 and 4.1).
- :mod:`repro.core.solvers.dfs_approx` — the 1.25-approximation of
  Theorem 3.1 / Lemma 3.1.
- :mod:`repro.core.solvers.greedy`, :mod:`repro.core.solvers.matching_stitch`,
  :mod:`repro.core.solvers.local_search` — heuristics echoing the §4
  approximation discussion.
- :mod:`repro.core.solvers.registry` — a uniform front door with automatic
  method selection.
"""

from repro.core.solvers.registry import SolveResult, optimal_effective_cost, solve

__all__ = ["solve", "optimal_effective_cost", "SolveResult"]
