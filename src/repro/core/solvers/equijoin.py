"""The linear-time perfect pebbler for equijoin graphs.

Every connected component of an equijoin join graph is a complete bipartite
graph (§3.1): two tuples of ``R`` with the same key join the same set of
``S`` tuples.  Lemma 3.2 pebbles a ``k × l`` biclique perfectly with the
boustrophedon ("snake") order

    (u1,v1), (u1,v2), …, (u1,vl), (u2,vl), (u2,v(l−1)), …, (u2,v1), (u3,v1), …

where consecutive configurations always share a vertex.  Theorem 3.2 then
gives ``π(G) = m`` for every equijoin graph, and Theorem 4.1 notes the whole
scheme is found in time linear in ``m`` — the construction "is similar to
the merge phase of sort-merge join".
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.core.scheme import PebblingScheme


def is_union_of_bicliques(graph: BipartiteGraph) -> bool:
    """True iff every connected component (ignoring isolated vertices) is
    complete bipartite — i.e. the graph could be an equijoin join graph.

    This is both a structural *test* (equijoin graphs always pass; the
    worst-case family of Fig 1 fails) and the admission check of the
    linear-time solver.
    """
    working = graph.without_isolated_vertices()
    for vertex_set in component_vertex_sets(working):
        if not working.subgraph(vertex_set).is_complete_bipartite():
            return False
    return True


def biclique_tour(component: BipartiteGraph) -> list[tuple]:
    """The boustrophedon edge order of Lemma 3.2 for one complete bipartite
    component.  Consecutive edges always share an endpoint, so the induced
    scheme is perfect (``π = m``)."""
    lefts = component.left
    rights = component.right
    tour: list[tuple] = []
    for row, u in enumerate(lefts):
        columns = rights if row % 2 == 0 else list(reversed(rights))
        for v in columns:
            tour.append((u, v))
    return tour


def solve_equijoin(graph: BipartiteGraph) -> PebblingScheme:
    """A perfect pebbling scheme for an equijoin graph, in linear time.

    Raises :class:`~repro.errors.SolverError` if some component is not
    complete bipartite (i.e. the input cannot be an equijoin join graph) —
    callers wanting a best-effort answer should use the registry's ``auto``
    method instead.
    """
    working = graph.without_isolated_vertices()
    tour: list[tuple] = []
    for vertex_set in component_vertex_sets(working):
        component = working.subgraph(vertex_set)
        if not component.is_complete_bipartite():
            raise SolverError(
                "component is not complete bipartite; "
                "not an equijoin join graph"
            )
        tour.extend(biclique_tour(component))
    return PebblingScheme.from_edge_order(working, tour)
