"""The paper's primary contribution: the join-predicate pebbling model.

Contents map directly onto the paper's sections:

- :mod:`repro.core.scheme` / :mod:`repro.core.costs` — pebbling schemes and
  the costs ``π̂`` and ``π`` (Definitions 2.1–2.3).
- :mod:`repro.core.game` — a move-by-move pebble game simulator (§2).
- :mod:`repro.core.tsp` — the TSP(1,2) view of pebbling on line graphs
  (Propositions 2.1 and 2.2).
- :mod:`repro.core.lower_bounds` — jump lower bounds generalizing the
  counting argument of Theorem 3.3.
- :mod:`repro.core.solvers` — exact and approximate PEBBLE solvers
  (Theorems 3.1, 3.2, 4.1 and the §4 approximation discussion).
- :mod:`repro.core.families` — the worst-case family ``G_n`` of Fig 1.
- :mod:`repro.core.gadgets` / :mod:`repro.core.reductions` — the diamond
  gadget of Fig 2 and the executable L-reductions of Theorems 4.3/4.4.
- :mod:`repro.core.validate` — machine checks of the paper's lemmas on
  arbitrary instances.
"""

from repro.core.scheme import PebbleConfig, PebblingScheme
from repro.core.costs import (
    effective_cost_bounds,
    is_perfect_scheme,
    perfect_cost,
)
from repro.core.game import PebbleGame
from repro.core.kpebble import KPebbleGame
from repro.core.solvers.registry import solve, optimal_effective_cost
from repro.core.families import worst_case_family, worst_case_effective_cost

__all__ = [
    "PebbleConfig",
    "PebblingScheme",
    "PebbleGame",
    "KPebbleGame",
    "effective_cost_bounds",
    "is_perfect_scheme",
    "perfect_cost",
    "solve",
    "optimal_effective_cost",
    "worst_case_family",
    "worst_case_effective_cost",
]
