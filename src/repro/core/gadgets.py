"""The diamond gadget of Fig 2 (Theorem 4.3), as certified data.

The gadget is the graph that replaces a degree-4 node in the L-reduction
TSP-4(1,2) → TSP-3(1,2).  Its defining properties (paper §4):

1. *degree bound*: the four corner nodes have internal degree ≤ 2 (so one
   external edge keeps them within TSP-3's bound) and central nodes have
   degree ≤ 3;
2. *corner connectivity*: "a Hamiltonian path exists between any two
   corner nodes";
3. *endpoint property*: "any Hamiltonian path in the diamond should start
   and end in corner nodes".

Rather than trusting a hand-copied figure, the gadget ships as plain data
and :meth:`DiamondGadget.certify` re-verifies all three properties by
exhaustive Hamiltonian-path analysis — the certificate is asserted in the
test-suite.  :mod:`repro.core.gadget_search` contains the search procedure
that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from itertools import combinations

from repro.errors import GadgetError
from repro.graphs.hamiltonian import (
    find_hamiltonian_path,
    hamiltonian_path_endpoints,
)
from repro.graphs.simple import Graph


@dataclass(frozen=True)
class GadgetCertificate:
    """Outcome of certifying a candidate diamond gadget."""

    degree_ok: bool
    corner_pairs_ok: bool
    endpoints_ok: bool

    @property
    def full(self) -> bool:
        """All three Fig-2 properties hold."""
        return self.degree_ok and self.corner_pairs_ok and self.endpoints_ok


class DiamondGadget:
    """A candidate diamond: a graph plus its four designated corners.

    Instances are immutable after construction; Hamiltonian corner paths
    are computed lazily and cached.
    """

    def __init__(self, graph: Graph, corners: tuple) -> None:
        if len(set(corners)) != 4:
            raise GadgetError("a diamond needs exactly 4 distinct corners")
        for corner in corners:
            if not graph.has_vertex(corner):
                raise GadgetError(f"corner {corner!r} is not a gadget node")
        self.graph = graph.copy()
        self.corners = tuple(corners)
        self._corner_paths: dict[tuple, list] = {}

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    def central_nodes(self) -> list:
        corner_set = set(self.corners)
        return [v for v in self.graph.vertices if v not in corner_set]

    # ------------------------------------------------------------------
    # certification
    # ------------------------------------------------------------------
    def certify(self) -> GadgetCertificate:
        """Machine-check the three Fig-2 properties (see module docstring)."""
        degree_ok = all(
            self.graph.degree(c) <= 2 for c in self.corners
        ) and all(self.graph.degree(v) <= 3 for v in self.central_nodes())
        corner_pairs_ok = all(
            self.hamiltonian_corner_path(c1, c2) is not None
            for c1, c2 in combinations(self.corners, 2)
        )
        endpoints = hamiltonian_path_endpoints(self.graph)
        endpoints_ok = bool(endpoints) and endpoints <= set(self.corners)
        return GadgetCertificate(degree_ok, corner_pairs_ok, endpoints_ok)

    # ------------------------------------------------------------------
    # corner paths
    # ------------------------------------------------------------------
    def hamiltonian_corner_path(self, c1, c2) -> list | None:
        """A Hamiltonian path of the gadget from corner ``c1`` to ``c2``
        (cached), or ``None`` if no such path exists."""
        if c1 == c2:
            raise GadgetError("corner pair must be distinct")
        key = (c1, c2)
        if key not in self._corner_paths:
            path = find_hamiltonian_path(self.graph, start=c1, end=c2)
            self._corner_paths[key] = path
            if path is not None:
                self._corner_paths[(c2, c1)] = list(reversed(path))
        return self._corner_paths[key]

    def missing_pairs(self) -> list[tuple]:
        """Corner pairs lacking a Hamiltonian path (empty for a gadget with
        the full Fig-2 corner-connectivity property)."""
        return [
            (c1, c2)
            for c1, c2 in combinations(self.corners, 2)
            if self.hamiltonian_corner_path(c1, c2) is None
        ]

    def pick_corner_pair(self, enter, exit_) -> tuple:
        """Choose the (c1, c2) corner pair for one diamond traversal.

        Implements the corner choice of Theorem 4.3's proof: a corner is
        pinned when the adjacent tour step enters/leaves through a good
        edge attached to it; unpinned sides take any remaining corner with
        which a Hamiltonian corner path exists.  If the pinned pair itself
        has no Hamiltonian path (possible when the gadget's certificate
        lacks full corner connectivity), the exit pin is released — the
        traversal then costs one extra jump, which the empirical β
        measurement accounts for.
        """
        if enter is not None and enter not in self.corners:
            raise GadgetError(f"{enter!r} is not a corner")
        if exit_ is not None and exit_ not in self.corners:
            raise GadgetError(f"{exit_!r} is not a corner")
        if enter is not None and enter == exit_:
            # Both neighbours attach at the same corner: keep the entry
            # pinned and exit anywhere else (the exit step becomes a jump,
            # which it already was bound to be).
            exit_ = None
        if enter is not None and exit_ is not None:
            if self.hamiltonian_corner_path(enter, exit_) is None:
                exit_ = None
        if enter is None and exit_ is None:
            # Free traversal: any connected pair.
            for c1, c2 in combinations(self.corners, 2):
                if self.hamiltonian_corner_path(c1, c2) is not None:
                    return c1, c2
            raise GadgetError("gadget has no corner-to-corner Hamiltonian path")
        pinned = enter if enter is not None else exit_
        partner = None
        for c in self.corners:
            if c == pinned:
                continue
            if self.hamiltonian_corner_path(pinned, c) is not None:
                partner = c
                break
        if partner is None:
            raise GadgetError(f"no Hamiltonian corner path from {pinned!r}")
        if enter is not None:
            return pinned, partner
        return partner, pinned

    def __repr__(self) -> str:
        return f"DiamondGadget(n={self.num_nodes}, corners={self.corners})"


# ---------------------------------------------------------------------------
# The shipped gadget.
#
# Found by the template search of repro.core.gadget_search (Pósa-rotation
# structure: a Hamiltonian path backbone 0-1-…-9, one rotation edge at each
# end corner, extra edges only among central nodes).  Corners are nodes
# 0, 2, 4, 9.
#
# Its machine-verified certificate: degree bound ✓ (corners internal degree
# 2, centrals ≤ 3), endpoint property ✓ (every Hamiltonian path ends at two
# corners), corner connectivity 5/6 — the single pair (4, 9) has no
# Hamiltonian path.  The same exhaustive template search *proves* that no
# gadget on ≤ 14 nodes satisfies all three Fig-2 properties simultaneously
# (a negative finding recorded in EXPERIMENTS.md): the Pósa-rotation
# argument in repro.core.gadget_search shows every valid gadget must be an
# instance of the enumerated template, and the enumeration is exhaustive.
# The reduction of Theorem 4.3 therefore uses this gadget with a graceful
# fallback (one extra jump when a traversal would need the missing pair)
# and measures the resulting L-reduction constants empirically.
# ---------------------------------------------------------------------------

_DEFAULT_EDGES: tuple[tuple[int, int], ...] = (
    # Backbone path 0-1-...-9.
    (0, 1), (1, 2), (2, 3), (3, 4), (4, 5),
    (5, 6), (6, 7), (7, 8), (8, 9),
    # Rotation edges at the two end corners.
    (0, 3), (1, 9),
)
_DEFAULT_CORNERS: tuple[int, ...] = (0, 2, 4, 9)


@lru_cache(maxsize=1)
def default_gadget() -> DiamondGadget:
    """The library's shipped diamond gadget (see the data comment above for
    its exact certificate).

    The returned object is shared (cached); treat it as read-only.
    """
    graph = Graph(edges=_DEFAULT_EDGES)
    return DiamondGadget(graph, _DEFAULT_CORNERS)
