"""PEBBLE(D): the paper's decision problem, as an explicit API.

Definition 4.1: "Given G and integer K, decide whether π(G) ≤ K."  This is
the problem Theorem 4.2 proves NP-complete (even for spatial join graphs).
The implementation decides it *without* computing the optimum when the
answer is determined by bounds:

1. ``K ≥ Σ ⌊1.25 m_c⌋`` → **yes** (Theorem 3.1's constructive bound);
2. ``K < m + J_lb`` with the deficiency jump bound → **no**;
3. otherwise run the budgeted path-partition search per component.

A *certificate* accompanies every yes-answer (a scheme of cost ≤ K) and
every no-answer (the matching lower-bound statement), so callers can
verify the decision independently — tests do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InstanceTooLargeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.simple import Graph
from repro.core.costs import effective_cost_bounds
from repro.core.lower_bounds import effective_cost_lower_bound
from repro.core.scheme import PebblingScheme
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import DEFAULT_NODE_BUDGET, solve_exact

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class PebbleDecision:
    """The answer to one PEBBLE(D) instance, with its certificate."""

    answer: bool
    threshold: int
    reason: str
    scheme: PebblingScheme | None  # a witness of cost <= K for yes answers
    lower_bound: int | None  # a bound > K for no answers

    def verify(self, graph: AnyGraph) -> bool:
        """Re-check the certificate against the graph."""
        working = graph.without_isolated_vertices()
        if self.answer:
            if self.scheme is None:
                return False
            if not self.scheme.is_valid(working):
                return False
            return self.scheme.effective_cost(working) <= self.threshold
        return self.lower_bound is not None and self.lower_bound > self.threshold


def decide_pebble(
    graph: AnyGraph, threshold: int, node_budget: int = DEFAULT_NODE_BUDGET
) -> PebbleDecision:
    """Decide ``π(G) ≤ K`` (Definition 4.1).

    May raise :class:`~repro.errors.InstanceTooLargeError` when the bounds
    do not settle the question and the exact search exceeds its budget —
    the NP-completeness of the problem showing through.
    """
    working = graph.without_isolated_vertices()
    m = working.num_edges
    if m == 0:
        return PebbleDecision(
            answer=threshold >= 0,
            threshold=threshold,
            reason="empty graph",
            scheme=PebblingScheme([]) if threshold >= 0 else None,
            lower_bound=None if threshold >= 0 else 0,
        )

    lower = effective_cost_lower_bound(working)
    if threshold < lower:
        return PebbleDecision(
            answer=False,
            threshold=threshold,
            reason=f"deficiency lower bound {lower} exceeds K",
            scheme=None,
            lower_bound=lower,
        )

    _, upper = effective_cost_bounds(working)
    if threshold >= upper:
        # Theorem 3.1's constructive bound settles it; produce the witness.
        result = solve_dfs_approx(working)
        if result.effective_cost <= threshold:
            return PebbleDecision(
                answer=True,
                threshold=threshold,
                reason=f"1.25 bound {upper} within K (DFS witness)",
                scheme=result.scheme,
                lower_bound=None,
            )

    exact = solve_exact(working, node_budget=node_budget)
    if exact.effective_cost <= threshold:
        return PebbleDecision(
            answer=True,
            threshold=threshold,
            reason=f"exact optimum {exact.effective_cost} within K",
            scheme=exact.scheme,
            lower_bound=None,
        )
    return PebbleDecision(
        answer=False,
        threshold=threshold,
        reason=f"exact optimum {exact.effective_cost} exceeds K",
        scheme=None,
        lower_bound=exact.effective_cost,
    )


def decide_per_component(
    graph: AnyGraph, threshold: int, node_budget: int = DEFAULT_NODE_BUDGET
) -> list[dict]:
    """Diagnostic variant: per-component optimum vs the proportional share
    of ``K`` (components decompose by Lemma 2.2)."""
    working = graph.without_isolated_vertices()
    out = []
    for vertex_set in component_vertex_sets(working):
        component = working.subgraph(vertex_set)
        result = solve_exact(component, node_budget=node_budget)
        out.append(
            {
                "edges": component.num_edges,
                "pi": result.effective_cost,
                "jumps": result.jumps,
            }
        )
    return out
