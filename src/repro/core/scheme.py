"""Pebbling schemes and their costs (paper §2, Definitions 2.1 and 2.2).

The game: two pebbles live on vertices of the join graph.  When the pebbles
sit on the two endpoints of an edge, that edge is deleted.  A single move
relocates one pebble to any vertex (pebbles "teleport"; the model charges
for pebble *placements*, not for traversed distance).  A *pebbling scheme*
is a sequence of pebble configurations that deletes every edge.

Cost accounting reproduces the paper exactly:

- reaching the first configuration costs 2 (both pebbles are placed);
- moving between consecutive configurations costs the number of pebbles
  that must move — 1 if the configurations share a vertex, 2 otherwise.

With this accounting, a scheme whose consecutive configurations always share
a vertex over ``k`` configurations costs ``k + 1``, matching Def 2.1, and a
perfect matching with ``m`` edges costs ``2m``, matching Lemma 2.4.  The
*effective* cost subtracts the number of connected components β₀ (Def 2.2).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.errors import SchemeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import betti_number
from repro.graphs.simple import Graph, Vertex

AnyGraph = Graph | BipartiteGraph

PebbleConfig = tuple[Any, Any]
"""A configuration: the unordered pair of vertices holding the two pebbles."""


def config_transition_cost(previous: PebbleConfig, current: PebbleConfig) -> int:
    """Pebble moves needed to change ``previous`` into ``current``.

    Equal to the number of vertices of ``current`` not already pebbled, so 0
    for identical configurations, 1 when they share exactly one vertex, and
    2 when disjoint.
    """
    prev_set = set(previous)
    return sum(1 for v in current if v not in prev_set)


def configs_share_vertex(a: PebbleConfig, b: PebbleConfig) -> bool:
    """True iff two configurations have a pebbled vertex in common."""
    return bool(set(a) & set(b))


class PebblingScheme:
    """An immutable pebbling scheme: a sequence of configurations.

    The canonical form produced by every solver is an *edge order*: each
    configuration is an edge of the graph, each edge appears exactly once.
    The class also accepts free-form configuration sequences (e.g. transit
    configurations not lying on edges), which the validity check handles.

    Example
    -------
    >>> from repro.graphs.generators import path_graph
    >>> g = path_graph(3)
    >>> scheme = PebblingScheme.from_edge_order(g, g.edges())
    >>> scheme.cost(g)
    4
    >>> scheme.effective_cost(g)
    3
    """

    def __init__(self, configurations: Iterable[PebbleConfig]) -> None:
        configs = []
        for config in configurations:
            if len(config) != 2:
                raise SchemeError(f"configuration {config!r} is not a pair")
            a, b = config
            if a == b:
                raise SchemeError(
                    f"configuration {config!r} puts both pebbles on one vertex"
                )
            configs.append((a, b))
        self._configs: tuple[PebbleConfig, ...] = tuple(configs)

    @classmethod
    def from_edge_order(
        cls, graph: AnyGraph, edges: Sequence[tuple[Vertex, Vertex]]
    ) -> "PebblingScheme":
        """Build the scheme that visits ``edges`` in the given order.

        Every listed pair must be an edge of ``graph``; every edge of
        ``graph`` must be listed exactly once.
        """
        seen: set[frozenset] = set()
        for u, v in edges:
            if not graph.has_edge(u, v):
                raise SchemeError(f"({u!r}, {v!r}) is not an edge of the graph")
            key = frozenset((u, v))
            if key in seen:
                raise SchemeError(f"edge ({u!r}, {v!r}) listed twice")
            seen.add(key)
        expected = {frozenset(e) for e in graph.edges()}
        if seen != expected:
            missing = expected - seen
            raise SchemeError(f"{len(missing)} edge(s) never pebbled")
        return cls(edges)

    # ------------------------------------------------------------------
    @property
    def configurations(self) -> tuple[PebbleConfig, ...]:
        return self._configs

    def __len__(self) -> int:
        return len(self._configs)

    def __iter__(self):
        return iter(self._configs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PebblingScheme):
            return NotImplemented
        return self._configs == other._configs

    def __repr__(self) -> str:
        return f"PebblingScheme(k={len(self._configs)})"

    # ------------------------------------------------------------------
    # validity
    # ------------------------------------------------------------------
    def deleted_edges(self, graph: AnyGraph) -> set[frozenset]:
        """The set of graph edges some configuration of the scheme deletes."""
        deleted: set[frozenset] = set()
        for a, b in self._configs:
            if graph.has_edge(a, b):
                deleted.add(frozenset((a, b)))
        return deleted

    def validate(self, graph: AnyGraph) -> None:
        """Raise :class:`~repro.errors.SchemeError` unless the scheme is a
        valid pebbling of ``graph`` — i.e. references only existing vertices
        and deletes every edge."""
        has_vertex = (
            graph.has_vertex if isinstance(graph, BipartiteGraph) else graph.has_vertex
        )
        for a, b in self._configs:
            if not has_vertex(a) or not has_vertex(b):
                raise SchemeError(f"configuration ({a!r}, {b!r}) is off the graph")
        expected = {frozenset(e) for e in graph.edges()}
        deleted = self.deleted_edges(graph)
        if deleted != expected:
            missing = expected - deleted
            raise SchemeError(
                f"scheme leaves {len(missing)} edge(s) undeleted, e.g. "
                f"{sorted(map(sorted, missing))[:3]}"
            )

    def is_valid(self, graph: AnyGraph) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(graph)
        except SchemeError:
            return False
        return True

    def is_edge_order(self, graph: AnyGraph) -> bool:
        """True iff every configuration is an edge and no edge repeats
        (the canonical solver output form)."""
        seen: set[frozenset] = set()
        for a, b in self._configs:
            if not graph.has_edge(a, b):
                return False
            key = frozenset((a, b))
            if key in seen:
                return False
            seen.add(key)
        return True

    # ------------------------------------------------------------------
    # costs (Definitions 2.1 and 2.2)
    # ------------------------------------------------------------------
    def cost(self, graph: AnyGraph | None = None) -> int:
        """``π̂(P)``: the total number of pebble moves.

        The graph argument is accepted for symmetry with
        :meth:`effective_cost` but is not needed: cost is a property of the
        configuration sequence alone.
        """
        if not self._configs:
            return 0
        total = 2  # initial placement of both pebbles
        for previous, current in zip(self._configs, self._configs[1:]):
            total += config_transition_cost(previous, current)
        return total

    def effective_cost(self, graph: AnyGraph) -> int:
        """``π(P) = π̂(P) − β₀(G)`` (Def 2.2)."""
        return self.cost() - betti_number(graph)

    def jumps(self) -> int:
        """The number of 2-move transitions (the TSP "jumps" of §2.2)."""
        return sum(
            1
            for previous, current in zip(self._configs, self._configs[1:])
            if config_transition_cost(previous, current) == 2
        )

    def moves(self) -> list[tuple[int, Vertex]]:
        """Expand the scheme into individual pebble moves.

        Each move is ``(pebble_index, destination)`` with pebbles indexed 0
        and 1; replaying the moves through :class:`repro.core.game.PebbleGame`
        reproduces the configuration sequence.  The expansion greedily keeps
        a pebble in place whenever consecutive configurations share a vertex,
        which is exactly the optimal per-transition behaviour.
        """
        if not self._configs:
            return []
        first = self._configs[0]
        out: list[tuple[int, Vertex]] = [(0, first[0]), (1, first[1])]
        positions: list[Vertex] = [first[0], first[1]]
        for a, b in self._configs[1:]:
            targets = [a, b]
            # Keep any pebble already on a target vertex.
            for pebble in (0, 1):
                if positions[pebble] in targets:
                    targets.remove(positions[pebble])
            for pebble in (0, 1):
                if not targets:
                    break
                if positions[pebble] not in (a, b):
                    destination = targets.pop(0)
                    out.append((pebble, destination))
                    positions[pebble] = destination
        return out

    def concat(self, other: "PebblingScheme") -> "PebblingScheme":
        """Concatenate two schemes (used by the additivity lemma 2.2)."""
        return PebblingScheme(self._configs + other._configs)
