"""The k-pebble generalization of the join pebbling game.

The paper's game uses exactly two pebbles — the minimal machine that can
delete an edge.  Viewing pebbles as memory frames (the page-fetch lineage
of [6]) immediately suggests the generalization: ``k`` pebbles live on the
graph; a move relocates one pebble; an edge is deleted as soon as *both*
its endpoints are pebbled (by any two of the ``k`` pebbles).  A k-scheme
wins when every edge has been deleted.

Facts implemented and tested here:

- the ``k = 2`` game is exactly the paper's game (costs agree with
  :class:`~repro.core.scheme.PebblingScheme` accounting);
- monotonicity: more pebbles never cost more (checked exactly on tiny
  instances, and for the greedy scheduler on larger ones);
- two lower bounds valid for every ``k``: a placement on ``v`` deletes at
  most ``deg(v)`` edges and the first placement deletes none, giving
  ``moves ≥ ⌈m/Δ⌉ + 1``; and every non-isolated vertex must host a pebble
  at some point (both endpoints must be pebbled simultaneously to delete
  an edge), giving ``moves ≥ n`` — tight at ``k ≥ n``.

The exact k-pebble optimum is NP-hard already for ``k = 2`` (Thm 4.2), so
beyond the bounds this module provides a competitive *greedy* scheduler
and a brute-force optimum for tiny instances.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InstanceTooLargeError, SchemeError, VertexError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph, Vertex

AnyGraph = Graph | BipartiteGraph


@dataclass
class KPebbleGame:
    """Mutable k-pebble game state.

    Example
    -------
    >>> from repro.graphs.generators import complete_bipartite
    >>> g = complete_bipartite(2, 2)
    >>> game = KPebbleGame(g, k=4)
    >>> for i, v in enumerate(["u0", "u1", "v0", "v1"]):
    ...     _ = game.move(i, v)
    >>> game.is_won()
    True
    >>> game.moves_used
    4
    """

    graph: AnyGraph
    k: int
    positions: list[Vertex | None] = field(init=False)
    moves_used: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.k < 2:
            raise SchemeError("the game needs at least 2 pebbles")
        self.positions = [None] * self.k
        self._alive: set[frozenset] = {frozenset(e) for e in self.graph.edges()}

    @property
    def remaining_edges(self) -> int:
        return len(self._alive)

    def is_won(self) -> bool:
        return not self._alive

    def occupied(self) -> set[Vertex]:
        return {p for p in self.positions if p is not None}

    def move(self, pebble: int, destination: Vertex) -> list[tuple[Vertex, Vertex]]:
        """Move one pebble; returns the (possibly several) edges deleted.

        Unlike the 2-pebble game, a single placement can delete up to
        ``deg(destination)`` edges at once — every live edge from
        ``destination`` to an occupied vertex dies.
        """
        if not 0 <= pebble < self.k:
            raise SchemeError(f"pebble index out of range: {pebble}")
        if not self.graph.has_vertex(destination):
            raise VertexError(f"vertex {destination!r} does not exist")
        if destination in self.occupied():
            raise SchemeError("destination already holds a pebble")
        self.positions[pebble] = destination
        self.moves_used += 1
        deleted = []
        for other in self.occupied():
            key = frozenset((destination, other))
            if key in self._alive:
                self._alive.discard(key)
                deleted.append((destination, other))
        return deleted


def vertex_count_lower_bound(graph: AnyGraph) -> int:
    """``moves ≥ #non-isolated vertices``: deleting edge ``(u, v)``
    requires pebbles on *both* endpoints simultaneously, so every
    non-isolated vertex hosts a pebble at some point, and each hosting
    costs one move.  Tight for ``k ≥ n``: placing every vertex once wins
    in exactly ``n`` moves."""
    working = graph.without_isolated_vertices()
    if isinstance(working, BipartiteGraph):
        return len(working.left) + len(working.right)
    return working.num_vertices


def degree_lower_bound(graph: AnyGraph) -> int:
    """``moves ≥ ⌈m / Δ⌉ + 1``: each move deletes at most Δ edges and the
    first move deletes none."""
    working = graph.without_isolated_vertices()
    m = working.num_edges
    if m == 0:
        return 0
    if isinstance(working, BipartiteGraph):
        delta = max(working.degree(v) for v in list(working.left) + list(working.right))
    else:
        delta = working.max_degree()
    return -(-m // delta) + 1


def kpebble_lower_bound(graph: BipartiteGraph) -> int:
    """The larger of the vertex-count and degree bounds (valid for any k)."""
    return max(vertex_count_lower_bound(graph), degree_lower_bound(graph))


def greedy_kpebble_schedule(graph: BipartiteGraph, k: int) -> list[Vertex]:
    """A greedy placement order: each move picks the (destination, evicted
    pebble) pair deleting the most live edges *after* the eviction; ties
    prefer destinations with more remaining live edges and evictions of
    less valuable pebbles.

    Choosing destination and eviction jointly matters: scoring a
    destination against the pre-eviction occupancy can count an edge whose
    other endpoint is the pebble about to leave, stalling forever.  With
    the joint choice, a zero-gain move always places a live-edge endpoint
    whose partner scores on the following move, so an edge dies at least
    every second move and the schedule has at most ``2m + k`` moves
    (asserted below as a defensive guard).

    Returns the placement sequence; its length is the number of moves.
    """
    game = KPebbleGame(graph, k)
    order: list[Vertex] = []
    vertices = (
        list(graph.left) + list(graph.right)
        if isinstance(graph, BipartiteGraph)
        else graph.vertices
    )
    live = {frozenset(e) for e in graph.edges()}

    def future_degree(v: Vertex) -> int:
        return sum(1 for n in graph.neighbors(v) if frozenset((v, n)) in live)

    def gain(v: Vertex, kept: set[Vertex]) -> int:
        return sum(
            1
            for n in graph.neighbors(v)
            if n in kept and frozenset((v, n)) in live
        )

    next_free = 0
    guard = 2 * graph.num_edges + k + 4
    while not game.is_won():
        if len(order) > guard:
            raise SchemeError("internal error: greedy schedule failed to progress")
        occupied = game.occupied()
        candidates = [v for v in vertices if v not in occupied and future_degree(v) > 0]
        if not candidates:
            raise SchemeError("internal error: live edges but no useful vertex")
        if next_free < k:
            pebble = next_free
            next_free += 1
            best = max(
                candidates,
                key=lambda v: (gain(v, occupied), future_degree(v), repr(v)),
            )
        else:
            best_score = None
            best = None
            pebble = 0
            for slot in range(k):
                kept = occupied - {game.positions[slot]}
                slot_value = future_degree(game.positions[slot])
                for v in candidates:
                    score = (gain(v, kept), future_degree(v), -slot_value, repr(v))
                    if best_score is None or score > best_score:
                        best_score = score
                        best = v
                        pebble = slot
            assert best is not None
        deleted = game.move(pebble, best)
        for edge in deleted:
            live.discard(frozenset(edge))
        order.append(best)
    return order


def greedy_kpebble_cost(graph: BipartiteGraph, k: int) -> int:
    """Number of moves the greedy scheduler uses (∞-free; always wins)."""
    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        return 0
    return len(greedy_kpebble_schedule(working, k))


def optimal_kpebble_cost_bruteforce(graph: BipartiteGraph, k: int) -> int:
    """Exact k-pebble optimum by exhaustive search (tiny instances only).

    Searches over sequences of placements with eviction choices; bounded
    by an iterative-deepening depth limit.  Raises
    :class:`~repro.errors.InstanceTooLargeError` beyond 8 edges.
    """
    working = graph.without_isolated_vertices()
    m = working.num_edges
    if m == 0:
        return 0
    if m > 8:
        raise InstanceTooLargeError("k-pebble brute force limited to 8 edges")
    vertices = list(working.left) + list(working.right)
    all_edges = frozenset(frozenset(e) for e in working.edges())
    if isinstance(working, BipartiteGraph):
        delta = max(working.degree(v) for v in vertices)
    else:
        delta = working.max_degree()

    upper = greedy_kpebble_cost(working, k)

    # Dominance memo: the fewest moves at which each (occupied, alive)
    # state has been reached within the current budget pass; revisiting at
    # the same or higher move count cannot help.
    seen_at: dict[tuple[frozenset, frozenset], int] = {}

    def search(occupied: frozenset, alive: frozenset, moves: int, budget: int) -> bool:
        if not alive:
            return True
        # Each future move deletes at most delta edges.
        if moves + -(-len(alive) // delta) > budget:
            return False
        state = (occupied, alive)
        recorded = seen_at.get(state)
        if recorded is not None and recorded <= moves:
            return False
        seen_at[state] = moves
        live_vertices = {v for e in alive for v in e}
        for v in vertices:
            if v in occupied or v not in live_vertices:
                # Placing on a vertex with no live incident edge can never
                # help: live edges only shrink, so it stays useless.
                continue
            if len(occupied) < k:
                new_occupied = occupied | {v}
                deleted = {e for e in alive if v in e and next(iter(set(e) - {v})) in new_occupied}
                if search(new_occupied, alive - deleted, moves + 1, budget):
                    return True
            else:
                for evicted in occupied:
                    new_occupied = (occupied - {evicted}) | {v}
                    deleted = {
                        e
                        for e in alive
                        if v in e and next(iter(set(e) - {v})) in new_occupied
                    }
                    if search(new_occupied, alive - deleted, moves + 1, budget):
                        return True
        return False

    lower = kpebble_lower_bound(working)
    for budget in range(lower, upper + 1):
        seen_at.clear()
        if search(frozenset(), all_edges, 0, budget):
            return budget
    return upper
