"""The TSP(1,2) view of pebbling (paper §2.2).

A pebbling scheme in canonical form is an *ordering of the edges* of ``G``,
i.e. a path through all nodes of the line graph ``L(G)`` viewed as a complete
graph with weight 1 on real line-graph edges ("good") and weight 2 on
non-edges ("bad"/"jump").  Following the paper, a "TSP tour" means a sequence
visiting every node exactly once — a Hamiltonian *path* in the completion.

Identities implemented and tested:

- the cost of a tour is ``m − 1 + J`` with ``J`` the number of jumps;
- Proposition 2.1: ``π(G) = m`` iff ``L(G)`` has a Hamiltonian path;
- Proposition 2.2: the optimal tour cost equals ``π(G) − 1`` (connected G).
- minimizing jumps ≡ partitioning ``L(G)`` into the fewest vertex-disjoint
  paths: ``J = (#paths) − 1``, which is how the exact solver searches.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import SchemeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme

AnyGraph = Graph | BipartiteGraph
EdgeNode = tuple  # a node of L(G) == an edge of G in canonical orientation


def edges_share_endpoint(e1: EdgeNode, e2: EdgeNode) -> bool:
    """Weight-1 test: do the two underlying edges share an endpoint?"""
    return bool(set(e1) & set(e2))


def tour_cost(tour: Sequence[EdgeNode]) -> int:
    """The TSP cost of a tour of line-graph nodes.

    ``m − 1 + J``: every step costs 1, plus 1 extra per jump.  Matches the
    paper's measurement where "the first vertex of the tour counts 0".
    """
    if not tour:
        return 0
    cost = len(tour) - 1
    for previous, current in zip(tour, tour[1:]):
        if not edges_share_endpoint(previous, current):
            cost += 1
    return cost


def tour_jumps(tour: Sequence[EdgeNode]) -> int:
    """``J``: the number of bad (weight-2) steps in the tour."""
    return sum(
        1
        for previous, current in zip(tour, tour[1:])
        if not edges_share_endpoint(previous, current)
    )


def validate_tour(graph: AnyGraph, tour: Sequence[EdgeNode]) -> None:
    """Check that ``tour`` visits every edge of ``graph`` exactly once."""
    expected = {frozenset(e) for e in graph.edges()}
    seen: set[frozenset] = set()
    for edge in tour:
        key = frozenset(edge)
        if key not in expected:
            raise SchemeError(f"{edge!r} is not an edge of the graph")
        if key in seen:
            raise SchemeError(f"edge {edge!r} visited twice")
        seen.add(key)
    if seen != expected:
        raise SchemeError(f"tour misses {len(expected) - len(seen)} edge(s)")


def tour_to_scheme(graph: AnyGraph, tour: Sequence[EdgeNode]) -> PebblingScheme:
    """Convert a line-graph tour into the corresponding pebbling scheme.

    This is the constructive direction of Prop 2.1/2.2: visiting edge
    ``e_i`` means placing the pebbles on its endpoints.  Scheme cost is the
    tour cost plus 2 (the initial double placement), so
    ``π̂ = (m − 1 + J) + 2`` and, for connected ``G``, ``π = tour cost + 1``.
    """
    validate_tour(graph, tour)
    return PebblingScheme.from_edge_order(graph, list(tour))


def scheme_to_tour(graph: AnyGraph, scheme: PebblingScheme) -> list[EdgeNode]:
    """Convert a canonical (edge-order) scheme into a line-graph tour.

    Raises :class:`~repro.errors.SchemeError` if the scheme has transit
    configurations or repeated edges — only canonical schemes correspond
    one-to-one with tours.
    """
    if not scheme.is_edge_order(graph):
        raise SchemeError("scheme is not a canonical edge order")
    tour = []
    for a, b in scheme.configurations:
        if isinstance(graph, BipartiteGraph):
            tour.append(graph.orient_edge(a, b))
        else:
            from repro.graphs.simple import normalize_edge

            tour.append(normalize_edge(a, b))
    validate_tour(graph, tour)
    return tour


def tour_from_paths(paths: Sequence[Sequence[EdgeNode]]) -> list[EdgeNode]:
    """Concatenate vertex-disjoint line-graph paths into one tour.

    Each inner sequence must be a weight-1 path in ``L(G)``; the jumps of
    the resulting tour are exactly the ``len(paths) − 1`` junctions (plus
    any bad steps inside the paths — none, if the inputs really are paths).
    """
    tour: list[EdgeNode] = []
    for path in paths:
        tour.extend(path)
    return tour


def split_tour_into_paths(tour: Sequence[EdgeNode]) -> list[list[EdgeNode]]:
    """Split a tour at its jumps, recovering the path partition of L(G)."""
    if not tour:
        return []
    paths: list[list[EdgeNode]] = [[tour[0]]]
    for previous, current in zip(tour, tour[1:]):
        if edges_share_endpoint(previous, current):
            paths[-1].append(current)
        else:
            paths.append([current])
    return paths


def reorder_paths_greedily(
    paths: list[list[EdgeNode]],
) -> list[list[EdgeNode]]:
    """Order (and orient) paths so consecutive junctions are good when possible.

    A path partition fixes the jump count only *up to* lucky junctions: if
    the tail edge of one path shares an endpoint with the head edge of the
    next, the junction is free.  This greedy pass chains paths on such
    bonuses; it never increases cost.
    """
    remaining = [list(p) for p in paths]
    if not remaining:
        return []
    # Grow a chain of paths from both ends: try to append a path whose
    # endpoint matches the chain's tail, or prepend one matching its head.
    chain: list[list] = [remaining.pop(0)]
    while remaining:
        tail = chain[-1][-1]
        head = chain[0][0]
        placed = False
        for index, path in enumerate(remaining):
            if edges_share_endpoint(tail, path[0]):
                chain.append(remaining.pop(index))
                placed = True
                break
            if edges_share_endpoint(tail, path[-1]):
                chosen = remaining.pop(index)
                chosen.reverse()
                chain.append(chosen)
                placed = True
                break
            if edges_share_endpoint(head, path[-1]):
                chain.insert(0, remaining.pop(index))
                placed = True
                break
            if edges_share_endpoint(head, path[0]):
                chosen = remaining.pop(index)
                chosen.reverse()
                chain.insert(0, chosen)
                placed = True
                break
        if not placed:
            chain.append(remaining.pop(0))
    return chain
