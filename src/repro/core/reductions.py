"""Executable L-reductions (Theorems 4.3 and 4.4).

The paper's hardness chain is

    TSP-4(1,2)  --diamond gadget-->  TSP-3(1,2)  --incidence graph-->  PEBBLE

where TSP-k(1,2) asks for a minimum-cost visiting order of all nodes of a
complete graph with weights in {1,2} and at most ``k`` weight-1 edges per
node; following §2.2, a "tour" is a Hamiltonian *path* in the completion.

This module implements both reductions as executable instance maps ``f``
and solution maps ``g``, plus a harness measuring the L-reduction constants
α and β on concrete instances (Def 4.2):

1. ``OPT(f(x)) ≤ α · OPT(x)``;
2. ``OPT(x) − cost(g(s)) ≤ β · (OPT(f(x)) − cost(s))`` for feasible ``s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReductionError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import incidence_graph
from repro.graphs.simple import Graph
from repro.core.gadgets import DiamondGadget, default_gadget
from repro.core.scheme import PebblingScheme
from repro.core.tsp import scheme_to_tour

# ---------------------------------------------------------------------------
# TSP(1,2) instances
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Tsp12Instance:
    """A TSP(1,2) instance: the weight-1 edge set as a graph.

    Pairs not in the graph have weight 2.  ``max_good_degree`` is the ``k``
    of TSP-k(1,2).
    """

    graph: Graph

    @property
    def num_nodes(self) -> int:
        return self.graph.num_vertices

    @property
    def max_good_degree(self) -> int:
        return self.graph.max_degree()

    def tour_cost(self, tour: list) -> int:
        """Cost of a visiting order: 1 per good step, 2 per bad step."""
        if set(tour) != set(self.graph.vertices) or len(tour) != self.num_nodes:
            raise ReductionError("tour must visit every node exactly once")
        cost = 0
        for a, b in zip(tour, tour[1:]):
            cost += 1 if self.graph.has_edge(a, b) else 2
        return cost

    def optimal_tour(self) -> tuple[list, int]:
        """Exact optimum by minimum path partition of the weight-1 graph.

        The same jump identity the pebbling solver uses: a tour with ``J``
        bad steps is a partition of the nodes into ``J + 1`` weight-1 paths
        (plus bad steps crossing between components).
        """
        from repro.core.solvers.exact import minimum_path_partition

        if self.num_nodes == 0:
            return [], 0
        partition = minimum_path_partition(self.graph)
        tour = [node for path in partition for node in path]
        return tour, self.tour_cost(tour)


def improve_tsp12_tour(instance: Tsp12Instance, tour: list, max_rounds: int = 5000) -> list:
    """Polynomial 2-opt / or-opt improvement of a TSP(1,2) visiting order.

    The solution maps ``g`` of both reductions run this after their
    structural conversion — the paper's proofs similarly post-process
    ("nice-ify") the recovered tour before reading off its cost, and an
    L-reduction's ``g`` may be any polynomial-time map.
    """
    graph = instance.graph

    def w(a, b) -> int:
        return 1 if graph.has_edge(a, b) else 2

    working = list(tour)
    n = len(working)
    for _ in range(max_rounds):
        improved = False
        for i in range(n - 1):
            for j in range(i + 1, n):
                before = after = 0
                if i > 0:
                    before += w(working[i - 1], working[i])
                    after += w(working[i - 1], working[j])
                if j < n - 1:
                    before += w(working[j], working[j + 1])
                    after += w(working[i], working[j + 1])
                if after < before:
                    working[i : j + 1] = reversed(working[i : j + 1])
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break
    return working


# ---------------------------------------------------------------------------
# Theorem 4.3: TSP-4(1,2) -> TSP-3(1,2) via the diamond gadget
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class DiamondReduction:
    """The instance map of Theorem 4.3 plus the bookkeeping ``g`` needs."""

    source: Tsp12Instance
    target: Tsp12Instance
    gadget: DiamondGadget
    # For every replaced source node: the map corner-label -> target node,
    # and the gadget's node set in the target.
    corner_of: dict[tuple[Any, int], Any]
    diamond_nodes: dict[Any, list[Any]]
    attachment: dict[tuple[Any, Any], Any]  # (replaced u, neighbor w) -> corner node


def tsp4_to_tsp3(
    instance: Tsp12Instance, gadget: DiamondGadget | None = None
) -> DiamondReduction:
    """Replace every degree-4 node by a diamond gadget (the ``f`` of 4.3).

    Nodes of degree ≤ 3 are kept as-is; each degree-4 node ``u`` becomes a
    copy ``d_u`` of the gadget, with each of ``u``'s four edges attached to
    a distinct corner.  Degrees above 4 are out of scope (as in the paper,
    whose source problem is TSP-4(1,2)).
    """
    gadget = gadget or default_gadget()
    source = instance.graph
    if source.max_degree() > 4:
        raise ReductionError("tsp4_to_tsp3 requires max weight-1 degree 4")
    target = Graph()
    corner_of: dict[tuple[Any, int], Any] = {}
    diamond_nodes: dict[Any, list[Any]] = {}
    attachment: dict[tuple[Any, Any], Any] = {}

    replaced = {v for v in source.vertices if source.degree(v) == 4}
    # Keep light nodes.
    for v in source.vertices:
        if v not in replaced:
            target.add_vertex(v)
    # Instantiate gadget copies.
    for u in replaced:
        nodes = []
        for node in gadget.graph.vertices:
            target.add_vertex((u, node))
            nodes.append((u, node))
        for a, b in gadget.graph.edges():
            target.add_edge((u, a), (u, b))
        diamond_nodes[u] = nodes
        for i, corner in enumerate(gadget.corners):
            corner_of[(u, i)] = (u, corner)
    # Wire original edges, assigning each replaced node's edges to corners.
    slot: dict[Any, int] = {u: 0 for u in replaced}

    def endpoint_in_target(u: Any, other: Any) -> Any:
        if u not in replaced:
            return u
        corner = corner_of[(u, slot[u])]
        slot[u] += 1
        attachment[(u, other)] = corner
        return corner

    for a, b in source.edges():
        ta = endpoint_in_target(a, b)
        tb = endpoint_in_target(b, a)
        target.add_edge(ta, tb)

    reduction = DiamondReduction(
        source=instance,
        target=Tsp12Instance(target),
        gadget=gadget,
        corner_of=corner_of,
        diamond_nodes=diamond_nodes,
        attachment=attachment,
    )
    if reduction.target.max_good_degree > 3:
        raise ReductionError("internal error: target degree exceeds 3")
    return reduction


def forward_tour(reduction: DiamondReduction, tour: list) -> list:
    """Lift a source tour to a target tour (the constructive side of α).

    Each visit of a replaced node ``u`` is expanded into a Hamiltonian path
    of ``d_u`` whose end corners match the corners the tour enters/leaves
    through (arbitrary corners when the adjacent step is a jump), following
    the proof of Theorem 4.3.
    """
    source = reduction.source.graph
    gadget = reduction.gadget
    out: list = []
    for position, node in enumerate(tour):
        if node not in reduction.diamond_nodes:
            out.append(node)
            continue
        prev_node = tour[position - 1] if position > 0 else None
        next_node = tour[position + 1] if position + 1 < len(tour) else None
        enter = exit_ = None
        if prev_node is not None and source.has_edge(prev_node, node):
            enter = reduction.attachment[(node, prev_node)][1]
        if next_node is not None and source.has_edge(node, next_node):
            exit_ = reduction.attachment[(node, next_node)][1]
        c1, c2 = gadget.pick_corner_pair(enter, exit_)
        for g_node in gadget.hamiltonian_corner_path(c1, c2):
            out.append((node, g_node))
    return out


def reverse_tour(reduction: DiamondReduction, target_tour: list) -> list:
    """The solution map ``g`` of Theorem 4.3.

    Produces a source tour "by visiting the nodes in the same order in
    which the diamonds appear" — i.e. each replaced node is placed at the
    first visit of its diamond, and unreplaced nodes keep their positions.
    """
    seen: set = set()
    out: list = []
    for node in target_tour:
        if isinstance(node, tuple) and len(node) == 2 and node[0] in reduction.diamond_nodes:
            original = node[0]
        else:
            original = node
        if original not in seen:
            seen.add(original)
            out.append(original)
    if set(out) != set(reduction.source.graph.vertices):
        raise ReductionError("target tour does not cover all diamonds")
    return improve_tsp12_tour(reduction.source, out)


# ---------------------------------------------------------------------------
# Theorem 4.4: TSP-3(1,2) -> PEBBLE via incidence graphs
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class IncidenceReduction:
    """The f/g pair of Theorem 4.4."""

    source: Tsp12Instance
    join_graph: BipartiteGraph


def tsp3_to_pebble(instance: Tsp12Instance) -> IncidenceReduction:
    """``f``: the incidence bipartite graph ``B = (V, E, incidences)``.

    Nodes of ``L(B)`` are incidences ``(v, e)``; per the proof, ``L(B)`` is
    the source graph with every vertex of degree ``i`` blown up into a
    clique ``K_i`` — so good tours of the source translate into good
    pebbling schemes of ``B`` and back.
    """
    if instance.max_good_degree > 3:
        raise ReductionError("tsp3_to_pebble requires max weight-1 degree 3")
    if any(instance.graph.degree(v) == 0 for v in instance.graph.vertices):
        raise ReductionError(
            "isolated weight-1 nodes have no incidences; "
            "restrict to instances without isolated nodes"
        )
    return IncidenceReduction(
        source=instance, join_graph=incidence_graph(instance.graph)
    )


def pebble_scheme_to_tsp_tour(
    reduction: IncidenceReduction, scheme: PebblingScheme
) -> list:
    """``g``: a pebbling scheme of ``B`` → a tour of the source graph.

    Each scheme configuration is an incidence ``(v, e)`` of the source;
    ordering source vertices by the first time any of their incidences is
    pebbled yields the tour (the "visit in order of first appearance"
    conversion of the proof).
    """
    join_graph = reduction.join_graph
    if not scheme.is_edge_order(join_graph):
        raise ReductionError("scheme must be a canonical edge order of B")
    tour: list = []
    seen: set = set()
    for a, b in scheme.configurations:
        vertex, _edge = join_graph.orient_edge(a, b)
        if vertex not in seen:
            seen.add(vertex)
            tour.append(vertex)
    if set(tour) != set(reduction.source.graph.vertices):
        raise ReductionError("scheme does not touch every source vertex")
    return improve_tsp12_tour(reduction.source, tour)


def tsp_tour_to_pebble_tour(reduction: IncidenceReduction, tour: list) -> list:
    """The constructive direction: a source tour → an edge order of ``B``.

    Visiting vertex ``v`` pebbles all of ``v``'s not-yet-deleted incidence
    edges consecutively, ordering them so that the incidence shared with
    the next tour step comes last (staying inside ``v``'s clique of
    ``L(B)`` costs 1 per step; crossing to the next vertex through a shared
    source edge also costs 1).
    """
    source = reduction.source.graph
    join_graph = reduction.join_graph
    done: set = set()
    order: list = []
    for position, vertex in enumerate(tour):
        next_vertex = tour[position + 1] if position + 1 < len(tour) else None
        incident = [
            (vertex, edge)
            for edge in sorted(join_graph.neighbors(vertex), key=repr)
            if (vertex, edge) not in done
        ]
        # Put the incidence of the edge leading to the next tour vertex last.
        if next_vertex is not None and source.has_edge(vertex, next_vertex):
            from repro.graphs.simple import normalize_edge

            bridge = normalize_edge(vertex, next_vertex)
            incident.sort(key=lambda pair: pair[1] == bridge)
        for pair in incident:
            done.add(pair)
            order.append(pair)
        # The next vertex's incidence of the bridge edge follows naturally
        # because it shares the edge endpoint in L(B).
        if next_vertex is not None and source.has_edge(vertex, next_vertex):
            from repro.graphs.simple import normalize_edge

            bridge = normalize_edge(vertex, next_vertex)
            if (next_vertex, bridge) not in done:
                done.add((next_vertex, bridge))
                order.append((next_vertex, bridge))
    if len(order) != join_graph.num_edges:
        raise ReductionError("internal error: not all incidences ordered")
    return order


# ---------------------------------------------------------------------------
# L-reduction measurement harness (Def 4.2)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class LReductionReport:
    """Empirical α/β measurement of one reduction on one instance."""

    opt_source: int
    opt_target: int
    alpha_observed: float
    beta_observed: float  # max over probed solutions; 0 when all were optimal

    def satisfies(self, alpha: float, beta: float) -> bool:
        return self.alpha_observed <= alpha + 1e-9 and self.beta_observed <= beta + 1e-9


def measure_diamond_reduction(
    reduction: DiamondReduction, probe_tours: list[list] | None = None
) -> LReductionReport:
    """Measure α and β for one TSP-4 → TSP-3 reduction instance.

    α is measured from the true optima of source and target; β from the
    supplied probe tours of the *target* (defaults to the lifted optimal
    tour), comparing the gap preserved by :func:`reverse_tour`.
    """
    src_tour, opt_source = reduction.source.optimal_tour()
    _tgt_tour, opt_target = reduction.target.optimal_tour()
    alpha = opt_target / opt_source if opt_source else 1.0
    probes = probe_tours if probe_tours is not None else [forward_tour(reduction, src_tour)]
    beta = 0.0
    for probe in probes:
        probe_cost = reduction.target.tour_cost(probe)
        back = reverse_tour(reduction, probe)
        back_cost = reduction.source.tour_cost(back)
        target_gap = probe_cost - opt_target
        source_gap = back_cost - opt_source
        if target_gap > 0:
            beta = max(beta, source_gap / target_gap)
        elif source_gap > 0:
            beta = float("inf")
    return LReductionReport(opt_source, opt_target, alpha, beta)


def measure_incidence_reduction(
    reduction: IncidenceReduction, probe_schemes: list[PebblingScheme] | None = None
) -> LReductionReport:
    """Measure α and β for one TSP-3 → PEBBLE reduction instance."""
    from repro.core.solvers.exact import solve_exact

    _src_tour, opt_source = reduction.source.optimal_tour()
    exact = solve_exact(reduction.join_graph)
    opt_target = exact.effective_cost
    alpha = opt_target / opt_source if opt_source else 1.0
    probes = probe_schemes if probe_schemes is not None else [exact.scheme]
    beta = 0.0
    for scheme in probes:
        probe_cost = scheme.effective_cost(
            reduction.join_graph.without_isolated_vertices()
        )
        tour = pebble_scheme_to_tsp_tour(reduction, scheme)
        back_cost = reduction.source.tour_cost(tour)
        target_gap = probe_cost - opt_target
        source_gap = back_cost - opt_source
        if target_gap > 0:
            beta = max(beta, source_gap / target_gap)
        elif source_gap > 0:
            beta = float("inf")
    return LReductionReport(opt_source, opt_target, alpha, beta)
