"""A move-by-move pebble game simulator (paper §2).

:class:`PebbleGame` is the operational view of the model: place and move two
pebbles on a join graph and watch edges get deleted.  It exists for three
reasons:

- it *defines* the semantics that :class:`~repro.core.scheme.PebblingScheme`
  costs summarize (the test-suite replays schemes through the game and
  checks that cost accounting agrees);
- examples and the CLI use it to animate strategies;
- failure injection tests use it to confirm invalid schemes really do leave
  edges alive.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemeError, VertexError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph, Vertex
from repro.core.scheme import PebblingScheme

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class GameEvent:
    """One entry of the game log."""

    move_number: int
    pebble: int
    destination: Vertex
    deleted_edge: tuple[Vertex, Vertex] | None


@dataclass
class PebbleGame:
    """Mutable two-pebble game state on a fixed graph.

    The graph itself is never mutated; the game tracks the set of deleted
    edges.  The game is *won* when every edge has been deleted.

    Example
    -------
    >>> from repro.graphs.generators import path_graph
    >>> game = PebbleGame(path_graph(2))
    >>> _ = game.move(0, "u0")
    >>> game.move(1, "v0")
    ('v0', 'u0')
    >>> game.move(0, "u1")
    ('u1', 'v0')
    >>> game.is_won()
    True
    >>> game.moves_used
    3
    """

    graph: AnyGraph
    positions: list[Vertex | None] = field(default_factory=lambda: [None, None])
    moves_used: int = 0
    log: list[GameEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._alive: set[frozenset] = {frozenset(e) for e in self.graph.edges()}

    # ------------------------------------------------------------------
    @property
    def remaining_edges(self) -> int:
        return len(self._alive)

    def edge_alive(self, u: Vertex, v: Vertex) -> bool:
        return frozenset((u, v)) in self._alive

    def is_won(self) -> bool:
        """True when every edge of the graph has been deleted."""
        return not self._alive

    # ------------------------------------------------------------------
    def move(self, pebble: int, destination: Vertex) -> tuple[Vertex, Vertex] | None:
        """Move ``pebble`` (0 or 1) onto ``destination``; one move of cost 1.

        Pebbles may be placed on any vertex ("teleport" semantics, §2: "one
        of the two pebbles can be moved to another node").  If, after the
        move, the two pebbles sit on the endpoints of a live edge, that edge
        is deleted and returned.
        """
        if pebble not in (0, 1):
            raise SchemeError(f"pebble index must be 0 or 1, got {pebble!r}")
        has_vertex = self.graph.has_vertex
        if not has_vertex(destination):
            raise VertexError(f"vertex {destination!r} does not exist")
        other = self.positions[1 - pebble]
        if destination == other:
            raise SchemeError("both pebbles cannot occupy one vertex")
        self.positions[pebble] = destination
        self.moves_used += 1
        deleted: tuple[Vertex, Vertex] | None = None
        if other is not None:
            key = frozenset((destination, other))
            if key in self._alive:
                self._alive.discard(key)
                deleted = (destination, other)
        self.log.append(
            GameEvent(self.moves_used, pebble, destination, deleted)
        )
        return deleted

    def replay(self, scheme: PebblingScheme) -> int:
        """Replay a scheme from the current state; return total moves used.

        The scheme is expanded to individual moves via
        :meth:`PebblingScheme.moves` and fed through :meth:`move`, so after
        replaying a valid scheme from a fresh game, ``moves_used`` equals
        ``scheme.cost()`` and :meth:`is_won` is true.
        """
        for pebble, destination in scheme.moves():
            self.move(pebble, destination)
        return self.moves_used

    def reset(self) -> None:
        """Restore all edges and remove the pebbles."""
        self._alive = {frozenset(e) for e in self.graph.edges()}
        self.positions = [None, None]
        self.moves_used = 0
        self.log.clear()
