"""Machine checks of the paper's §2–§3 statements on concrete instances.

Each function checks one lemma/proposition on a given graph and returns a
small report dict (used by tests, benchmarks, and EXPERIMENTS.md
generation).  A failed check raises :class:`AssertionError` with a
diagnostic — these functions are the "executable theorems" of the
reproduction.
"""

from __future__ import annotations

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import (
    betti_number,
    component_vertex_sets,
    disjoint_union,
)
from repro.graphs.hamiltonian import has_hamiltonian_path
from repro.graphs.line_graph import is_claw_free, line_graph
from repro.graphs.simple import Graph
from repro.core.costs import effective_cost_bounds, naive_cost_bounds
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.exact import solve_exact
from repro.core.tsp import tour_cost, scheme_to_tour

AnyGraph = Graph | BipartiteGraph


def check_cost_bounds(graph: AnyGraph) -> dict:
    """Lemma 2.3 + Theorem 3.1: ``m ≤ π(G) ≤ min(2m − 1, Σ ⌊1.25 m_c⌋)``."""
    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        return {"m": 0, "pi": 0}
    pi = solve_exact(working).effective_cost
    lower, tight_upper = effective_cost_bounds(working)
    _, naive_upper = naive_cost_bounds(working)
    assert lower <= pi, f"pi={pi} below lower bound m={lower}"
    assert pi <= tight_upper, f"pi={pi} above 1.25 bound {tight_upper}"
    assert pi <= naive_upper, f"pi={pi} above naive bound {naive_upper}"
    return {"m": working.num_edges, "pi": pi, "upper": tight_upper}


def check_additivity(first: BipartiteGraph, second: BipartiteGraph) -> dict:
    """Lemma 2.2: ``π(G ⊎ H) = π(G) + π(H)`` (and likewise for π̂)."""
    union = disjoint_union(first, second)
    pi_first = solve_exact(first).effective_cost
    pi_second = solve_exact(second).effective_cost
    pi_union = solve_exact(union).effective_cost
    assert pi_union == pi_first + pi_second, (
        f"additivity violated: {pi_union} != {pi_first} + {pi_second}"
    )
    raw_first = pi_first + betti_number(first.without_isolated_vertices())
    raw_second = pi_second + betti_number(second.without_isolated_vertices())
    raw_union = pi_union + betti_number(union.without_isolated_vertices())
    assert raw_union == raw_first + raw_second
    return {"pi_G": pi_first, "pi_H": pi_second, "pi_union": pi_union}


def check_perfect_iff_hamiltonian(graph: AnyGraph) -> dict:
    """Proposition 2.1 on a *connected* graph: ``π(G) = m`` iff ``L(G)``
    has a Hamiltonian path."""
    working = graph.without_isolated_vertices()
    assert len(component_vertex_sets(working)) == 1, "requires connected input"
    m = working.num_edges
    pi = solve_exact(working).effective_cost
    line = line_graph(working)
    hamiltonian = has_hamiltonian_path(line)
    assert (pi == m) == hamiltonian, (
        f"Prop 2.1 violated: pi={pi}, m={m}, ham={hamiltonian}"
    )
    return {"m": m, "pi": pi, "hamiltonian": hamiltonian}


def check_tsp_correspondence(graph: AnyGraph) -> dict:
    """Proposition 2.2 on a connected graph: the optimal scheme's tour
    costs ``π(G) − 1``."""
    working = graph.without_isolated_vertices()
    assert len(component_vertex_sets(working)) == 1, "requires connected input"
    result = solve_exact(working)
    tour = scheme_to_tour(working, result.scheme)
    assert tour_cost(tour) == result.effective_cost - 1, (
        f"Prop 2.2 violated: tour={tour_cost(tour)}, pi={result.effective_cost}"
    )
    return {"pi": result.effective_cost, "tour_cost": tour_cost(tour)}


def check_line_graph_claw_free(graph: AnyGraph) -> dict:
    """The structural fact behind Theorem 3.1: ``L(G)`` is claw-free."""
    line = line_graph(graph.without_isolated_vertices())
    assert is_claw_free(line), "line graph contains an induced claw"
    return {"line_nodes": line.num_vertices}


def check_dfs_guarantee(graph: AnyGraph) -> dict:
    """Theorem 3.1: the DFS algorithm's scheme costs at most
    ``Σ_c (m_c + ⌊m_c/4⌋) ≤ 1.25 m``."""
    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        return {"m": 0}
    result = solve_dfs_approx(working)
    result.scheme.validate(working)
    assert result.effective_cost <= result.guarantee, (
        f"DFS cost {result.effective_cost} exceeds guarantee {result.guarantee}"
    )
    return {
        "m": working.num_edges,
        "pi_dfs": result.effective_cost,
        "guarantee": result.guarantee,
    }


def check_equijoin_perfect(graph: BipartiteGraph) -> dict:
    """Theorem 3.2: a union-of-bicliques graph has ``π(G) = m``, achieved
    by the linear-time solver."""
    from repro.core.solvers.equijoin import solve_equijoin

    working = graph.without_isolated_vertices()
    scheme = solve_equijoin(working)
    scheme.validate(working)
    pi = scheme.effective_cost(working)
    assert pi == working.num_edges, f"equijoin scheme not perfect: {pi}"
    return {"m": working.num_edges, "pi": pi}
