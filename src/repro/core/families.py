"""The worst-case family of Theorem 3.3 (Fig 1) and friends.

``G_n`` is the "spider": a star ``K_{1,n}`` whose every leaf carries one
extra pendant edge, so ``m = 2n``.  Its line graph ``L(G_n)`` is the corona
``K_n ∘ K_1`` — the clique ``K_n`` (the star's edges pairwise share the
centre) with one pendant line-node per clique node (each pendant edge of
``G_n`` meets exactly its own star edge) — exactly Fig 1(b).

The sharp optimum, which the paper states asymptotically as
``π(G_n) = 1.25m − 1``:

    π(G_n) = 2n + ⌈(n − 2)/2⌉   for n ≥ 1,

derived from the jump bound of Theorem 3.3 (each pendant line-node must be
entered or left by a jump, except at the two tour ends, and one jump can
serve two pendants) together with the explicit tour built by
:func:`worst_case_tour`.  For even ``n`` this equals ``1.25m − 1`` exactly;
for odd ``n`` it is ``1.25m − 0.5`` (the next integer above the
``1.25m − 2`` tour-cost bound in the paper's proof).

Lemma 3.3 (set-containment universality) and Lemma 3.4 (spatial
realization) make these graphs realizable as actual joins; see
:mod:`repro.sets.realize` and :mod:`repro.geometry.realize`.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.generators import spider_graph
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme


def worst_case_family(n: int) -> BipartiteGraph:
    """``G_n`` of Fig 1(a): star centre ``c``, leaves ``v0..v(n−1)``, and
    pendant left vertices ``w0..w(n−1)``; ``m = 2n`` edges."""
    return spider_graph(n)


def worst_case_effective_cost(n: int) -> int:
    """The exact optimum ``π(G_n) = 2n + ⌈(n − 2)/2⌉``.

    Cross-validated against the exact solver in the test-suite; equals the
    paper's ``1.25m − 1`` for even ``n``.
    """
    if n < 1:
        raise GraphError("family defined for n >= 1")
    m = 2 * n
    extra = max(0, -(-(n - 2) // 2))  # ceil((n-2)/2), clamped at 0
    return m + extra


def worst_case_tour(n: int) -> list[tuple]:
    """An optimal edge tour of ``G_n`` achieving
    :func:`worst_case_effective_cost`.

    Pattern: pair up the arms; for arms ``2i`` and ``2i+1`` walk

        (w_{2i}, v_{2i}), (c, v_{2i}), (c, v_{2i+1}), (w_{2i+1}, v_{2i+1})

    and jump between pairs.  Each 4-edge block covers two pendants with all
    internal steps good, so the jump count is ``⌈n/2⌉ − 1``.
    """
    if n < 1:
        raise GraphError("family defined for n >= 1")
    tour: list[tuple] = []
    arm = 0
    while arm + 1 < n:
        tour.append((f"w{arm}", f"v{arm}"))
        tour.append(("c", f"v{arm}"))
        tour.append(("c", f"v{arm + 1}"))
        tour.append((f"w{arm + 1}", f"v{arm + 1}"))
        arm += 2
    if arm < n:  # odd n: one leftover arm
        tour.append((f"w{arm}", f"v{arm}"))
        tour.append(("c", f"v{arm}"))
    return tour


def worst_case_scheme(n: int) -> PebblingScheme:
    """The optimal scheme corresponding to :func:`worst_case_tour`."""
    return PebblingScheme.from_edge_order(worst_case_family(n), worst_case_tour(n))


def corona_line_graph(n: int) -> Graph:
    """``L(G_n)`` built directly as the corona ``K_n ∘ K_1`` (Fig 1(b)).

    Node naming matches the canonical edge tuples of ``G_n`` so the result
    is vertex-for-vertex identical to ``line_graph(worst_case_family(n))``
    (asserted in tests).
    """
    if n < 1:
        raise GraphError("family defined for n >= 1")
    clique = [("c", f"v{j}") for j in range(n)]
    pendants = [(f"w{j}", f"v{j}") for j in range(n)]
    g = Graph(vertices=clique + pendants)
    for i in range(n):
        for j in range(i + 1, n):
            g.add_edge(clique[i], clique[j])
        g.add_edge(clique[i], pendants[i])
    return g


def is_corona_of_clique(graph: Graph) -> bool:
    """Structural test: is ``graph`` a clique ``K_n`` with exactly one
    pendant attached to each clique node (the Fig 1(b) shape)?"""
    pendants = [v for v in graph.vertices if graph.degree(v) == 1]
    core = [v for v in graph.vertices if graph.degree(v) != 1]
    n = len(core)
    if n == 0 or len(pendants) != n:
        return False
    core_set = set(core)
    attachment_counts = {v: 0 for v in core}
    for p in pendants:
        (anchor,) = graph.neighbors(p)
        if anchor not in core_set:
            return False
        attachment_counts[anchor] += 1
    if any(count != 1 for count in attachment_counts.values()):
        return False
    for v in core:
        # Each core node: n-1 clique neighbours + 1 pendant.
        if graph.degree(v) != n:
            return False
        if (graph.neighbors(v) & core_set) != core_set - {v}:
            return False
    return True


def jump_count_of_family(n: int) -> int:
    """The optimal jump count ``⌈(n − 2)/2⌉`` (0 for n ≤ 2).

    This is ``J`` in the paper's proof of Theorem 3.3 (``J ≥ m/4 − 1``
    rounded to the achievable integer).
    """
    return max(0, -(-(n - 2) // 2))
