"""Lower bounds on pebbling cost.

The paper's Theorem 3.3 lower-bounds the cost of the worst-case family by
counting tour nodes that must be entered or left via bad edges.  This module
generalizes that argument into reusable bounds that the exact solver uses
for pruning and that benchmarks report alongside measured optima.

The central quantity: on each connected component of ``G`` the minimum
number of jumps equals ``(minimum number of vertex-disjoint paths
partitioning L(G)) − 1``.  Any path partition into ``p`` paths uses exactly
``n_L − p`` line-graph edges, and each line-graph node ``x`` can carry at
most ``min(deg(x), 2)`` of them, giving

    p ≥ n_L − ⌊Σ_x min(deg_{L(G)}(x), 2) / 2⌋.

Applied to the corona line graphs of Fig 1 this reproduces Theorem 3.3's
``J ≥ m/4 − 1`` exactly.
"""

from __future__ import annotations

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.line_graph import line_graph
from repro.graphs.simple import Graph

AnyGraph = Graph | BipartiteGraph


def path_partition_lower_bound(line: Graph) -> int:
    """A lower bound on the number of paths in any path partition of
    ``line`` (which must be connected or the bound applies per component).

    Combines two counting arguments and returns the larger:

    - the degree-capacity bound ``n − ⌊Σ min(deg, 2)/2⌋`` described in the
      module docstring;
    - the trivial bound 1.
    """
    n = line.num_vertices
    if n == 0:
        return 0
    capacity = sum(min(line.degree(v), 2) for v in line.vertices) // 2
    return max(1, n - capacity)


def jump_lower_bound(graph: AnyGraph) -> int:
    """A lower bound on the total number of jumps of any scheme for
    ``graph``, summed over connected components.

    Per component ``c``: ``J_c ≥ path_partition_lower_bound(L(c)) − 1``.
    """
    total = 0
    for vertex_set in component_vertex_sets(graph):
        sub = graph.subgraph(vertex_set)
        if sub.num_edges == 0:
            continue
        total += path_partition_lower_bound(line_graph(sub)) - 1
    return total


def effective_cost_lower_bound(graph: AnyGraph) -> int:
    """``π(G) ≥ m + Σ_c (p_lb(c) − 1)``: the edge count plus the jump bound.

    Always at least the trivial bound ``m`` of Lemma 2.3; on the worst-case
    family it reaches ``1.25m − O(1)``, matching Theorem 3.3.
    """
    return graph.num_edges + jump_lower_bound(graph)


def component_deficiency_report(graph: AnyGraph) -> list[dict]:
    """Per-component diagnostics used by the analysis benchmarks.

    Each entry records the component's edge count, the line-graph size, the
    path-partition lower bound, and the implied jump bound.  Useful for
    explaining *why* an instance is hard to pebble.
    """
    report = []
    for vertex_set in component_vertex_sets(graph):
        sub = graph.subgraph(vertex_set)
        if sub.num_edges == 0:
            continue
        line = line_graph(sub)
        p_lb = path_partition_lower_bound(line)
        degree_one = sum(1 for v in line.vertices if line.degree(v) == 1)
        report.append(
            {
                "edges": sub.num_edges,
                "line_nodes": line.num_vertices,
                "line_degree_one_nodes": degree_one,
                "path_partition_lb": p_lb,
                "jump_lb": p_lb - 1,
                "effective_cost_lb": sub.num_edges + p_lb - 1,
            }
        )
    return report


def isolated_line_nodes_bound(line: Graph) -> int:
    """A second path-partition bound: isolated line-graph nodes each need
    their own path, so ``p ≥ #isolated + (1 if anything else remains)``.

    An isolated node of ``L(G)`` is an edge of ``G`` sharing no endpoint
    with any other edge — i.e. a matching edge in its own component.  This
    is how Lemma 2.4's ``π̂ = 2m`` for matchings falls out of the framework.
    """
    isolated = len(line.isolated_vertices())
    rest = line.num_vertices - isolated
    return isolated + (1 if rest else 0)
