"""Search procedure for certified diamond gadgets (Fig 2).

The gadget shipped in :mod:`repro.core.gadgets` was found by the template
search implemented here.  The search space is derived from a Pósa-rotation
argument that sharply constrains any valid gadget:

*Template.*  Fix a Hamiltonian path ``0, 1, …, n−1`` (some Hamiltonian path
must exist, between two corners; relabel along it).  Put corners at
positions ``0, i, j, n−1``.  Then:

- interior corners ``i`` and ``j`` have degree exactly 2 and both their
  edges are backbone edges — so they carry **no** extra edges;
- rotating the path at endpoint corner ``0`` replaces it with a path ending
  at the predecessor of ``0``'s second neighbour; the endpoint property
  forces that predecessor to be a corner, so ``0``'s extra edge must go to
  ``i+1`` or ``j+1`` (and symmetrically ``n−1``'s to ``i−1`` or ``j−1``);
- all remaining extra edges connect central nodes, at most one per node
  (degree cap 3 over the two backbone edges), i.e. they form a matching.

Enumerating this template space (positions × rotation-edge choices ×
central matchings) is feasible for ``n ≤ 13`` and is how
:func:`search_template` works.  Certification of every candidate uses the
exhaustive Hamiltonian machinery of :mod:`repro.graphs.hamiltonian`, so a
returned gadget is correct by construction.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import GadgetError
from repro.graphs.simple import Graph
from repro.core.gadgets import DiamondGadget


def _matchings(items: list) -> Iterator[list[tuple]]:
    """All matchings (including empty and partial) on ``items``."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    yield from _matchings(rest)
    for index, partner in enumerate(rest):
        others = rest[:index] + rest[index + 1 :]
        for matching in _matchings(others):
            yield [(first, partner)] + matching


def template_candidates(n: int) -> Iterator[DiamondGadget]:
    """All template-shaped gadget candidates on ``n`` nodes.

    Yields un-certified :class:`DiamondGadget` objects; the caller filters
    with :meth:`DiamondGadget.certify`.
    """
    if n < 6:
        raise GadgetError("template needs at least 6 nodes")
    for i in range(2, n - 3):
        for j in range(i + 2, n - 2):
            corners = (0, i, j, n - 1)
            centrals = [v for v in range(1, n - 1) if v not in (i, j)]
            for a_target in (i + 1, j + 1):
                for b_target in (i - 1, j - 1):
                    if a_target >= n - 1 or b_target <= 0:
                        continue
                    if a_target == b_target:
                        continue  # that central would reach degree 4
                    base = Graph(vertices=range(n))
                    for v in range(n - 1):
                        base.add_edge(v, v + 1)
                    base.add_edge(0, a_target)
                    base.add_edge(n - 1, b_target)
                    free = [v for v in centrals if v not in (a_target, b_target)]
                    for extra in _matchings(free):
                        if any(abs(u - v) == 1 for u, v in extra):
                            continue  # backbone edges already exist
                        graph = base.copy()
                        for u, v in extra:
                            graph.add_edge(u, v)
                        yield DiamondGadget(graph, corners)


def search_template(
    sizes: tuple[int, ...] = (10, 11, 12, 13),
    require_full: bool = True,
) -> DiamondGadget:
    """Find a certified gadget by exhausting the template space.

    With ``require_full=True`` (default) only gadgets satisfying all three
    Fig-2 properties are accepted; raises
    :class:`~repro.errors.GadgetError` if the searched sizes contain none.
    """
    best: DiamondGadget | None = None
    for n in sizes:
        for candidate in template_candidates(n):
            certificate = candidate.certify()
            if certificate.full:
                return candidate
            if not require_full and certificate.degree_ok and certificate.corner_pairs_ok:
                best = best or candidate
    if best is not None:
        return best
    raise GadgetError(f"no certified gadget in template sizes {sizes}")
