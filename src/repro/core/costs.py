"""Cost bounds and perfect-pebbling predicates (paper §2.1).

The numeric facts implemented here:

- Lemma 2.1: for any graph with ``m`` edges, ``π̂(G) ≤ 2m``; a connected
  graph additionally has ``π̂(G) ≥ m + 1``.
- Corollary 2.1 / Lemma 2.3: ``m ≤ π(G) ≤ 2m − 1`` (effective cost).
- Definition 2.3: ``G`` has a *perfect* pebbling scheme iff ``π(G) = m``.
- Theorem 3.1: a *connected* graph satisfies ``π(G) ≤ 1.25m`` and the paper's
  worst-case family shows ``1.25m − 1`` is attained, so the connected upper
  bound used throughout is ``⌊1.25m⌋``.
"""

from __future__ import annotations

import math

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import betti_number, component_vertex_sets
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme

AnyGraph = Graph | BipartiteGraph


def perfect_cost(graph: AnyGraph) -> int:
    """The effective cost of a perfect scheme: ``m`` (Def 2.3)."""
    return graph.num_edges


def is_perfect_scheme(graph: AnyGraph, scheme: PebblingScheme) -> bool:
    """True iff ``scheme`` is valid for ``graph`` and achieves ``π = m``."""
    return scheme.is_valid(graph) and scheme.effective_cost(graph) == graph.num_edges


def effective_cost_bounds(graph: AnyGraph) -> tuple[int, int]:
    """The (lower, upper) bounds on ``π(G)`` from the paper's §2–3.

    Lower bound: ``m`` (every move deletes at most one edge).  Upper bound:
    summed per connected component ``c``: ``⌊1.25 · m_c⌋`` by Theorem 3.1
    (each component is pebbled independently by Lemma 2.2).  For a graph
    with no edges both bounds are 0.
    """
    m = graph.num_edges
    if m == 0:
        return (0, 0)
    upper = 0
    for vertex_set in component_vertex_sets(graph):
        sub = graph.subgraph(vertex_set)
        mc = sub.num_edges
        if mc:
            upper += math.floor(1.25 * mc)
    return (m, upper)


def naive_cost_bounds(graph: AnyGraph) -> tuple[int, int]:
    """The coarse bounds of Lemma 2.3: ``m ≤ π(G) ≤ 2m − 1``.

    These hold for *any* scheme-producing strategy (at most two moves per
    deleted edge); Theorem 3.1 tightens the upper bound to 1.25m — see
    :func:`effective_cost_bounds`.
    """
    m = graph.num_edges
    if m == 0:
        return (0, 0)
    return (m, 2 * m - 1)


def raw_cost_bounds(graph: AnyGraph) -> tuple[int, int]:
    """Bounds on the raw cost ``π̂(G)`` (Lemma 2.1 with Def 2.2).

    ``π̂ = π + β₀``, so the bounds are the effective bounds shifted by the
    Betti number.
    """
    lower, upper = effective_cost_bounds(graph)
    beta = betti_number(graph)
    return (lower + beta, upper + beta)


def matching_raw_cost(m: int) -> int:
    """``π̂`` of a matching with ``m`` edges: exactly ``2m`` (Lemma 2.4)."""
    return 2 * m


def effective_cost_of_edge_order(edge_order: list[tuple], beta0: int = 1) -> int:
    """``π`` of the scheme visiting the given edges in order.

    The raw cost of an edge order is ``π̂ = m + 1 + J`` where ``J`` counts
    consecutive pairs sharing no endpoint, so ``π = m + 1 + J − β₀`` — this
    is the identity behind Proposition 2.2.  ``beta0`` defaults to 1 (the
    connected case, where ``π = m + J``); pass the graph's Betti number for
    disconnected graphs.
    """
    if not edge_order:
        return 0
    jumps = sum(
        1
        for previous, current in zip(edge_order, edge_order[1:])
        if not set(previous) & set(current)
    )
    return len(edge_order) + 1 + jumps - beta0
