"""Serialization of pebbling schemes.

A text format mirroring :mod:`repro.graphs.io`: one configuration per
line, so solved schemes can be saved, diffed, and replayed later (the CLI
``pebble --save`` path uses this).

.. code-block:: text

    # pebbling-scheme
    C u0 v0
    C u0 v1
    C u1 v1

Vertex names are written with ``str`` and restored as strings, matching
the graph text format's convention.
"""

from __future__ import annotations

from repro.errors import SchemeError
from repro.core.scheme import PebblingScheme


def dump_scheme(scheme: PebblingScheme) -> str:
    """Serialize a scheme; inverse of :func:`load_scheme`."""
    lines = ["# pebbling-scheme"]
    for a, b in scheme.configurations:
        text_a, text_b = str(a), str(b)
        if " " in text_a or " " in text_b:
            raise SchemeError("vertex names with spaces cannot be serialized")
        lines.append(f"C {text_a} {text_b}")
    return "\n".join(lines) + "\n"


def load_scheme(text: str) -> PebblingScheme:
    """Parse the output of :func:`dump_scheme`."""
    configs = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        tag, *fields = line.split()
        if tag != "C" or len(fields) != 2:
            raise SchemeError(f"line {lineno}: expected 'C <a> <b>'")
        configs.append((fields[0], fields[1]))
    return PebblingScheme(configs)
