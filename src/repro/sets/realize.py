"""Lemma 3.3: set-containment joins are universal.

"Given any bipartite graph G = (R, S, E), there is an instance of the set
containment join problem such that G is its join graph."  The construction
is the paper's: left vertex ``r_i`` becomes the singleton ``{i}``; right
vertex ``s_j`` becomes ``{i : (r_i, s_j) ∈ E}``.  Then ``{i} ⊆ s_j`` holds
exactly on the edges of ``G``.

One paper subtlety handled explicitly: a left vertex of degree 0 would be a
singleton contained in nothing, and a right vertex of degree 0 an empty
set — but an *empty left set* would be contained in everything, which is
why the construction keeps left sets non-empty singletons.  Isolated
vertices are fine (they are removed a priori by the model anyway), but two
*identical* right neighborhoods simply yield duplicate set values, which
multiset relations represent faithfully.
"""

from __future__ import annotations

from repro.graphs.bipartite import BipartiteGraph
from repro.relations.relation import Relation


def realize_bipartite_as_containment(
    graph: BipartiteGraph,
) -> tuple[Relation, Relation]:
    """Build ``(R, S)`` whose containment join graph is exactly ``graph``.

    Vertex order is preserved: ``TupleRef("R", i)`` corresponds to
    ``graph.left[i]`` and ``TupleRef("S", j)`` to ``graph.right[j]``, so
    the join graph produced by
    :func:`repro.joins.join_graph.build_join_graph` is isomorphic to
    ``graph`` under the positional mapping (tests verify this).
    """
    lefts = graph.left
    left_index = {v: i for i, v in enumerate(lefts)}
    r_values = [frozenset([i]) for i in range(len(lefts))]
    s_values = [
        frozenset(left_index[u] for u in graph.neighbors(v))
        for v in graph.right
    ]
    return Relation("R", r_values), Relation("S", s_values)


def realize_worst_case_containment(n: int) -> tuple[Relation, Relation]:
    """The Fig 1(a) family realized as a containment join (Lemma 3.3 applied
    to Theorem 3.3's graphs): the instances witnessing that containment
    joins *attain* the 1.25m − 1 pebbling worst case."""
    from repro.core.families import worst_case_family

    return realize_bipartite_as_containment(worst_case_family(n))
