"""Set-valued substrate for set-containment joins.

Provides set-value helpers, superimposed-coding signatures (the classic
filter for containment joins — Helmer–Moerkotte; Ramasamy et al., the
paper's references [5, 14]), an inverted index on set elements, and the
Lemma 3.3 universality construction: *every* bipartite graph is the join
graph of some set-containment instance.
"""

from repro.sets.setvalue import contains, overlaps
from repro.sets.signatures import Signature, SignatureScheme
from repro.sets.inverted import InvertedIndex
from repro.sets.realize import realize_bipartite_as_containment

__all__ = [
    "contains",
    "overlaps",
    "Signature",
    "SignatureScheme",
    "InvertedIndex",
    "realize_bipartite_as_containment",
]
