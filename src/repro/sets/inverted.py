"""An inverted index on set elements.

The other classic containment-join access path (Ramasamy et al., the
paper's [14]): index the *right* relation by element; a left set ``A``
joins exactly the right tuples appearing in the posting lists of **all**
elements of ``A`` (an intersection of postings).  Empty ``A`` joins
everything — the ⊆ predicate is vacuously true.
"""

from __future__ import annotations

from typing import AbstractSet, Any, Hashable

from repro.errors import PredicateError


class InvertedIndex:
    """Element → posting-list index over ``(payload, set_value)`` entries.

    Example
    -------
    >>> idx = InvertedIndex([("s0", {1, 2}), ("s1", {2, 3})])
    >>> sorted(idx.superset_candidates({2}))
    ['s0', 's1']
    >>> sorted(idx.superset_candidates({1, 2}))
    ['s0']
    """

    def __init__(self, entries: list[tuple[Any, AbstractSet[Hashable]]] = ()) -> None:
        self._postings: dict[Hashable, set[Any]] = {}
        self._all_payloads: list[Any] = []
        for payload, value in entries:
            self.add(payload, value)

    def add(self, payload: Any, value: AbstractSet[Hashable]) -> None:
        if not isinstance(value, (set, frozenset)):
            raise PredicateError(f"{value!r} is not a set")
        self._all_payloads.append(payload)
        for element in value:
            self._postings.setdefault(element, set()).add(payload)

    @property
    def num_entries(self) -> int:
        return len(self._all_payloads)

    @property
    def num_elements(self) -> int:
        return len(self._postings)

    def postings(self, element: Hashable) -> set[Any]:
        """The payload set containing ``element`` (empty if unseen)."""
        return set(self._postings.get(element, ()))

    def superset_candidates(self, query: AbstractSet[Hashable]) -> list[Any]:
        """Payloads whose set contains *all* elements of ``query``.

        Exact (no verification needed): intersects posting lists smallest
        first.  An empty query matches every entry.
        """
        if not isinstance(query, (set, frozenset)):
            raise PredicateError(f"{query!r} is not a set")
        if not query:
            return list(self._all_payloads)
        lists = []
        for element in query:
            posting = self._postings.get(element)
            if not posting:
                return []
            lists.append(posting)
        lists.sort(key=len)
        result = set(lists[0])
        for posting in lists[1:]:
            result &= posting
            if not result:
                return []
        return sorted(result, key=repr)
