"""Superimposed-coding signatures for containment filtering.

The standard pre-filter of main-memory containment joins (Helmer–Moerkotte,
the paper's [5]): hash every element to ``k`` bit positions in a ``b``-bit
word; a set's signature is the OR of its elements' codes.  Then
``sig(A) & ~sig(B) == 0`` is necessary for ``A ⊆ B`` — signatures can
produce false positives but never false negatives, so the verify step only
runs on surviving pairs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import AbstractSet, Any

from repro.errors import PredicateError


@dataclass(frozen=True)
class Signature:
    """A fixed-width bit signature."""

    bits: int
    width: int

    def covers(self, other: "Signature") -> bool:
        """Necessary condition for *other's set* ⊆ *this signature's set*…

        …is the wrong way around to remember, so use the scheme helper
        :meth:`SignatureScheme.may_contain` instead; this low-level test is
        ``other.bits ⊆ self.bits``.
        """
        if self.width != other.width:
            raise PredicateError("signatures of different widths")
        return other.bits & ~self.bits == 0


class SignatureScheme:
    """A hashing scheme: ``width`` bits, ``k`` probes per element.

    Deterministic across runs (uses blake2b of the element repr), so test
    expectations are stable.

    Example
    -------
    >>> scheme = SignatureScheme(width=64, probes=2)
    >>> a = scheme.signature({1, 2})
    >>> b = scheme.signature({1, 2, 3})
    >>> scheme.may_contain(a, b)   # {1,2} ⊆ {1,2,3}: must pass
    True
    """

    def __init__(self, width: int = 64, probes: int = 2) -> None:
        if width < 1 or probes < 1:
            raise PredicateError("width and probes must be positive")
        self.width = width
        self.probes = probes

    def element_code(self, element: Any) -> int:
        """The ``k``-bit superimposed code of one element."""
        code = 0
        for probe in range(self.probes):
            digest = hashlib.blake2b(
                f"{probe}:{element!r}".encode(), digest_size=8
            ).digest()
            position = int.from_bytes(digest, "big") % self.width
            code |= 1 << position
        return code

    def signature(self, value: AbstractSet[Any]) -> Signature:
        """The OR of the element codes."""
        if not isinstance(value, (set, frozenset)):
            raise PredicateError(f"{value!r} is not a set")
        bits = 0
        for element in value:
            bits |= self.element_code(element)
        return Signature(bits, self.width)

    def may_contain(self, left: Signature, right: Signature) -> bool:
        """Signature test for ``left_set ⊆ right_set``.

        True is a *maybe* (verify on the real sets); False is definitive.
        """
        if left.width != right.width:
            raise PredicateError("signatures of different widths")
        return left.bits & ~right.bits == 0

    def false_positive_probability(self, left_size: int, right_size: int) -> float:
        """Rough FP probability of the containment test for random sets.

        Standard Bloom-style estimate: the right signature has roughly
        ``width · (1 − (1 − 1/width)^(probes · right_size))`` bits set; the
        test passes spuriously when all ``probes · left_size`` left bits
        land on set positions.
        """
        fill = 1.0 - (1.0 - 1.0 / self.width) ** (self.probes * right_size)
        return fill ** (self.probes * left_size)
