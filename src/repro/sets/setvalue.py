"""Set-value predicates.

Set-containment joins use ``r.A ⊆ s.B`` (paper §2: "r.A ⊆ s.B"); the
set-overlap variant ``r.A ∩ s.B ≠ ∅`` is also provided as an extension.
Values are ``set`` or ``frozenset`` of hashable elements.
"""

from __future__ import annotations

from typing import AbstractSet, Any

from repro.errors import PredicateError

SetValue = AbstractSet[Any]


def _require_set(value: Any, side: str) -> SetValue:
    if not isinstance(value, (set, frozenset)):
        raise PredicateError(f"{side} value {value!r} is not a set")
    return value


def contains(left: Any, right: Any) -> bool:
    """The containment predicate: ``left ⊆ right``.

    Following the paper's direction, a tuple of ``R`` joins a tuple of ``S``
    when the *left* set is contained in the *right* set.
    """
    return _require_set(left, "left") <= _require_set(right, "right")


def overlaps(left: Any, right: Any) -> bool:
    """The set-overlap predicate: ``left ∩ right ≠ ∅``."""
    return bool(_require_set(left, "left") & _require_set(right, "right"))


def universe_of(values) -> frozenset:
    """The union of all set values (the element universe of a column)."""
    out: set = set()
    for value in values:
        out |= _require_set(value, "column")
    return frozenset(out)


def containment_stats(left_values, right_values) -> dict:
    """Quick selectivity statistics for a containment join input.

    Used by workloads and examples to report how dense an instance is.
    """
    pairs = 0
    matches = 0
    for a in left_values:
        for b in right_values:
            pairs += 1
            if contains(a, b):
                matches += 1
    return {
        "pairs": pairs,
        "matches": matches,
        "selectivity": matches / pairs if pairs else 0.0,
    }
