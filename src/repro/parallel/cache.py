"""The solve cache: fingerprint-keyed reuse of pebbling answers.

Re-solving an identical component pays full exponential cost every time;
this module makes the second solve O(lookup).  Entries are keyed by

    ``<component fingerprint> : <method> : <options digest>``

(:mod:`repro.parallel.fingerprint` defines the structural fingerprint;
the options digest covers the solver options that can change the answer,
e.g. ``seed`` for annealing or ``node_budget`` for exact search).

Two tiers:

- an **in-memory LRU** (default 1024 entries) — always on, per-process;
- an optional **SQLite persistent tier** — survives the process, shares
  the storage idiom of :mod:`repro.obs.registry` (one small schema, the
  database is a cache and never a source of truth: deleting it loses
  nothing but warm-start time).

Only *clean* results are cached: status ``optimal`` or ``complete``, no
degradation-ladder steps.  A budget-truncated answer reflects that run's
budget, not the instance, so it is never served to a future caller.

Lookups and stores are observable (``cache.hit`` / ``cache.miss`` events,
``parallel.cache.*`` counters) and installation is ambient and scoped:
:func:`use_cache` mirrors :func:`repro.runtime.budget.use_budget`, so the
CLI threads one cache through bench scenarios without changing solver
signatures.  No cache installed means byte-for-byte legacy behaviour.
"""

from __future__ import annotations

import contextlib
import json
import sqlite3
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterator

from repro.core.scheme import PebblingScheme
from repro.core.solvers.registry import SolveResult
from repro.errors import SchemeError
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.parallel.fingerprint import (
    AnyGraph,
    CanonicalForm,
    canonical_form,
    decode_scheme,
    encode_scheme,
)
from repro.runtime.anytime import STATUS_COMPLETE, STATUS_OPTIMAL
from repro.runtime.retry import RetryPolicy

CACHE_SCHEMA = "repro-solve-cache/v1"

DEFAULT_CAPACITY = 1024

# Statuses a cached entry may carry; anything else is a budget artifact.
CACHEABLE_STATUSES = (STATUS_OPTIMAL, STATUS_COMPLETE)

_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS solve_cache (
    key TEXT PRIMARY KEY,
    fingerprint TEXT NOT NULL,
    method TEXT NOT NULL,
    payload TEXT NOT NULL,
    created_unix REAL NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_solve_cache_fingerprint
    ON solve_cache (fingerprint);
"""


@dataclass(frozen=True)
class CacheEntry:
    """One cached solve, label-free (scheme stored as index pairs)."""

    method: str
    optimal: bool
    status: str
    raw_cost: int
    jumps: int
    scheme: tuple[tuple[int, int], ...]

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": CACHE_SCHEMA,
            "method": self.method,
            "optimal": self.optimal,
            "status": self.status,
            "raw_cost": self.raw_cost,
            "jumps": self.jumps,
            "scheme": [list(pair) for pair in self.scheme],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "CacheEntry":
        return cls(
            method=payload["method"],
            optimal=bool(payload["optimal"]),
            status=payload["status"],
            raw_cost=int(payload["raw_cost"]),
            jumps=int(payload["jumps"]),
            scheme=tuple((int(i), int(j)) for i, j in payload["scheme"]),
        )


@dataclass(frozen=True)
class CacheToken:
    """Everything a post-solve ``store`` needs from the pre-solve lookup,
    so the canonical form is computed once per solve, not twice."""

    key: str
    form: CanonicalForm
    graph: AnyGraph


def options_digest(options: dict[str, Any]) -> str:
    """A deterministic digest of the solver options that shape answers.

    Budget options never reach here (the registry strips them first);
    whatever remains (``seed``, ``steps``, ``node_budget``,
    ``exact_edge_limit``, …) is folded into the key so distinct
    configurations never collide.
    """
    if not options:
        return "-"
    return ",".join(f"{k}={options[k]!r}" for k in sorted(options))


def cache_key(form: CanonicalForm, method: str, options: dict[str, Any]) -> str:
    return f"{form.fingerprint}:{method}:{options_digest(options)}"


def entry_from_result(
    result: SolveResult, form: CanonicalForm
) -> CacheEntry | None:
    """Convert a solve result into a cacheable entry, or ``None`` when
    the result must not be cached (degraded, or scheme not encodable)."""
    if result.status not in CACHEABLE_STATUSES:
        return None
    if result.provenance is not None and result.provenance.degradations:
        return None
    try:
        encoded = encode_scheme(result.scheme, form)
    except SchemeError:
        return None
    return CacheEntry(
        method=result.method,
        optimal=result.optimal,
        status=result.status,
        raw_cost=result.raw_cost,
        jumps=result.jumps,
        scheme=encoded,
    )


def result_from_entry(
    entry: CacheEntry, graph: AnyGraph, form: CanonicalForm
) -> SolveResult:
    """Rehydrate a cached entry against ``graph`` (same fingerprint)."""
    scheme = decode_scheme(entry.scheme, form)
    working = graph.without_isolated_vertices()
    return SolveResult(
        scheme=scheme,
        method=entry.method,
        effective_cost=scheme.effective_cost(working),
        raw_cost=entry.raw_cost,
        jumps=entry.jumps,
        optimal=entry.optimal,
        status=entry.status,
    )


class LRUCache:
    """The in-memory tier: a plain bounded LRU over entry payloads."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: str) -> CacheEntry | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        self._entries[key] = entry
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)


# Concurrent-access posture of the persistent tier.  A long-lived server
# has many threads/processes sharing one cache file, so the tier must
# tolerate SQLITE_BUSY instead of assuming one short-lived writer.
DEFAULT_BUSY_TIMEOUT = 5.0

# Lock-contention retries follow the shared runtime policy (bounded
# exponential backoff, jitter-free so the curve is exact in tests); the
# controller binds to the *ambient* budget, so a request already out of
# deadline never sleeps on a locked cache — it degrades to a miss now.
LOCKED_RETRY_POLICY = RetryPolicy(
    max_attempts=4, base_delay=0.01, multiplier=2.0, max_delay=0.25, jitter=0.0
)
RETRY_SITE_LOCKED = "cache.sqlite_locked"


def _is_locked(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


class SQLiteCacheTier:
    """The persistent tier: one table, fsync'd by SQLite itself.

    Follows the :mod:`repro.obs.registry` storage pattern — tiny explicit
    schema, ``:memory:`` supported for tests, the file is disposable.

    Hardened for concurrent access from a long-lived server: the
    connection opens in **WAL mode** with a busy timeout (readers never
    block writers and vice versa), it is shared across threads
    (``check_same_thread=False`` — the server consults from its event
    loop and helper threads), and every get/put retries
    ``SQLITE_BUSY``/``SQLITE_LOCKED`` under the shared
    :data:`LOCKED_RETRY_POLICY` (:mod:`repro.runtime.retry`), bounded by
    the ambient budget's deadline.  A read that stays locked degrades to
    a **miss**; a write that stays locked is **dropped** (and counted) —
    the tier is a cache, losing an entry loses warm-start time, never
    correctness.
    """

    def __init__(
        self,
        path: str | Path = ":memory:",
        busy_timeout: float = DEFAULT_BUSY_TIMEOUT,
    ) -> None:
        self.path = str(path)
        if self.path != ":memory:":
            parent = Path(self.path).resolve().parent
            parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            self.path, timeout=busy_timeout, check_same_thread=False
        )
        self._conn.execute(f"PRAGMA busy_timeout = {int(busy_timeout * 1000)}")
        if self.path != ":memory:":
            # WAL lets concurrent readers proceed under a writer; NORMAL
            # sync is safe with WAL and halves fsyncs on the hot path.
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(_SCHEMA_SQL)

    def close(self) -> None:
        self._conn.close()

    def _with_locked_retry(self, operation):
        """Run ``operation`` under :data:`LOCKED_RETRY_POLICY` retries on
        lock contention.

        Returns ``(value, succeeded)``; ``succeeded`` is False only when
        the policy gave up — attempts exhausted *or* the ambient budget's
        deadline would be outlived by the next sleep.  Giving up is never
        an error here: a read becomes a miss, a write is dropped.
        """
        controller = LOCKED_RETRY_POLICY.controller(RETRY_SITE_LOCKED)
        while True:
            try:
                return operation(), True
            except sqlite3.OperationalError as exc:
                if not _is_locked(exc):
                    raise
                delay = controller.next_delay(reason=type(exc).__name__)
                if delay is None:
                    if obs_metrics.METRICS.enabled:
                        obs_metrics.inc("parallel.cache.locked_giveups")
                    return None, False
                if obs_metrics.METRICS.enabled:
                    obs_metrics.inc("parallel.cache.locked_retries")
                time.sleep(delay)

    def get(self, key: str) -> CacheEntry | None:
        def _read():
            return self._conn.execute(
                "SELECT payload FROM solve_cache WHERE key = ?", (key,)
            ).fetchone()

        row, _ok = self._with_locked_retry(_read)
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
            return CacheEntry.from_dict(payload)
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            # A corrupt row is a miss, never a crash: the tier is a cache.
            return None

    def put(self, key: str, fingerprint: str, entry: CacheEntry) -> None:
        def _write():
            self._conn.execute(
                "INSERT OR REPLACE INTO solve_cache "
                "(key, fingerprint, method, payload, created_unix) "
                "VALUES (?, ?, ?, ?, ?)",
                (
                    key,
                    fingerprint,
                    entry.method,
                    json.dumps(entry.as_dict(), sort_keys=True),
                    time.time(),
                ),
            )
            self._conn.commit()

        self._with_locked_retry(_write)

    def __len__(self) -> int:
        row = self._conn.execute("SELECT COUNT(*) FROM solve_cache").fetchone()
        return int(row[0])


@dataclass
class CacheStats:
    """Hit/miss/store counts, split by serving tier."""

    memory_hits: int = 0
    persistent_hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def hits(self) -> int:
        return self.memory_hits + self.persistent_hits

    def as_dict(self) -> dict[str, int]:
        return {
            "memory_hits": self.memory_hits,
            "persistent_hits": self.persistent_hits,
            "misses": self.misses,
            "stores": self.stores,
        }


class SolveCache:
    """The two-tier solve cache the registry and the pool consult.

    ``consult`` returns ``(hit_or_None, token)``; a later ``store(token,
    result)`` records a clean result under the same key.  Hits found only
    in the persistent tier are promoted into memory.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        path: str | Path | None = None,
    ) -> None:
        self.memory = LRUCache(capacity)
        self.persistent = SQLiteCacheTier(path) if path is not None else None
        self.stats = CacheStats()
        # One instance may be shared by a server's event loop and helper
        # threads; the lock keeps the LRU's read-modify-write sequences
        # and the stats counters coherent (SQLite has its own handling).
        self._lock = threading.Lock()

    def close(self) -> None:
        if self.persistent is not None:
            self.persistent.close()

    def __enter__(self) -> "SolveCache":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the consult/store pair the registry calls ---------------------
    def consult(
        self, graph: AnyGraph, method: str, options: dict[str, Any]
    ) -> tuple[SolveResult | None, CacheToken]:
        form = canonical_form(graph.without_isolated_vertices())
        key = cache_key(form, method, options)
        token = CacheToken(key=key, form=form, graph=graph)
        tier = "memory"
        with self._lock:
            entry = self.memory.get(key)
        if entry is None and self.persistent is not None:
            entry = self.persistent.get(key)
            tier = "persistent"
            if entry is not None:
                with self._lock:
                    self.memory.put(key, entry)
        if entry is None:
            with self._lock:
                self.stats.misses += 1
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("parallel.cache.misses")
            if obs_events.EVENTS.enabled:
                obs_events.emit(
                    obs_events.EVENT_CACHE_MISS,
                    fingerprint=form.fingerprint[:12],
                    method=method,
                )
            return None, token
        with self._lock:
            if tier == "memory":
                self.stats.memory_hits += 1
            else:
                self.stats.persistent_hits += 1
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("parallel.cache.hits")
            obs_metrics.inc(f"parallel.cache.hits.{tier}")
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_CACHE_HIT,
                fingerprint=form.fingerprint[:12],
                method=method,
                tier=tier,
            )
        return result_from_entry(entry, graph, form), token

    def store(self, token: CacheToken, result: SolveResult) -> bool:
        """Record ``result`` under ``token``; True when actually cached."""
        entry = entry_from_result(result, token.form)
        if entry is None:
            return False
        with self._lock:
            self.memory.put(token.key, entry)
        if self.persistent is not None:
            self.persistent.put(token.key, token.form.fingerprint, entry)
        with self._lock:
            self.stats.stores += 1
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("parallel.cache.stores")
        return True


# -- ambient cache stack ----------------------------------------------------
#
# Mirrors repro.runtime.budget's ambient stack with one twist:
# ``use_cache(None)`` *masks* any outer cache (pushes an explicit None),
# which is how solve_many keeps its per-component solves from re-consulting
# the cache it already consulted.

_CACHE_STACK: list[SolveCache | None] = []


def current_cache() -> SolveCache | None:
    """The innermost ambient cache installed by :func:`use_cache`."""
    return _CACHE_STACK[-1] if _CACHE_STACK else None


@contextlib.contextmanager
def use_cache(cache: SolveCache | None) -> Iterator[SolveCache | None]:
    """Install ``cache`` as the ambient solve cache for the ``with`` body.

    ``None`` is an explicit mask: inside the body, :func:`current_cache`
    returns ``None`` even when an outer cache is installed.
    """
    _CACHE_STACK.append(cache)
    try:
        yield cache
    finally:
        _CACHE_STACK.pop()


def _reset_ambient_cache() -> None:
    """Drop any inherited ambient cache (worker-process prologue: a forked
    child must not reuse the parent's SQLite connection)."""
    _CACHE_STACK.clear()


def default_cache_path(root: str | Path = ".") -> Path:
    """The conventional on-disk location for a persistent solve cache."""
    return Path(root) / ".solve-cache.db"


__all__ = [
    "CACHEABLE_STATUSES",
    "CacheEntry",
    "CacheStats",
    "CacheToken",
    "LOCKED_RETRY_POLICY",
    "LRUCache",
    "SQLiteCacheTier",
    "SolveCache",
    "cache_key",
    "current_cache",
    "default_cache_path",
    "entry_from_result",
    "options_digest",
    "result_from_entry",
    "use_cache",
]
