"""Canonical component fingerprints: the solve cache's keys.

A cached answer may only be reused when the new instance is *structurally
identical* to the one that produced it.  This module defines the
structural identity the cache relies on:

- vertices are put in a **canonical order** — left side then right side
  for bipartite graphs, each side sorted by ``repr`` (the same
  deterministic ordering trick :mod:`repro.core.solvers.held_karp` uses);
- edges become index pairs under that order, sorted — the **canonical
  edge list**;
- the fingerprint is the SHA-256 of a type tag, the side sizes, and the
  canonical edge list.

Two graphs with the same fingerprint have identical edge structure under
their respective canonical vertex orders, so a pebbling scheme recorded
as *index pairs* against one graph rehydrates into a valid scheme of the
other with identical cost, jumps, and status — labels differ, structure
does not.  This is what lets repeated components (the worst-case family
``G_n`` duplicated across a batch, say) be solved once and reused.

Vertex labels never enter the fingerprint, only their relative order, so
the cache hits across relabelings as long as ``repr`` ordering is
preserved — which every deterministic generator in this repo guarantees.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.errors import SchemeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph, Vertex
from repro.core.scheme import PebblingScheme

AnyGraph = Graph | BipartiteGraph

IndexPair = tuple[int, int]


@dataclass(frozen=True)
class CanonicalForm:
    """A graph reduced to structure: ordered vertices + index edges.

    ``vertices`` is the canonical vertex order (the decode table for
    index-encoded schemes); ``left_size`` is the bipartite split point
    (0 for general graphs); ``edges`` is the sorted canonical edge list.
    """

    kind: str  # "bipartite" | "graph"
    vertices: tuple[Vertex, ...]
    left_size: int
    edges: tuple[IndexPair, ...]

    @property
    def fingerprint(self) -> str:
        """SHA-256 over the structural content (hex digest)."""
        payload = "|".join(
            (
                self.kind,
                str(self.left_size),
                str(len(self.vertices)),
                ";".join(f"{u},{v}" for u, v in self.edges),
            )
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def canonical_form(graph: AnyGraph) -> CanonicalForm:
    """The canonical form of ``graph`` (see the module docstring)."""
    if isinstance(graph, BipartiteGraph):
        left = sorted(graph.left, key=repr)
        right = sorted(graph.right, key=repr)
        vertices = tuple(left) + tuple(right)
        index = {v: i for i, v in enumerate(vertices)}
        edges = tuple(sorted((index[u], index[v]) for u, v in graph.edges()))
        return CanonicalForm(
            kind="bipartite",
            vertices=vertices,
            left_size=len(left),
            edges=edges,
        )
    vertices = tuple(sorted(graph.vertices, key=repr))
    index = {v: i for i, v in enumerate(vertices)}
    edges = tuple(
        sorted(tuple(sorted((index[u], index[v]))) for u, v in graph.edges())
    )
    return CanonicalForm(
        kind="graph", vertices=vertices, left_size=0, edges=edges
    )


def fingerprint(graph: AnyGraph) -> str:
    """Shorthand for ``canonical_form(graph).fingerprint``."""
    return canonical_form(graph).fingerprint


def encode_scheme(
    scheme: PebblingScheme, form: CanonicalForm
) -> tuple[IndexPair, ...]:
    """A scheme as index pairs under ``form``'s canonical vertex order.

    Raises :class:`~repro.errors.SchemeError` when a configuration
    references a vertex outside the form (such schemes are not cacheable).
    """
    index = {v: i for i, v in enumerate(form.vertices)}
    encoded = []
    for a, b in scheme.configurations:
        if a not in index or b not in index:
            raise SchemeError(
                f"configuration ({a!r}, {b!r}) references vertices outside "
                "the canonical form; scheme is not cacheable"
            )
        encoded.append((index[a], index[b]))
    return tuple(encoded)


def decode_scheme(
    encoded: tuple[IndexPair, ...] | list, form: CanonicalForm
) -> PebblingScheme:
    """Rehydrate an index-encoded scheme against ``form``'s vertex order."""
    vertices = form.vertices
    return PebblingScheme((vertices[i], vertices[j]) for i, j in encoded)
