"""``solve_many``: the parallel, cache-aware batch solve service.

Lemma 2.2 (additivity) is what makes this safe: the components of a join
graph are pebbled independently and their costs add, so per-component
work can fan out across processes and reassemble without changing any
answer.  The pipeline per batch:

1. **decompose** — every input graph is split into connected components
   (isolated vertices dropped first, matching the paper's convention);
2. **dedupe + cache** — each component is fingerprinted
   (:mod:`repro.parallel.fingerprint`); structurally identical
   components collapse into one task, and an installed
   :class:`~repro.parallel.cache.SolveCache` is consulted per unique
   fingerprint;
3. **fan out** — remaining tasks run on a ``ProcessPoolExecutor``
   (``jobs`` workers; ``jobs=1`` solves inline with identical code
   paths), each worker shipping its metrics/events home for merging
   (:mod:`repro.parallel.pool`);
4. **reassemble** — per input graph, component schemes are stitched in
   canonical component order; costs add per Lemma 2.2 (the stitched
   scheme's cost *equals* the sum of component costs, which
   :meth:`~repro.core.scheme.PebblingScheme.cost` re-derives), statuses
   merge to the most degraded, provenance is pooled.

Results are **deterministic in the job count**: ``jobs=4`` returns
byte-identical costs, schemes, and statuses to ``jobs=1``, because task
order, reassembly order, and counter merging are all fixed by input
order, never completion order.

Budgets survive the pool cooperatively: a ``deadline=`` for the whole
batch is split evenly across dispatch *waves* (``ceil(tasks / jobs)``
of them), so every worker solve gets an enforceable share and the batch
still lands inside the overall deadline.  Budget objects themselves
never cross the process boundary — only plain numbers do.
"""

from __future__ import annotations

import contextlib
import math
from dataclasses import replace
from typing import Any, Sequence

from repro.core.scheme import PebblingScheme
from repro.core.solvers.registry import METHODS, SolveResult, solve
from repro.errors import SolverError
from repro.graphs.components import component_vertex_sets
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel import pool as pool_mod
from repro.parallel.cache import (
    CacheToken,
    SolveCache,
    cache_key,
    current_cache,
    use_cache,
)
from repro.parallel.fingerprint import (
    CanonicalForm,
    canonical_form,
    decode_scheme,
    encode_scheme,
)
from repro.parallel.pool import SolveTask
from repro.runtime.anytime import (
    STATUS_BUDGET_EXHAUSTED,
    STATUS_COMPLETE,
    STATUS_OPTIMAL,
    STATUS_TIMED_OUT,
    SolveProvenance,
)

AnyGraph = pool_mod.AnyGraph

# Most-degraded-wins ordering for merging per-component statuses.
_STATUS_SEVERITY = {
    STATUS_OPTIMAL: 0,
    STATUS_COMPLETE: 1,
    STATUS_BUDGET_EXHAUSTED: 2,
    STATUS_TIMED_OUT: 3,
}


def split_deadline(
    deadline: float | None, tasks: int, jobs: int
) -> float | None:
    """The per-task deadline share: the batch deadline divided across
    dispatch waves (``ceil(tasks / jobs)``), so the whole batch finishes
    inside ``deadline`` no matter how tasks queue behind the workers.

    The share is clamped at 0.0: a zero (or already-overrun, i.e.
    negative-remaining) deadline yields a zero share, which is a *valid*
    cooperative budget — every solve trips on its first checkpoint and
    degrades through the ladder to an instant answer — rather than a
    ``Budget`` constructor error deep inside a worker.
    """
    if deadline is None or tasks == 0:
        return None
    waves = math.ceil(tasks / max(1, jobs))
    return max(0.0, deadline / waves)


def _merge_status(statuses: Sequence[str]) -> str:
    if not statuses:
        return STATUS_OPTIMAL
    return max(statuses, key=lambda s: _STATUS_SEVERITY.get(s, 1))


def _merge_provenance(
    results: Sequence[SolveResult],
) -> SolveProvenance | None:
    """Pool per-component provenance: nodes and elapsed time add (total
    work), lower bounds add (Lemma 2.2), degradations concatenate in
    component order."""
    carrying = [r.provenance for r in results if r.provenance is not None]
    if not carrying:
        return None
    bounds = [p.lower_bound for p in carrying]
    return SolveProvenance(
        nodes_expanded=sum(p.nodes_expanded for p in carrying),
        elapsed_seconds=sum(p.elapsed_seconds for p in carrying),
        lower_bound=None
        if any(b is None for b in bounds)
        else sum(b for b in bounds if b is not None),
        degradations=tuple(
            step for p in carrying for step in p.degradations
        ),
    )


def assemble_components(
    graph: AnyGraph,
    method: str,
    component_results: Sequence[SolveResult],
) -> SolveResult:
    """Stitch per-component results back into one graph-level result.

    Component schemes concatenate in canonical component order; the
    transition between two components always moves both pebbles, so the
    stitched raw cost is exactly the sum of component raw costs and the
    effective cost is the sum of component effective costs (Lemma 2.2) —
    both recomputed from the stitched scheme rather than trusted.
    """
    working = graph.without_isolated_vertices()
    if not component_results:
        empty = PebblingScheme(())
        return SolveResult(
            scheme=empty,
            method=method,
            effective_cost=0,
            raw_cost=0,
            jumps=0,
            optimal=True,
            status=STATUS_OPTIMAL,
        )
    if len(component_results) == 1:
        return component_results[0]
    scheme = component_results[0].scheme
    for part in component_results[1:]:
        scheme = scheme.concat(part.scheme)
    methods = {r.method for r in component_results}
    merged_method = methods.pop() if len(methods) == 1 else method
    status = _merge_status([r.status for r in component_results])
    optimal = all(r.optimal for r in component_results)
    return SolveResult(
        scheme=scheme,
        method=merged_method,
        effective_cost=scheme.effective_cost(working),
        raw_cost=scheme.cost(),
        jumps=scheme.jumps(),
        optimal=optimal and status == STATUS_OPTIMAL,
        status=status,
        provenance=_merge_provenance(component_results),
    )


def solve_many(
    graphs: Sequence[AnyGraph],
    method: str = "auto",
    jobs: int = 1,
    cache: SolveCache | None = None,
    deadline: float | None = None,
    memo_cap: int | None = None,
    pool: pool_mod.WorkerPool | None = None,
    **options: Any,
) -> list[SolveResult]:
    """Solve PEBBLE on every graph in ``graphs``; results in input order.

    ``jobs`` is the worker-process count (1 = inline, no pool).
    ``cache`` overrides the ambient solve cache installed by
    :func:`repro.parallel.cache.use_cache`; structurally identical
    components are solved once per call even with no cache at all.
    ``deadline`` / ``memo_cap`` are cooperative batch budgets, split
    across workers (see :func:`split_deadline`); remaining ``options``
    are forwarded to :func:`repro.core.solvers.registry.solve`.

    ``pool`` shares a long-lived :class:`~repro.parallel.pool.WorkerPool`
    across calls (the ``repro serve`` path): tasks are submitted to the
    existing executor, which is **not** shut down afterwards, and the
    pool's ``jobs`` governs the wave math.  Without it, a throwaway
    executor is built per call exactly as before.
    """
    if method not in METHODS:
        raise SolverError(f"unknown method {method!r}; choose from {METHODS}")
    if pool is not None:
        jobs = pool.jobs
    if jobs < 1:
        raise SolverError(f"jobs must be >= 1, got {jobs}")
    graphs = list(graphs)
    the_cache = cache if cache is not None else current_cache()

    with obs_trace.span(
        "parallel.solve_many", graphs=len(graphs), jobs=jobs, method=method
    ):
        return _solve_many(
            graphs, method, jobs, the_cache, deadline, memo_cap, options, pool
        )


def _detect_skew(tasks: Sequence[tuple[str, AnyGraph]], jobs: int) -> None:
    """Flag a wave dominated by one huge component (ROADMAP item 3's
    measurement hook).

    ``solve_many`` dedupes components but never *splits* one, so a batch
    whose largest component holds the majority of the edges parallelizes
    badly: every other worker drains its queue and idles while one
    grinds.  When that happens (>1 task and the largest component has
    more edges than all others combined) a ``pool.skew`` event and
    counter record the shape, so sharded/skew-aware work has a baseline
    to beat.  Detection only — behaviour is unchanged.
    """
    if len(tasks) < 2:
        return
    if not (obs_metrics.METRICS.enabled or obs_events.EVENTS.enabled):
        return
    sizes = [component.num_edges for _key, component in tasks]
    total = sum(sizes)
    biggest = max(sizes)
    if biggest * 2 <= total:
        return
    dominant_key = tasks[sizes.index(biggest)][0]
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("parallel.pool.skew")
    if obs_events.EVENTS.enabled:
        obs_events.emit(
            obs_events.EVENT_POOL_SKEW,
            fingerprint=dominant_key.split(":", 1)[0][:12],
            edges=biggest,
            total_edges=total,
            tasks=len(tasks),
            jobs=jobs,
        )


def _solve_many(
    graphs: list[AnyGraph],
    method: str,
    jobs: int,
    cache: SolveCache | None,
    deadline: float | None,
    memo_cap: int | None,
    options: dict[str, Any],
    pool: pool_mod.WorkerPool | None = None,
) -> list[SolveResult]:
    # 1+2. Decompose and dedupe.  `plans` maps each input graph to its
    # components' (key, canonical form) pairs, in canonical component
    # order; `pending` holds one representative subgraph per unique
    # uncached key.  `rep_forms` remembers which component's labels each
    # deduped result is bound to, so reassembly can rehydrate the scheme
    # onto structurally identical siblings with different labels.
    plans: list[list[tuple[str, CanonicalForm]]] = []
    solved: dict[str, SolveResult] = {}
    rep_forms: dict[str, CanonicalForm] = {}
    pending: dict[str, AnyGraph] = {}
    total_components = 0
    for graph in graphs:
        working = graph.without_isolated_vertices()
        keys: list[tuple[str, CanonicalForm]] = []
        for vertex_set in component_vertex_sets(working):
            component = working.subgraph(vertex_set)
            form = canonical_form(component)
            key = cache_key(form, method, options)
            keys.append((key, form))
            total_components += 1
            if key in solved or key in pending:
                continue
            rep_forms[key] = form
            if cache is not None:
                hit, _token = cache.consult(component, method, options)
                if hit is not None:
                    solved[key] = hit
                    continue
            pending[key] = component
        plans.append(keys)

    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("parallel.solve_many.calls")
        obs_metrics.inc("parallel.solve_many.graphs", len(graphs))
        obs_metrics.inc("parallel.solve_many.components", total_components)
        obs_metrics.inc("parallel.pool.tasks", len(pending))

    # 3. Fan out (or solve inline) the unique uncached components.
    tasks = list(pending.items())
    share = split_deadline(deadline, len(tasks), jobs)
    if tasks:
        _detect_skew(tasks, jobs)
        if (pool is None and jobs == 1) or len(tasks) == 1:
            for key, component in tasks:
                _emit_task_event(
                    obs_events.EVENT_POOL_TASK_START, key, method, jobs
                )
                # Mask the ambient cache: it was already consulted above,
                # and the per-solve consult must not double-count.
                with use_cache(None):
                    result = solve(
                        component,
                        method,
                        deadline=share,
                        memo_cap=memo_cap,
                        **options,
                    )
                solved[key] = result
                _emit_task_event(
                    obs_events.EVENT_POOL_TASK_END, key, method, jobs,
                    status=result.status,
                )
        else:
            payloads = [
                SolveTask(
                    graph=component,
                    method=method,
                    options=dict(options),
                    deadline=share,
                    memo_cap=memo_cap,
                    metrics_enabled=obs_metrics.METRICS.enabled,
                    events_enabled=obs_events.EVENTS.enabled,
                )
                for _key, component in tasks
            ]
            keys = [key for key, _component in tasks]
            # A shared WorkerPool outlives the call; a throwaway pool is
            # torn down with it.  Either way dispatch goes through the
            # self-healing dispatcher, which collects in submission order
            # (reassembly and obs merging stay deterministic) and
            # survives killed workers (docs/ROBUSTNESS.md).
            if pool is not None:
                pool_cm: Any = contextlib.nullcontext(pool)
            else:
                pool_cm = pool_mod.WorkerPool(max(1, min(jobs, len(tasks))))
            with pool_cm as live_pool:
                outcomes = pool_mod.dispatch_resilient(
                    live_pool, payloads, keys=keys
                )
            for key, outcome in zip(keys, outcomes):
                pool_mod.merge_observations(outcome)
                solved[key] = outcome.result
        if cache is not None:
            for key, component in tasks:
                cache.store(
                    CacheToken(key=key, form=rep_forms[key], graph=component),
                    solved[key],
                )

    # 4. Reassemble per input graph, in input order.
    return [
        assemble_components(
            graph,
            method,
            [
                rebind_result(solved[key], rep_forms[key], form)
                for key, form in keys
            ],
        )
        for graph, keys in zip(graphs, plans)
    ]


def rebind_result(
    result: SolveResult, source: CanonicalForm, target: CanonicalForm
) -> SolveResult:
    """Re-express a deduped result on a structurally identical component.

    The result's scheme is bound to the labels of the component that was
    actually solved (``source``); a sibling component with the same
    fingerprint has the same structure under *its* canonical order, so
    the scheme transfers as index pairs with every cost unchanged.
    Without this, stitching would reuse the representative's vertices
    verbatim and the scheme would never touch the sibling's edges.
    """
    if source.vertices == target.vertices:
        return result
    rebound = decode_scheme(encode_scheme(result.scheme, source), target)
    return replace(result, scheme=rebound)


def _emit_task_event(
    name: str, key: str, method: str, jobs: int, **extra: Any
) -> None:
    if obs_events.EVENTS.enabled:
        obs_events.emit(
            name,
            fingerprint=key.split(":", 1)[0][:12],
            method=method,
            jobs=jobs,
            **extra,
        )


__all__ = [
    "assemble_components",
    "rebind_result",
    "solve_many",
    "split_deadline",
]
