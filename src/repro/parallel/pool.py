"""Worker-side plumbing for the parallel solve service.

The observability collectors (:mod:`repro.obs.metrics`,
:mod:`repro.obs.events`, :mod:`repro.obs.trace`) are **per-process
globals**, so a solve running inside a ``ProcessPoolExecutor`` worker
records into that worker's registries and the parent would see nothing.
The contract here: each worker task starts from reset collectors, runs
one component solve, then *snapshots and ships its counters and events
back* in the task result; the parent merges them into its own registries
(:func:`merge_observations`), so enabled-vs-disabled neutrality and the
"counters tell the whole story" property survive the pool.

Worker hygiene on entry (:func:`solve_task`):

- the ambient solve-cache stack is cleared — a forked child must never
  reuse the parent's SQLite connection (the parent consulted the cache
  before dispatching, so workers only see genuine misses anyway);
- the ambient budget stack is cleared for the same reason: each task
  carries its own *deadline share* (see ``docs/PARALLEL.md``) as plain
  numbers and rebuilds a fresh :class:`~repro.runtime.budget.Budget`
  in-process, because budgets hold clocks and must not cross the pickle
  boundary.

Tasks and results are plain picklable payloads; the worker function is a
module-level callable so every start method (fork, spawn) can import it.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import Executor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.core.solvers.registry import SolveResult
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

AnyGraph = Graph | BipartiteGraph


@dataclass(frozen=True)
class SolveTask:
    """One component solve shipped to a worker."""

    graph: AnyGraph
    method: str
    options: dict[str, Any] = field(default_factory=dict)
    deadline: float | None = None
    memo_cap: int | None = None
    metrics_enabled: bool = False
    events_enabled: bool = False


@dataclass(frozen=True)
class TaskOutcome:
    """What a worker ships home: the result plus its observations."""

    result: SolveResult
    counters: dict[str, int]
    events: tuple[tuple[str, dict[str, Any]], ...]


def solve_task(task: SolveTask) -> TaskOutcome:
    """Run one component solve in a **worker process** and snapshot obs.

    Worker-only: it resets this process's collectors before solving, so
    the jobs=1 inline path in :func:`repro.parallel.service.solve_many`
    calls the registry directly instead (same solver code, no snapshot
    needed because the parent's collectors record in place).
    """
    from repro.core.solvers.registry import solve
    from repro.parallel.cache import _reset_ambient_cache
    from repro.runtime.budget import _BUDGET_STACK

    _reset_ambient_cache()
    _BUDGET_STACK.clear()
    obs_trace.reset()
    obs_trace.disable()
    obs_metrics.reset()
    obs_events.reset()
    if task.metrics_enabled:
        obs_metrics.enable()
    else:
        obs_metrics.disable()
    if task.events_enabled:
        obs_events.enable()
    else:
        obs_events.disable()

    result = solve(
        task.graph,
        task.method,
        deadline=task.deadline,
        memo_cap=task.memo_cap,
        **task.options,
    )

    counters: dict[str, int] = {}
    shipped_events: tuple[tuple[str, dict[str, Any]], ...] = ()
    if task.metrics_enabled:
        counters = dict(obs_metrics.snapshot()["counters"])
    if task.events_enabled:
        shipped_events = tuple(
            (event.name, dict(event.attrs)) for event in obs_events.events()
        )
    obs_metrics.reset()
    obs_events.reset()
    return TaskOutcome(result=result, counters=counters, events=shipped_events)


def merge_observations(outcome: TaskOutcome) -> None:
    """Fold one worker's shipped counters and events into this process.

    Counters merge by summation (deterministic: sorted name order);
    events are re-emitted in their original worker order, restamped with
    the parent's ``seq`` / ``run_id`` / ``span_id`` — the worker's facts,
    the parent's timeline.
    """
    if obs_metrics.METRICS.enabled:
        for name in sorted(outcome.counters):
            obs_metrics.inc(name, outcome.counters[name])
    if obs_events.EVENTS.enabled:
        for name, attrs in outcome.events:
            obs_events.emit(name, **attrs)


def preferred_start_method() -> str:
    """``fork`` where available (fast, shares the imported package), else
    the platform default (``spawn`` re-imports ``repro`` per worker)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def make_executor(jobs: int, task_count: int) -> Executor:
    """A process pool sized to the work (never more workers than tasks)."""
    workers = max(1, min(jobs, task_count))
    context = multiprocessing.get_context(preferred_start_method())
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


class WorkerPool:
    """A long-lived, re-entrant process pool shared across batch calls.

    ``solve_many`` historically built (and tore down) a throwaway
    ``ProcessPoolExecutor`` per batch; a persistent front-end (``repro
    serve``) cannot afford that — worker start-up would dominate every
    request.  A ``WorkerPool`` owns one executor for its whole lifetime:

    - **lazy**: the executor is created on first use, so constructing a
      pool is free and a server that only ever serves cache hits never
      forks a worker;
    - **context-managed and re-entrant**: ``with pool:`` blocks nest —
      the underlying executor is shut down only when the *outermost*
      ``with`` exits (or :meth:`close` is called explicitly), so a
      service can hold the pool open while individual batches also use
      ``with pool:`` for scoped cleanliness;
    - **shareable**: any number of concurrent ``solve_many`` calls (or
      server requests) may submit into one pool; the executor's queue
      interleaves them.

    After :meth:`close`, the pool is reusable: the next submit lazily
    builds a fresh executor (useful for fork-safety after chaos tests).
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self._executor: ProcessPoolExecutor | None = None
        self._entries = 0

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._executor is None:
            context = multiprocessing.get_context(preferred_start_method())
            self._executor = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=context
            )
        return self._executor

    def submit(self, task: SolveTask):
        """Submit one :func:`solve_task` to the pool; returns the future."""
        return self.executor.submit(solve_task, task)

    def close(self) -> None:
        """Shut the executor down (idempotent); the pool stays reusable."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WorkerPool":
        self._entries += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self._entries -= 1
        if self._entries <= 0:
            self._entries = 0
            self.close()


__all__ = [
    "SolveTask",
    "TaskOutcome",
    "WorkerPool",
    "make_executor",
    "merge_observations",
    "preferred_start_method",
    "solve_task",
]
