"""Worker-side plumbing for the parallel solve service.

The observability collectors (:mod:`repro.obs.metrics`,
:mod:`repro.obs.events`, :mod:`repro.obs.trace`) are **per-process
globals**, so a solve running inside a ``ProcessPoolExecutor`` worker
records into that worker's registries and the parent would see nothing.
The contract here: each worker task starts from reset collectors, runs
one component solve, then *snapshots and ships its counters and events
back* in the task result; the parent merges them into its own registries
(:func:`merge_observations`), so enabled-vs-disabled neutrality and the
"counters tell the whole story" property survive the pool.

Worker hygiene on entry (:func:`solve_task`):

- the ambient solve-cache stack is cleared — a forked child must never
  reuse the parent's SQLite connection (the parent consulted the cache
  before dispatching, so workers only see genuine misses anyway);
- the ambient budget stack is cleared for the same reason: each task
  carries its own *deadline share* (see ``docs/PARALLEL.md``) as plain
  numbers and rebuilds a fresh :class:`~repro.runtime.budget.Budget`
  in-process, because budgets hold clocks and must not cross the pickle
  boundary.

Tasks and results are plain picklable payloads; the worker function is a
module-level callable so every start method (fork, spawn) can import it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
from concurrent.futures import Executor, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from repro.core.solvers.registry import SolveResult
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph
from repro.obs import context as obs_context
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.context import TraceContext
from repro.runtime import faults as faults_mod

AnyGraph = Graph | BipartiteGraph

# The fault-injection site that kills a worker process (see
# docs/ROBUSTNESS.md).  Unlike I/O sites it must be *named explicitly* in
# a FaultPlan's rates — a ``"*"`` wildcard plan exercises exception paths,
# not process death, so existing chaos runs keep their meaning.
CRASH_SITE = "worker.crash"

# Provenance marker recorded on a result solved in-parent after its task
# repeatedly killed workers.
QUARANTINE_MARKER = "pool.quarantine"


@dataclass(frozen=True)
class SolveTask:
    """One component solve shipped to a worker.

    ``crash`` is the deterministic chaos hook: a task marked in the
    *parent* (one seeded draw per dispatch, :func:`crash_draw`) kills its
    worker process on arrival, simulating an OOM-kill / segfault without
    any real nondeterminism.
    """

    graph: AnyGraph
    method: str
    options: dict[str, Any] = field(default_factory=dict)
    deadline: float | None = None
    memo_cap: int | None = None
    metrics_enabled: bool = False
    events_enabled: bool = False
    crash: bool = False
    # Request correlation: the originating request's TraceContext (its
    # parent_span_id names the dispatch span in the parent process) and
    # whether the worker should record + ship spans at all.
    trace: TraceContext | None = None
    trace_enabled: bool = False


@dataclass(frozen=True)
class TaskOutcome:
    """What a worker ships home: the result plus its observations."""

    result: SolveResult
    counters: dict[str, int]
    events: tuple[tuple[str, dict[str, Any]], ...]
    spans: tuple[dict[str, Any], ...] = ()


def solve_task(task: SolveTask) -> TaskOutcome:
    """Run one component solve in a **worker process** and snapshot obs.

    Worker-only: it resets this process's collectors before solving, so
    the jobs=1 inline path in :func:`repro.parallel.service.solve_many`
    calls the registry directly instead (same solver code, no snapshot
    needed because the parent's collectors record in place).
    """
    from repro.core.solvers.registry import solve
    from repro.parallel.cache import _reset_ambient_cache
    from repro.runtime.budget import _BUDGET_STACK

    if task.crash:
        # Injected worker death: exit hard, bypassing interpreter
        # shutdown, exactly like the kernel's OOM killer would.
        os._exit(1)

    _reset_ambient_cache()
    _BUDGET_STACK.clear()
    obs_trace.reset()
    if task.trace_enabled:
        obs_trace.enable()
    else:
        obs_trace.disable()
    obs_metrics.reset()
    obs_events.reset()
    if task.metrics_enabled:
        obs_metrics.enable()
    else:
        obs_metrics.disable()
    if task.events_enabled:
        obs_events.enable()
    else:
        obs_events.disable()

    # The ambient context makes every top-level span this worker records
    # carry the originating request's trace_id (and the parent-process
    # dispatch span as remote_parent) — tagged at recording time, so the
    # shipment needs no post-processing.
    token = obs_context.activate(task.trace) if task.trace is not None else None
    try:
        result = solve(
            task.graph,
            task.method,
            deadline=task.deadline,
            memo_cap=task.memo_cap,
            **task.options,
        )
    finally:
        if token is not None:
            obs_context.deactivate(token)

    counters: dict[str, int] = {}
    shipped_events: tuple[tuple[str, dict[str, Any]], ...] = ()
    shipped_spans: tuple[dict[str, Any], ...] = ()
    if task.metrics_enabled:
        counters = dict(obs_metrics.snapshot()["counters"])
    if task.events_enabled:
        shipped_events = tuple(
            (event.name, dict(event.attrs)) for event in obs_events.events()
        )
    if task.trace_enabled:
        shipped_spans = tuple(obs_trace.as_dicts())
    obs_metrics.reset()
    obs_events.reset()
    obs_trace.reset()
    obs_trace.disable()
    return TaskOutcome(
        result=result,
        counters=counters,
        events=shipped_events,
        spans=shipped_spans,
    )


def merge_observations(outcome: TaskOutcome) -> None:
    """Fold one worker's shipped counters and events into this process.

    Counters merge by summation (deterministic: sorted name order);
    events are re-emitted in their original worker order, restamped with
    the parent's ``seq`` / ``run_id`` / ``span_id`` — the worker's facts,
    the parent's timeline.  Shipped spans are adopted into the parent
    tracer (:meth:`repro.obs.trace.Tracer.adopt`) tagged with
    ``origin="worker"``, already carrying the request's trace_id.
    """
    if obs_metrics.METRICS.enabled:
        for name in sorted(outcome.counters):
            obs_metrics.inc(name, outcome.counters[name])
    if obs_events.EVENTS.enabled:
        for name, attrs in outcome.events:
            obs_events.emit(name, **attrs)
    if obs_trace.TRACER.enabled and outcome.spans:
        adopted = obs_trace.adopt(outcome.spans, origin="worker")
        if adopted and obs_metrics.METRICS.enabled:
            obs_metrics.inc("parallel.pool.spans_adopted", len(adopted))


def preferred_start_method() -> str:
    """``fork`` where available (fast, shares the imported package), else
    the platform default (``spawn`` re-imports ``repro`` per worker)."""
    methods = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


def make_executor(jobs: int, task_count: int) -> Executor:
    """A process pool sized to the work (never more workers than tasks)."""
    workers = max(1, min(jobs, task_count))
    context = multiprocessing.get_context(preferred_start_method())
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


class WorkerPool:
    """A long-lived, re-entrant process pool shared across batch calls.

    ``solve_many`` historically built (and tore down) a throwaway
    ``ProcessPoolExecutor`` per batch; a persistent front-end (``repro
    serve``) cannot afford that — worker start-up would dominate every
    request.  A ``WorkerPool`` owns one executor for its whole lifetime:

    - **lazy**: the executor is created on first use, so constructing a
      pool is free and a server that only ever serves cache hits never
      forks a worker;
    - **context-managed and re-entrant**: ``with pool:`` blocks nest —
      the underlying executor is shut down only when the *outermost*
      ``with`` exits (or :meth:`close` is called explicitly), so a
      service can hold the pool open while individual batches also use
      ``with pool:`` for scoped cleanliness;
    - **shareable**: any number of concurrent ``solve_many`` calls (or
      server requests) may submit into one pool; the executor's queue
      interleaves them.

    After :meth:`close`, the pool is reusable: the next submit lazily
    builds a fresh executor (useful for fork-safety after chaos tests).

    **Self-healing**: a killed worker breaks the whole
    ``ProcessPoolExecutor`` (every pending future raises
    ``BrokenProcessPool``).  :attr:`generation` counts rebuilds;
    dispatchers snapshot it before submitting and call :meth:`heal` with
    the snapshot when they observe breakage, so any number of concurrent
    dispatchers trigger exactly one rebuild per crash.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.generation = 0
        self._executor: ProcessPoolExecutor | None = None
        self._entries = 0
        self._lock = threading.Lock()

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        with self._lock:
            if self._executor is None:
                context = multiprocessing.get_context(preferred_start_method())
                self._executor = ProcessPoolExecutor(
                    max_workers=self.jobs, mp_context=context
                )
            return self._executor

    def submit(self, task: SolveTask):
        """Submit one :func:`solve_task` to the pool; returns the future."""
        return self.executor.submit(solve_task, task)

    def heal(self, seen_generation: int) -> None:
        """Replace a broken executor, at most once per observed crash.

        ``seen_generation`` is the :attr:`generation` the caller read
        *before* submitting; if another dispatcher already healed (the
        generation moved on), this is a no-op and the caller simply
        resubmits into the fresh executor.
        """
        with self._lock:
            if self.generation != seen_generation:
                return
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None
            self.generation += 1

    def close(self) -> None:
        """Shut the executor down (idempotent); the pool stays reusable."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None

    def __enter__(self) -> "WorkerPool":
        self._entries += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self._entries -= 1
        if self._entries <= 0:
            self._entries = 0
            self.close()


def emit_task_event(
    name: str, key: str, method: str, jobs: int, **extra: Any
) -> None:
    """One ``pool.task_*`` event, keyed by fingerprint prefix."""
    if obs_events.EVENTS.enabled:
        obs_events.emit(
            name,
            fingerprint=key.split(":", 1)[0][:12],
            method=method,
            jobs=jobs,
            **extra,
        )


def crash_draw() -> bool:
    """One seeded draw at the ``worker.crash`` site (parent-side).

    The draw happens in the *parent* before dispatch — dispatch order is
    deterministic, so which tasks die is pinned by the plan's seed alone.
    Only plans that name ``worker.crash`` explicitly participate; the
    ``"*"`` wildcard does not reach it (see :data:`CRASH_SITE`).
    """
    plan = faults_mod.active_plan()
    if plan is None or CRASH_SITE not in plan.rates:
        return False
    fired = plan.should_fail(CRASH_SITE)
    if fired and obs_events.EVENTS.enabled:
        obs_events.emit(
            obs_events.EVENT_FAULT_INJECTED,
            site=CRASH_SITE,
            seed=plan.seed,
            call=plan.calls,
            injected=plan.injected,
        )
    return fired


def _quarantine(task: SolveTask, key: str, jobs: int) -> TaskOutcome:
    """Solve a poison task in-parent and brand the result as quarantined.

    A task that kept killing workers is taken out of the pool entirely
    and solved inline (ambient cache masked, same budget share), so the
    batch still completes with a correct answer; the recovery trail lives
    in the result's provenance (:data:`QUARANTINE_MARKER`), a
    ``pool.quarantine`` event, and a ``parallel.pool.quarantines``
    counter — an explicit degraded outcome, never a crash.
    """
    from repro.core.solvers.registry import solve
    from repro.parallel.cache import use_cache
    from repro.runtime.anytime import SolveProvenance

    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("parallel.pool.quarantines")
    emit_task_event(
        obs_events.EVENT_POOL_QUARANTINE, key, task.method, jobs
    )
    with use_cache(None):
        result = solve(
            task.graph,
            task.method,
            deadline=task.deadline,
            memo_cap=task.memo_cap,
            **task.options,
        )
    provenance = result.provenance or SolveProvenance()
    provenance = replace(
        provenance,
        degradations=provenance.degradations + (QUARANTINE_MARKER,),
    )
    # Obs recorded directly into the parent's collectors during the
    # inline solve, so the outcome ships none (merging stays a no-op).
    return TaskOutcome(
        result=replace(result, provenance=provenance), counters={}, events=()
    )


def dispatch_resilient(
    pool: WorkerPool,
    payloads: Sequence[SolveTask],
    keys: Sequence[str] | None = None,
    max_failures: int = 3,
) -> list[TaskOutcome]:
    """Run every payload on ``pool``, surviving killed workers.

    The happy path is exactly the old dispatch: submit everything,
    collect in submission order.  When a worker dies the executor breaks
    and every uncollected future raises ``BrokenProcessPool``; this
    dispatcher then

    1. heals the pool (:meth:`WorkerPool.heal` — one rebuild no matter
       how many dispatchers saw the crash) and emits one
       ``pool.worker_crash`` event / ``parallel.pool.worker_crashes``
       counter bump;
    2. re-dispatches only the lost tasks, **serially** — after a crash
       the culprit among the batch is unknown, so one-task waves make
       every further death attributable to exactly one task;
    3. quarantines any task charged with ``max_failures`` failures
       (:func:`_quarantine`) instead of retrying forever.

    Results come back in payload order regardless of crashes, so callers
    keep the determinism contract of ``solve_many``.
    """
    total = len(payloads)
    keys = list(keys) if keys is not None else [f"task:{i}" for i in range(total)]
    outcomes: list[TaskOutcome | None] = [None] * total
    failures = [0] * total
    pending = list(range(total))
    started: set[int] = set()
    serial = False
    while pending:
        wave = pending[:1] if serial else list(pending)
        seen_generation = pool.generation
        futures: list[tuple[int, Any]] = []
        submit_broke = False
        for index in wave:
            payload = payloads[index]
            if crash_draw():
                payload = replace(payload, crash=True)
            if index not in started:
                emit_task_event(
                    obs_events.EVENT_POOL_TASK_START,
                    keys[index],
                    payload.method,
                    pool.jobs,
                )
                started.add(index)
            try:
                futures.append((index, pool.submit(payload)))
            except BrokenProcessPool:
                # The pool broke before this wave finished submitting;
                # heal below and re-dispatch the whole remainder.
                submit_broke = True
                break
        crashed: list[int] = []
        for index, future in futures:
            try:
                outcome: TaskOutcome = future.result()
            except BrokenProcessPool:
                crashed.append(index)
                continue
            outcomes[index] = outcome
            emit_task_event(
                obs_events.EVENT_POOL_TASK_END,
                keys[index],
                payloads[index].method,
                pool.jobs,
                status=outcome.result.status,
            )
        pending = [i for i in pending if outcomes[i] is None]
        if not (crashed or submit_broke):
            continue
        pool.heal(seen_generation)
        serial = True
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("parallel.pool.worker_crashes")
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_POOL_WORKER_CRASH,
                lost_tasks=len(pending),
                generation=pool.generation,
                jobs=pool.jobs,
            )
        for index in crashed:
            failures[index] += 1
        for index in list(pending):
            if failures[index] >= max_failures:
                outcomes[index] = _quarantine(
                    payloads[index], keys[index], pool.jobs
                )
                pending.remove(index)
    return [outcome for outcome in outcomes if outcome is not None]


__all__ = [
    "CRASH_SITE",
    "QUARANTINE_MARKER",
    "SolveTask",
    "TaskOutcome",
    "WorkerPool",
    "crash_draw",
    "dispatch_resilient",
    "emit_task_event",
    "make_executor",
    "merge_observations",
    "preferred_start_method",
    "solve_task",
]
