"""Parallel, cache-aware batch solving (``docs/PARALLEL.md``).

The public surface:

- :func:`solve_many` — solve a batch of graphs, fanning per-component
  work across a process pool with deterministic reassembly;
- :class:`SolveCache` / :func:`use_cache` / :func:`default_cache_path` —
  the two-tier (LRU + SQLite) solve cache keyed by canonical component
  fingerprints;
- :func:`fingerprint` / :func:`canonical_form` — the structural identity
  the cache keys on.

Correctness rests on Lemma 2.2 (per-component additivity of the
pebbling cost); see :mod:`repro.parallel.service` for the argument.
"""

from repro.parallel.cache import (
    CACHE_SCHEMA,
    CacheStats,
    SolveCache,
    current_cache,
    default_cache_path,
    use_cache,
)
from repro.parallel.fingerprint import CanonicalForm, canonical_form, fingerprint
from repro.parallel.pool import WorkerPool
from repro.parallel.service import (
    assemble_components,
    rebind_result,
    solve_many,
    split_deadline,
)

__all__ = [
    "CACHE_SCHEMA",
    "CacheStats",
    "CanonicalForm",
    "SolveCache",
    "WorkerPool",
    "assemble_components",
    "canonical_form",
    "current_cache",
    "default_cache_path",
    "fingerprint",
    "rebind_result",
    "solve_many",
    "split_deadline",
    "use_cache",
]
