"""repro — a reproduction of "On the Complexity of Join Predicates"
(Cai, Chakaravarthy, Kaushik, Naughton; PODS 2001).

The paper models join computation as a two-pebble game on the bipartite
*join graph* of a join instance and shows that the three classic join
predicate classes separate sharply inside this model:

- **equijoins** always admit *perfect* pebbling (cost ``pi = m``, one move
  per result tuple), found in linear time;
- **spatial-overlap** and **set-containment** joins are universal — every
  bipartite graph arises as their join graph — so they inherit the general
  worst case ``pi = 1.25m − 1``, and finding optimal pebblings for them is
  NP-complete and MAX-SNP-complete.

This package makes every definition and theorem executable:

>>> from repro import Relation, Equality, build_join_graph, solve
>>> r = Relation("R", [1, 1, 2])
>>> s = Relation("S", [1, 2, 2])
>>> graph = build_join_graph(r, s, Equality())
>>> result = solve(graph)
>>> result.effective_cost == graph.num_edges   # equijoins pebble perfectly
True

See DESIGN.md for the module inventory and EXPERIMENTS.md for the
theorem-by-theorem reproduction record.
"""

from repro.errors import ReproError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph
from repro.relations.relation import Relation, TupleRef
from repro.relations.catalog import Catalog
from repro.joins.predicates import (
    Band,
    Equality,
    JoinPredicate,
    SetContainment,
    SetOverlap,
    SpatialOverlap,
)
from repro.joins.join_graph import build_join_graph
from repro.core.scheme import PebblingScheme
from repro.core.game import PebbleGame
from repro.core.solvers.registry import SolveResult, optimal_effective_cost, solve
from repro.core.families import worst_case_effective_cost, worst_case_family

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "Graph",
    "BipartiteGraph",
    "Relation",
    "TupleRef",
    "Catalog",
    "JoinPredicate",
    "Equality",
    "SpatialOverlap",
    "SetContainment",
    "SetOverlap",
    "Band",
    "build_join_graph",
    "PebblingScheme",
    "PebbleGame",
    "solve",
    "SolveResult",
    "optimal_effective_cost",
    "worst_case_family",
    "worst_case_effective_cost",
    "__version__",
]
