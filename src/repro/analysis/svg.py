"""Dependency-free SVG rendering of instances.

Produces standalone SVG documents for:

- spatial join instances (rectangles / comb polygons) — the Lemma 3.4 and
  comb-universality constructions become visually checkable;
- bipartite join graphs — two vertex columns with edge lines;
- pebbling schemes — the join graph with edges numbered in visit order;
- trend sparklines — compact inline series for the cross-run HTML report
  (:mod:`repro.obs.report_html`).

The output is deliberately minimal, valid SVG 1.1; tests assert structure
rather than pixels.
"""

from __future__ import annotations

from typing import Iterable

from repro.graphs.bipartite import BipartiteGraph
from repro.geometry.primitives import Polygon, Rectangle
from repro.relations.domains import Domain
from repro.relations.relation import Relation
from repro.core.scheme import PebblingScheme

LEFT_COLOR = "#3366cc"
RIGHT_COLOR = "#cc6633"
EDGE_COLOR = "#888888"
SPARK_LINE_COLOR = "#3366cc"
SPARK_FLAG_COLOR = "#cc3333"
SPARK_GAP_COLOR = "#aaaaaa"


def _document(width: float, height: float, body: Iterable[str]) -> str:
    lines = [
        '<?xml version="1.0" encoding="UTF-8"?>',
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width:.0f}" height="{height:.0f}" '
        f'viewBox="0 0 {width:.0f} {height:.0f}">',
        '<rect width="100%" height="100%" fill="white"/>',
    ]
    lines.extend(body)
    lines.append("</svg>")
    return "\n".join(lines)


def _bounds_of_instance(relations: list[Relation]) -> Rectangle:
    box: Rectangle | None = None
    for relation in relations:
        for value in relation.values:
            current = value if isinstance(value, Rectangle) else value.bounding_box()
            box = current if box is None else box.union_bounds(current)
    if box is None:
        return Rectangle(0, 0, 1, 1)
    return box


def spatial_instance_svg(
    left: Relation,
    right: Relation,
    width: float = 640.0,
    margin: float = 20.0,
) -> str:
    """Render a spatial join instance (both relations overlaid).

    Left geometries draw in blue, right in orange, both translucent so
    overlaps — the join pairs — show as blended regions.
    """
    for relation in (left, right):
        if relation.domain not in (Domain.RECTANGLE, Domain.POLYGON):
            raise TypeError(
                f"spatial_instance_svg needs geometric columns, got "
                f"{relation.domain.value}"
            )
    bounds = _bounds_of_instance([left, right])
    span_x = max(bounds.width, 1e-9)
    span_y = max(bounds.height, 1e-9)
    scale = (width - 2 * margin) / span_x
    height = span_y * scale + 2 * margin

    def tx(x: float) -> float:
        return margin + (x - bounds.x_min) * scale

    def ty(y: float) -> float:
        # SVG y grows downward; geometry y grows upward.
        return height - margin - (y - bounds.y_min) * scale

    def shape(value, color: str) -> str:
        if isinstance(value, Rectangle):
            x, y = tx(value.x_min), ty(value.y_max)
            w = value.width * scale
            h = value.height * scale
            return (
                f'<rect x="{x:.2f}" y="{y:.2f}" width="{w:.2f}" '
                f'height="{h:.2f}" fill="{color}" fill-opacity="0.35" '
                f'stroke="{color}"/>'
            )
        points = " ".join(
            f"{tx(p.x):.2f},{ty(p.y):.2f}" for p in value.vertices
        )
        return (
            f'<polygon points="{points}" fill="{color}" '
            f'fill-opacity="0.35" stroke="{color}"/>'
        )

    body = [shape(v, LEFT_COLOR) for v in left.values]
    body.extend(shape(v, RIGHT_COLOR) for v in right.values)
    return _document(width, height, body)


def sparkline_svg(
    values: list[float | None],
    flags: list[bool] | None = None,
    width: float = 220.0,
    height: float = 40.0,
    margin: float = 4.0,
) -> str:
    """A compact inline sparkline of one numeric series.

    ``None`` values are gaps (a failed run's missing timing) drawn as
    grey ticks on the baseline; ``flags[i]`` marks point ``i`` with a red
    circle — the report uses it for regression verdicts.  The document is
    self-contained SVG 1.1, suitable for direct embedding in HTML.
    """
    flags = flags or [False] * len(values)
    if len(flags) != len(values):
        raise ValueError(
            f"flags has {len(flags)} entries for {len(values)} values"
        )
    present = [v for v in values if v is not None]
    low = min(present, default=0.0)
    high = max(present, default=1.0)
    span = max(high - low, 1e-9)
    count = max(len(values), 1)
    step = (width - 2 * margin) / max(count - 1, 1)

    def x_of(i: int) -> float:
        return margin + i * step

    def y_of(v: float) -> float:
        return height - margin - (v - low) / span * (height - 2 * margin)

    body = []
    segment: list[str] = []
    for i, value in enumerate(values):
        if value is None:
            if len(segment) >= 2:
                body.append(
                    f'<polyline points="{" ".join(segment)}" fill="none" '
                    f'stroke="{SPARK_LINE_COLOR}" stroke-width="1.5"/>'
                )
            segment = []
            body.append(
                f'<line x1="{x_of(i):.2f}" y1="{height - margin:.2f}" '
                f'x2="{x_of(i):.2f}" y2="{height - margin - 4:.2f}" '
                f'stroke="{SPARK_GAP_COLOR}"/>'
            )
            continue
        segment.append(f"{x_of(i):.2f},{y_of(value):.2f}")
    if len(segment) >= 2:
        body.append(
            f'<polyline points="{" ".join(segment)}" fill="none" '
            f'stroke="{SPARK_LINE_COLOR}" stroke-width="1.5"/>'
        )
    for i, (value, flagged) in enumerate(zip(values, flags)):
        if value is None:
            continue
        if flagged:
            body.append(
                f'<circle cx="{x_of(i):.2f}" cy="{y_of(value):.2f}" r="3" '
                f'fill="{SPARK_FLAG_COLOR}"/>'
            )
    if present:
        # Always mark the latest point so single-run series stay visible.
        last_index = max(i for i, v in enumerate(values) if v is not None)
        last_value = values[last_index]
        assert last_value is not None
        body.append(
            f'<circle cx="{x_of(last_index):.2f}" '
            f'cy="{y_of(last_value):.2f}" r="2" fill="{SPARK_LINE_COLOR}"/>'
        )
    return _document(width, height, body)


def join_graph_svg(
    graph: BipartiteGraph,
    scheme: PebblingScheme | None = None,
    width: float = 420.0,
    row_height: float = 36.0,
    margin: float = 40.0,
) -> str:
    """Render a bipartite join graph as two labelled vertex columns.

    With a canonical ``scheme``, edges are annotated with their visit
    order, making jumps visible as out-of-sequence long hops.
    """
    lefts = graph.left
    rights = graph.right
    rows = max(len(lefts), len(rights), 1)
    height = margin * 2 + row_height * (rows - 1) + 20

    def left_pos(i: int) -> tuple[float, float]:
        return (margin * 2, margin + i * row_height)

    def right_pos(j: int) -> tuple[float, float]:
        return (width - margin * 2, margin + j * row_height)

    order: dict[frozenset, int] = {}
    if scheme is not None:
        for index, (a, b) in enumerate(scheme.configurations, start=1):
            order[frozenset((a, b))] = index

    left_index = {v: i for i, v in enumerate(lefts)}
    right_index = {v: j for j, v in enumerate(rights)}
    body = []
    for u, v in graph.edges():
        x1, y1 = left_pos(left_index[u])
        x2, y2 = right_pos(right_index[v])
        body.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{EDGE_COLOR}"/>'
        )
        visit = order.get(frozenset((u, v)))
        if visit is not None:
            mx, my = (x1 + x2) / 2, (y1 + y2) / 2 - 3
            body.append(
                f'<text x="{mx:.1f}" y="{my:.1f}" font-size="10" '
                f'text-anchor="middle" fill="#333">{visit}</text>'
            )
    for i, u in enumerate(lefts):
        x, y = left_pos(i)
        body.append(f'<circle cx="{x}" cy="{y}" r="5" fill="{LEFT_COLOR}"/>')
        body.append(
            f'<text x="{x - 10}" y="{y + 4}" font-size="11" '
            f'text-anchor="end">{u}</text>'
        )
    for j, v in enumerate(rights):
        x, y = right_pos(j)
        body.append(f'<circle cx="{x}" cy="{y}" r="5" fill="{RIGHT_COLOR}"/>')
        body.append(
            f'<text x="{x + 10}" y="{y + 4}" font-size="11" '
            f'text-anchor="start">{v}</text>'
        )
    return _document(width, height, body)
