"""Plain-text tables and series for benchmark output.

No dependencies, fixed-width rendering, stable column order — benchmark
output is diffed across runs, so formatting must be deterministic.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any


class Table:
    """A fixed-column ASCII table.

    Example
    -------
    >>> t = Table(["n", "pi"])
    >>> t.add_row([3, 7])
    >>> print(t.render())
    n | pi
    --+---
    3 | 7
    """

    def __init__(self, columns: Sequence[str], title: str | None = None) -> None:
        self.columns = [str(c) for c in columns]
        self.title = title
        self._rows: list[list[str]] = []
        self._raw_rows: list[list[Any]] = []

    def add_row(self, row: Iterable[Any]) -> None:
        raw = list(row)
        cells = [self._format(cell) for cell in raw]
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self._rows.append(cells)
        self._raw_rows.append(raw)

    def as_dict(self) -> dict[str, Any]:
        """The table as a JSON-ready payload (un-formatted cell values),
        so JSON output can carry types the ASCII rendering flattens —
        e.g. the hardness table's ``budget_exceeded`` booleans."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self._raw_rows],
        }

    @staticmethod
    def _format(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header.rstrip())
        lines.append("-+-".join("-" * w for w in widths))
        for row in self._rows:
            line = " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            lines.append(line.rstrip())
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._rows)

    def render_latex(self) -> str:
        """The same table as a LaTeX ``tabular`` (booktabs style).

        Handy for dropping reproduction tables straight into a paper:
        underscores are escaped, the title becomes a caption comment.
        """

        def escape(cell: str) -> str:
            return cell.replace("_", r"\_").replace("%", r"\%").replace("#", r"\#")

        spec = "l" * len(self.columns)
        lines = []
        if self.title:
            lines.append(f"% {self.title}")
        lines.append(f"\\begin{{tabular}}{{{spec}}}")
        lines.append("\\toprule")
        lines.append(" & ".join(escape(c) for c in self.columns) + r" \\")
        lines.append("\\midrule")
        for row in self._rows:
            lines.append(" & ".join(escape(c) for c in row) + r" \\")
        lines.append("\\bottomrule")
        lines.append("\\end{tabular}")
        return "\n".join(lines)


def format_series(name: str, points: Iterable[tuple[Any, Any]]) -> str:
    """Render a named (x, y) series as ``name: x1->y1 x2->y2 …``."""
    body = " ".join(f"{x}->{y}" for x, y in points)
    return f"{name}: {body}"


def ratio(numerator: float, denominator: float) -> float:
    """A safe ratio for report columns (0/0 = 1.0 by convention)."""
    if denominator == 0:
        return 1.0 if numerator == 0 else float("inf")
    return numerator / denominator
