"""ASCII rendering of join graphs, line graphs, and pebbling schemes.

Used by the CLI and examples to make small instances inspectable without
any plotting dependency.  Rendering is deterministic, so doctests and CLI
snapshots are stable.
"""

from __future__ import annotations

from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.simple import Graph
from repro.core.scheme import PebblingScheme


def render_bipartite(graph: BipartiteGraph, max_width: int = 78) -> str:
    """An adjacency-matrix view of a bipartite graph.

    Left vertices label the rows, right vertices the columns; ``#`` marks
    an edge.  Wide graphs are truncated with an ellipsis marker.

    Example
    -------
    >>> from repro.graphs.generators import complete_bipartite
    >>> print(render_bipartite(complete_bipartite(2, 2)))
       | v0 v1
    ---+------
    u0 | #  #
    u1 | #  #
    """
    lefts = [str(v) for v in graph.left]
    rights = [str(v) for v in graph.right]
    left_width = max((len(s) for s in lefts), default=1)
    col_widths = [len(s) for s in rights]

    header_cells = []
    shown_rights = []
    used = left_width + 3
    truncated = False
    for name, width in zip(rights, col_widths):
        if used + width + 1 > max_width:
            truncated = True
            break
        header_cells.append(name)
        shown_rights.append(name)
        used += width + 1

    lines = []
    header = " " * left_width + " | " + " ".join(header_cells)
    if truncated:
        header += " ..."
    lines.append(header)
    lines.append("-" * left_width + "-+-" + "-" * (len(header) - left_width - 3))
    right_originals = graph.right
    for li, left_name in enumerate(lefts):
        cells = []
        for ri, right_name in enumerate(shown_rights):
            mark = "#" if graph.has_edge(graph.left[li], right_originals[ri]) else "."
            cells.append(mark.ljust(len(right_name)))
        row = left_name.ljust(left_width) + " | " + " ".join(cells)
        lines.append(row.rstrip())
    return "\n".join(lines)


def render_graph(graph: Graph) -> str:
    """A degree-annotated adjacency listing of a plain graph."""
    lines = []
    for v in sorted(graph.vertices, key=repr):
        neighbors = ", ".join(str(n) for n in sorted(graph.neighbors(v), key=repr))
        lines.append(f"{v} (deg {graph.degree(v)}): {neighbors}")
    return "\n".join(lines)


def render_scheme(
    graph: BipartiteGraph | Graph, scheme: PebblingScheme
) -> str:
    """A step-by-step timeline of a canonical scheme.

    Shows each configuration, whether the step was a 1-move slide or a
    2-move jump, and running cost totals.

    Example
    -------
    >>> from repro.graphs.generators import path_graph
    >>> g = path_graph(2)
    >>> s = PebblingScheme.from_edge_order(g, [("u0", "v0"), ("u1", "v0")])
    >>> print(render_scheme(g, s))
    step  1: (u0, v0)  place both    cost=2
    step  2: (u1, v0)  slide (+1)    cost=3
    total: pi_hat=3, jumps=0
    """
    from repro.core.scheme import config_transition_cost

    lines = []
    total = 0
    previous = None
    jumps = 0
    for index, config in enumerate(scheme.configurations, start=1):
        if previous is None:
            total += 2
            kind = "place both "
        else:
            step = config_transition_cost(previous, config)
            total += step
            if step == 2:
                jumps += 1
                kind = "jump  (+2) "
            elif step == 1:
                kind = "slide (+1) "
            else:
                kind = "stay  (+0) "
        a, b = config
        lines.append(f"step {index:2d}: ({a}, {b})  {kind}   cost={total}")
        previous = config
    lines.append(f"total: pi_hat={total}, jumps={jumps}")
    return "\n".join(lines)


def render_partitioning(graph: BipartiteGraph, partitioning) -> str:
    """A cell-grid view of a partitioned join: ``#`` marks active cells."""
    active = partitioning.active_cells(graph)
    lines = ["    " + " ".join(f"S{j}" for j in range(partitioning.q))]
    for i in range(partitioning.p):
        cells = " ".join(
            "# " if (i, j) in active else ". " for j in range(partitioning.q)
        )
        lines.append(f"R{i} | {cells.rstrip()}")
    lines.append(f"active cells: {len(active)} / {partitioning.p * partitioning.q}")
    return "\n".join(lines)
