"""Per-paper-artifact experiment drivers.

One function per experiment id of DESIGN.md's index.  Each returns a
:class:`~repro.analysis.report.Table` (plus raw rows) so that benchmarks
print the same artifact EXPERIMENTS.md records.  Every driver is
deterministic given its seed.
"""

from __future__ import annotations

import math
import random
import time
from typing import Any

from repro.analysis.report import Table, ratio
from repro.graphs.generators import (
    random_connected_bipartite,
    random_tsp12_graph,
    union_of_bicliques,
)
from repro.graphs.hamiltonian import has_hamiltonian_path
from repro.graphs.line_graph import line_graph
from repro.core.families import (
    worst_case_effective_cost,
    worst_case_family,
    worst_case_scheme,
)
from repro.core.lower_bounds import effective_cost_lower_bound
from repro.core.solvers.dfs_approx import solve_dfs_approx
from repro.core.solvers.equijoin import solve_equijoin
from repro.core.solvers.exact import solve_exact
from repro.core.solvers.registry import solve
from repro.core.reductions import (
    Tsp12Instance,
    measure_diamond_reduction,
    measure_incidence_reduction,
    tsp3_to_pebble,
    tsp4_to_tsp3,
)


def bounds_experiment(seeds: int = 12) -> Table:
    """E-L2.1: m ≤ π(G) ≤ 1.25m on random connected bipartite graphs."""
    table = Table(
        ["seed", "m", "pi", "lower(m)", "upper(1.25m)", "in_bounds"],
        title="E-L2.1: effective-cost bounds (Lemma 2.3 / Thm 3.1)",
    )
    for seed in range(seeds):
        graph = random_connected_bipartite(4, 4, extra_edges=seed % 5, seed=seed)
        m = graph.num_edges
        pi = solve_exact(graph).effective_cost
        upper = math.floor(1.25 * m)
        table.add_row([seed, m, pi, m, upper, m <= pi <= upper])
    return table


def worst_case_experiment(max_n: int = 8) -> Table:
    """E-T3.3 / Fig 1: the family G_n attains π = 1.25m − 1 (even n)."""
    table = Table(
        ["n", "m", "pi_exact", "formula", "1.25m-1", "deficiency_lb", "tour_scheme"],
        title="E-T3.3: worst-case family G_n (Fig 1)",
    )
    for n in range(1, max_n + 1):
        family = worst_case_family(n)
        m = family.num_edges
        exact = solve_exact(family).effective_cost
        formula = worst_case_effective_cost(n)
        scheme_cost = worst_case_scheme(n).effective_cost(family)
        table.add_row(
            [
                n,
                m,
                exact,
                formula,
                round(1.25 * m - 1, 2),
                effective_cost_lower_bound(family),
                scheme_cost,
            ]
        )
    return table


def equijoin_perfect_experiment(block_counts: tuple[int, ...] = (2, 8, 32, 128)) -> Table:
    """E-T3.2/T4.1: equijoin graphs pebble perfectly in linear time."""
    table = Table(
        ["blocks", "m", "pi", "perfect", "seconds"],
        title="E-T3.2/T4.1: equijoin perfect pebbling (linear time)",
    )
    rng = random.Random(7)
    for blocks in block_counts:
        sizes = [(rng.randint(1, 6), rng.randint(1, 6)) for _ in range(blocks)]
        graph = union_of_bicliques(sizes)
        start = time.perf_counter()
        scheme = solve_equijoin(graph)
        elapsed = time.perf_counter() - start
        pi = scheme.effective_cost(graph)
        table.add_row([blocks, graph.num_edges, pi, pi == graph.num_edges, round(elapsed, 5)])
    return table


def dfs_approx_experiment(seeds: int = 10, size: int = 7) -> Table:
    """E-T3.1: the DFS algorithm never exceeds its 1.25 guarantee."""
    table = Table(
        ["seed", "m", "pi_dfs", "guarantee", "pi_exact", "ratio_vs_opt"],
        title="E-T3.1: DFS 1.25-approximation (Lemma 3.1)",
    )
    for seed in range(seeds):
        graph = random_connected_bipartite(size, size, extra_edges=3, seed=seed)
        result = solve_dfs_approx(graph)
        exact = solve_exact(graph).effective_cost
        table.add_row(
            [
                seed,
                graph.num_edges,
                result.effective_cost,
                result.guarantee,
                exact,
                round(ratio(result.effective_cost, exact), 4),
            ]
        )
    return table


def perfect_iff_hamiltonian_experiment(seeds: int = 10) -> Table:
    """E-P2.1: π = m ⇔ L(G) has a Hamiltonian path."""
    table = Table(
        ["seed", "m", "pi", "perfect", "L(G)_hamiltonian", "agree"],
        title="E-P2.1: perfect pebbling vs Hamiltonicity of L(G)",
    )
    for seed in range(seeds):
        graph = random_connected_bipartite(4, 4, extra_edges=seed % 4, seed=100 + seed)
        pi = solve_exact(graph).effective_cost
        perfect = pi == graph.num_edges
        hamiltonian = has_hamiltonian_path(line_graph(graph))
        table.add_row([seed, graph.num_edges, pi, perfect, hamiltonian, perfect == hamiltonian])
    return table


def hardness_scaling_experiment(
    sizes: tuple[int, ...] = (6, 7, 8, 9, 10), node_budget: int = 2_000_000
) -> Table:
    """E-T4.2: exact-search effort explodes on hard instances while the
    equijoin solver stays linear — the empirical face of NP-completeness.

    Hard family: a random bipartite spanning tree plus two chords.  On such
    instances the deficiency bound often reads "a perfect pebbling might
    exist" while none does, so the exact search must exhaust the zero-jump
    level — the co-NP flavoured core of PEBBLE(D).  A search stopped by the
    budget reports ``>node_budget`` with ``budget_exceeded=True`` — an
    instance that legitimately used exactly ``node_budget`` nodes is a
    different (completed) outcome and reports the plain count.
    """
    from repro.errors import InstanceTooLargeError
    from repro.graphs.generators import random_connected_bipartite

    table = Table(
        [
            "n",
            "m(hard)",
            "search_nodes(hard)",
            "budget_exceeded",
            "hard_s",
            "m(equijoin)",
            "equijoin_s",
        ],
        title="E-T4.2: exact solver effort on hard vs easy instances",
    )
    for n in sizes:
        hard = random_connected_bipartite(n, n, extra_edges=2, seed=1)
        start = time.perf_counter()
        try:
            nodes: Any = solve_exact(hard, node_budget=node_budget).search_nodes
            exceeded = False
        except InstanceTooLargeError:
            nodes = f">{node_budget}"
            exceeded = True
        hard_elapsed = time.perf_counter() - start
        equi = union_of_bicliques([(2, 2)] * (hard.num_edges // 4 + 1))
        start = time.perf_counter()
        solve_equijoin(equi)
        equi_elapsed = time.perf_counter() - start
        table.add_row(
            [
                n,
                hard.num_edges,
                nodes,
                exceeded,
                round(hard_elapsed, 4),
                equi.num_edges,
                round(equi_elapsed, 5),
            ]
        )
    return table


def reduction_experiment(seeds: int = 6) -> tuple[Table, Table]:
    """E-T4.3/E-T4.4: measure the L-reduction constants α and β."""
    diamond = Table(
        ["seed", "n", "opt_src", "opt_tgt", "alpha_obs", "alpha_bound", "beta_obs"],
        title="E-T4.3: TSP-4(1,2) -> TSP-3(1,2) via the diamond gadget (Fig 2)",
    )
    # The paper's α = 3 for Thm 4.4 is asymptotic: opt_src ≥ n−1 while
    # opt_tgt ≤ 3n + O(1), so small instances can show slightly above 3.
    incidence = Table(
        ["seed", "n", "opt_src", "opt_tgt", "alpha_obs", "alpha_asymptotic", "beta_obs"],
        title="E-T4.4: TSP-3(1,2) -> PEBBLE via incidence graphs",
    )
    from repro.core.gadgets import default_gadget

    alpha_bound_diamond = default_gadget().num_nodes + 1
    for seed in range(seeds):
        graph4 = random_tsp12_graph(6, max_degree=4, seed=seed, edge_factor=1.6)
        instance4 = Tsp12Instance(graph4)
        reduction = tsp4_to_tsp3(instance4)
        # Probe with the lifted optimum plus deliberately suboptimal target
        # tours (sorted / reversed visiting orders) so β is exercised on
        # non-zero gaps, not just the trivial optimal probe.
        from repro.core.reductions import forward_tour

        src_tour, _ = instance4.optimal_tour()
        probes = [forward_tour(reduction, src_tour)]
        all_nodes = sorted(reduction.target.graph.vertices, key=repr)
        probes.append(all_nodes)
        probes.append(list(reversed(all_nodes)))
        report = measure_diamond_reduction(reduction, probe_tours=probes)
        diamond.add_row(
            [
                seed,
                graph4.num_vertices,
                report.opt_source,
                report.opt_target,
                round(report.alpha_observed, 3),
                alpha_bound_diamond,
                round(report.beta_observed, 3),
            ]
        )

        graph3 = random_tsp12_graph(6, max_degree=3, seed=1000 + seed, edge_factor=1.4)
        graph3 = graph3.without_isolated_vertices()
        if graph3.num_vertices < 2:
            continue
        instance3 = Tsp12Instance(graph3)
        inc = tsp3_to_pebble(instance3)
        probe_schemes = [
            solve_exact(inc.join_graph).scheme,
            solve(inc.join_graph, "greedy").scheme,
            solve(inc.join_graph, "dfs").scheme,
        ]
        report3 = measure_incidence_reduction(inc, probe_schemes=probe_schemes)
        incidence.add_row(
            [
                seed,
                graph3.num_vertices,
                report3.opt_source,
                report3.opt_target,
                round(report3.alpha_observed, 3),
                3,
                round(report3.beta_observed, 3),
            ]
        )
    return diamond, incidence


def approx_ladder_experiment(seeds: int = 8) -> Table:
    """E-APPROX: the solver ladder measured against the exact optimum."""
    methods = (
        "dfs",
        "dfs+polish",
        "greedy",
        "greedy+polish",
        "matching",
        "matching+polish",
        "anneal",
    )
    table = Table(
        ["seed", "m", "exact"] + list(methods),
        title="E-APPROX: approximation ladder (pi per method)",
    )
    for seed in range(seeds):
        graph = random_connected_bipartite(5, 5, extra_edges=4, seed=300 + seed)
        exact = solve_exact(graph).effective_cost
        row = [seed, graph.num_edges, exact]
        for method in methods:
            row.append(solve(graph, method).effective_cost)
        table.add_row(row)
    return table


def traceability_phase_experiment(
    side: int = 5, extra_range: tuple[int, ...] = (0, 1, 2, 4, 8), trials: int = 20
) -> Table:
    """E-PHASE: how often random join graphs pebble perfectly, by density.

    Prop 2.1 ties perfect pebbling to the traceability of ``L(G)``; this
    experiment measures the empirical phase transition — sparse tree-like
    join graphs frequently need jumps (pendant edges strand line-graph
    nodes), while a few extra chords make perfect schemes near-certain.
    Not an artifact from the paper, but the natural empirical picture its
    §2–3 theory predicts.
    """
    table = Table(
        ["extra_chords", "m(typ)", "perfect_fraction", "mean_pi/m"],
        title="E-PHASE: perfect-pebbling frequency vs join-graph density",
    )
    for extra in extra_range:
        perfect = 0
        ratio_total = 0.0
        m_typical = 0
        for trial in range(trials):
            graph = random_connected_bipartite(
                side, side, extra_edges=extra, seed=1000 * extra + trial
            )
            m = graph.num_edges
            m_typical = m
            pi = solve_exact(graph).effective_cost
            if pi == m:
                perfect += 1
            ratio_total += pi / m
        table.add_row(
            [extra, m_typical, round(perfect / trials, 3), round(ratio_total / trials, 4)]
        )
    return table


def join_algorithm_experiment() -> Table:
    """E-JOINS: pebbling cost of real join algorithm executions.

    Sort-merge pebbles equijoins perfectly (π/m = 1); index nested loops
    pays jumps inside key groups; the adversarial containment instance
    forces every algorithm above 1 (its optimum is ~1.25m).
    """
    from repro.joins.algorithms import (
        hash_join,
        index_nested_loops,
        inverted_index_join,
        sort_merge_join,
    )
    from repro.joins.join_graph import build_join_graph
    from repro.joins.predicates import Equality, SetContainment
    from repro.joins.trace import trace_report
    from repro.sets.realize import realize_worst_case_containment
    from repro.workloads.equijoin import zipf_equijoin_workload

    table = Table(
        ["workload", "algorithm", "m", "pi", "pi/m", "jumps"],
        title="E-JOINS: pebbling cost of join algorithm executions",
    )
    left, right = zipf_equijoin_workload(40, 40, key_universe=12, skew=0.8, seed=3)
    graph = build_join_graph(left, right, Equality())
    for name, algo in (
        ("sort-merge", sort_merge_join),
        ("hash", hash_join),
        ("index-NL", index_nested_loops),
    ):
        report = trace_report(graph, algo(left, right), name)
        table.add_row(
            ["equijoin/zipf", name, report.output_size, report.effective_cost,
             round(report.cost_ratio, 4), report.jumps]
        )
    c_left, c_right = realize_worst_case_containment(8)
    c_graph = build_join_graph(c_left, c_right, SetContainment())
    report = trace_report(c_graph, inverted_index_join(c_left, c_right), "inverted-index")
    table.add_row(
        ["containment/G8", "inverted-index", report.output_size,
         report.effective_cost, round(report.cost_ratio, 4), report.jumps]
    )
    optimum = solve_exact(c_graph).effective_cost
    table.add_row(
        ["containment/G8", "(optimal scheme)", c_graph.num_edges, optimum,
         round(ratio(optimum, c_graph.num_edges), 4), optimum - c_graph.num_edges]
    )
    return table
