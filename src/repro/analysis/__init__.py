"""Analysis and reporting: ASCII tables and the per-experiment drivers.

:mod:`repro.analysis.report` renders the tables printed by benchmarks and
examples; :mod:`repro.analysis.experiments` contains one driver function
per paper artifact (theorem/figure), each returning structured rows — the
single source for ``benchmarks/`` and ``EXPERIMENTS.md``.
"""

from repro.analysis.report import Table, format_series
from repro.analysis.render import (
    render_bipartite,
    render_graph,
    render_partitioning,
    render_scheme,
)

__all__ = [
    "Table",
    "format_series",
    "render_bipartite",
    "render_graph",
    "render_scheme",
    "render_partitioning",
]
