"""Command-line interface: ``python -m repro <command>`` / ``repro-pebble``.

Commands
--------
``pebble <graph-file> [--method M]``
    Solve PEBBLE on a bipartite graph in the text format of
    :mod:`repro.graphs.io` and print the scheme and costs.
``solve <graph-file> [...] [--jobs N] [--cache [PATH]]``
    Batch-solve PEBBLE on many graph files through the parallel,
    cache-aware service (:mod:`repro.parallel`): per-component fan-out
    across a process pool with deterministic reassembly (Lemma 2.2) and
    an optional persistent solve cache.
``demo``
    A guided tour: the three join classes, their join graphs, and their
    pebbling costs on small instances.
``family <n>``
    Print the worst-case family ``G_n``, its line graph's shape, and its
    optimal pebbling cost versus the paper's formula.
``experiments``
    Run every experiment driver and print its table (the same content
    recorded in EXPERIMENTS.md).
``render <graph-file>``
    Print an adjacency view of a bipartite graph and the timeline of its
    solved pebbling scheme.
``partition <graph-file> [-p P] [-q Q]``
    Compare partitioned-join mapping strategies (§5 open problem) on a
    graph and draw the hash-partitioning cell grid.
``join <left-file> <right-file> [--predicate P]``
    Join two typed relation files (see :mod:`repro.relations.io`) through
    the query engine and print rows plus EXPLAIN ANALYZE output.
``multiway [--instance I] [--n N] [--skew S] [--algorithm A] [--json]``
    Evaluate a cyclic conjunctive query (triangle, 4-cycle, clique) with
    the worst-case-optimal engine (:mod:`repro.joins.multiway`): print
    the plan (binary cascade vs LFTJ with estimated intermediate sizes),
    the execution counters against the AGM bound, and the pebbling trace
    of the projected output.
``explain [<left-file> <right-file> | --scenario S] [--analyze] [--json]``
    Render a join's structured plan record (:mod:`repro.obs.planquality`):
    the candidate algorithms with their estimated costs and reasons, and
    — with ``--analyze`` — actual output size, q-error, and (with
    ``--shadow``) plan regret.  ``--json`` emits the ``repro-plan/v1``
    document; ``--scenario`` explains every join a bench scenario plans.
``decide <graph-file> <K>``
    PEBBLE(D) (Def 4.1): decide ``pi(G) <= K`` with a verifiable
    certificate either way.
``svg [<graph-file>] [--family N] [-o OUT]``
    Write an SVG of a join graph (with scheme order) or of the spatial
    realization of the worst-case family ``G_N``.
``bench [--smoke] [--scenario S ...] [--seed N] [--jobs N] [--cache [PATH]]``
    Run the observability bench harness (:mod:`repro.obs.bench`): every
    scenario is timed under spans/metrics, a run-manifest directory is
    written to ``runs/{run_id}/``, and a top-level ``BENCH_<date>.json``
    extends the perf trajectory.
``profile [--scenario S ...] [--graph FILE] [--top N]``
    Run a workload (bench scenarios, default the equijoin engine
    scenario) or a solver on a graph file under tracing and print the
    top-N self-time table (:mod:`repro.obs.profile`).
``trace [--format {perfetto,folded,jsonl}] [-o OUT]``
    Same workload selection as ``profile``, but export the recorded
    span forest: Chrome trace-event JSON for Perfetto/chrome://tracing,
    folded stacks for flamegraph.pl, or raw JSONL
    (:mod:`repro.obs.export`).
``runs {index,list,show,compare,trend,plan-quality} [--runs-dir DIR]``
    Query the cross-run registry (:mod:`repro.obs.registry`): persist the
    SQLite index, list runs, drill into one run (including its event
    log), compare two runs scenario-by-scenario, print a scenario's
    timing trend with perf-gate regression flags, or trend per-predicate
    plan-quality calibration (q-error percentiles, choice accuracy).
``report [--html] [-o OUT] [--runs-dir DIR]``
    Render the self-contained cross-run HTML dashboard
    (:mod:`repro.obs.report_html`): run overview with artifact links plus
    per-scenario trend sparklines.
``serve [--port P | --unix PATH] [--jobs N] [--cache [PATH]] [...]``
    Run the persistent solve server (:mod:`repro.server`): concurrent
    solve/plan requests over newline-delimited JSON, one shared worker
    pool and solve cache, bounded admission with retry-after rejections.
``client {solve,plan,explain,ping,stats,shutdown,load} [...]``
    Talk to a running solve server: single requests (``explain`` sends
    two relation files and prints the server-rendered plan record), or
    ``load`` to drive the zipf-skewed async load generator
    (:mod:`repro.workloads.loadgen`) and print throughput/latency.
"""

from __future__ import annotations

import argparse
import sys

from repro.graphs.io import load_bipartite


def _cmd_pebble(args: argparse.Namespace) -> int:
    from repro.core.solvers.registry import solve
    from repro.runtime import Budget

    with open(args.graph_file) as handle:
        graph = load_bipartite(handle.read())
    budget = None
    if args.deadline is not None or args.node_budget is not None:
        budget = Budget(deadline=args.deadline, node_budget=args.node_budget)
    result = solve(graph, args.method, budget=budget)
    print(result.summary())
    if result.provenance is not None and result.provenance.degradations:
        steps = ", ".join(result.provenance.degradations)
        print(f"degraded: {steps} (lower bound pi >= {result.provenance.lower_bound})")
    if args.show_scheme:
        for index, (a, b) in enumerate(result.scheme.configurations, 1):
            print(f"  {index:4d}: pebbles on ({a}, {b})")
    if args.save:
        from repro.core.scheme_io import dump_scheme

        with open(args.save, "w") as handle:
            handle.write(dump_scheme(result.scheme))
        print(f"scheme saved to {args.save}")
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    import contextlib

    from repro.parallel import SolveCache, solve_many, use_cache

    graphs = []
    for path in args.graph_files:
        with open(path) as handle:
            graphs.append(load_bipartite(handle.read()))
    with contextlib.ExitStack() as stack:
        if args.cache is not None:
            cache = SolveCache(path=args.cache)
            stack.callback(cache.close)
            stack.enter_context(use_cache(cache))
        results = solve_many(
            graphs,
            method=args.method,
            jobs=args.jobs,
            deadline=args.deadline,
        )
        for path, result in zip(args.graph_files, results):
            print(f"{path}: {result.summary()}")
        if args.cache is not None:
            stats = cache.stats
            print(
                f"cache [{args.cache}]: {stats.hits} hit(s) "
                f"({stats.memory_hits} memory, {stats.persistent_hits} "
                f"persistent), {stats.misses} miss(es), "
                f"{stats.stores} store(s)"
            )
    degraded = [
        (path, result)
        for path, result in zip(args.graph_files, results)
        if result.status not in ("optimal", "complete")
    ]
    if degraded:
        names = ", ".join(f"{path} ({r.status})" for path, r in degraded)
        print(f"note: degraded under budget: {names}", file=sys.stderr)
    return 0


def _cmd_demo(_args: argparse.Namespace) -> int:
    from repro.core.solvers.registry import solve
    from repro.joins.join_graph import build_join_graph
    from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
    from repro.relations.relation import Relation
    from repro.geometry.primitives import Rectangle
    from repro.sets.realize import realize_worst_case_containment

    print("== Equijoin ==")
    r = Relation("R", [1, 1, 2, 3])
    s = Relation("S", [1, 2, 2, 5])
    graph = build_join_graph(r, s, Equality())
    result = solve(graph)
    print(f"join graph: {graph}; {result.summary()}")

    print("\n== Spatial overlap ==")
    r = Relation("R", [Rectangle(0, 0, 2, 2), Rectangle(3, 3, 5, 5)])
    s = Relation("S", [Rectangle(1, 1, 4, 4)])
    graph = build_join_graph(r, s, SpatialOverlap())
    result = solve(graph)
    print(f"join graph: {graph}; {result.summary()}")

    print("\n== Set containment (worst-case family G_4) ==")
    r, s = realize_worst_case_containment(4)
    graph = build_join_graph(r, s, SetContainment())
    result = solve(graph)
    print(f"join graph: {graph}; {result.summary()}")
    print("note: pi exceeds m — no perfect pebbling exists (Theorem 3.3).")
    return 0


def _cmd_family(args: argparse.Namespace) -> int:
    from repro.core.families import (
        worst_case_effective_cost,
        worst_case_family,
    )
    from repro.core.solvers.registry import solve

    n = args.n
    family = worst_case_family(n)
    result = solve(family, "exact" if family.num_edges <= 20 else "dfs+polish")
    print(f"G_{n}: m = {family.num_edges} edges")
    print(f"formula pi = 2n + ceil((n-2)/2) = {worst_case_effective_cost(n)}")
    print(result.summary())
    return 0


def _cmd_experiments(_args: argparse.Namespace) -> int:
    from repro.analysis import experiments as exp

    tables = [
        exp.bounds_experiment(),
        exp.worst_case_experiment(),
        exp.equijoin_perfect_experiment(),
        exp.dfs_approx_experiment(),
        exp.perfect_iff_hamiltonian_experiment(),
        exp.hardness_scaling_experiment(),
        *exp.reduction_experiment(),
        exp.approx_ladder_experiment(),
        exp.traceability_phase_experiment(trials=10),
        exp.join_algorithm_experiment(),
    ]
    for table in tables:
        print(table.render())
        print()
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_bipartite, render_scheme
    from repro.core.solvers.registry import solve

    with open(args.graph_file) as handle:
        graph = load_bipartite(handle.read())
    print(render_bipartite(graph))
    result = solve(graph)
    print()
    print(result.summary())
    print(render_scheme(graph, result.scheme))
    return 0


def _cmd_partition(args: argparse.Namespace) -> int:
    from repro.analysis.render import render_partitioning
    from repro.errors import InstanceTooLargeError
    from repro.joins.partitioning import (
        greedy_partitioning,
        hash_partitioning,
        optimal_partitioning_bruteforce,
        round_robin_partitioning,
    )

    with open(args.graph_file) as handle:
        graph = load_bipartite(handle.read())
    p, q = args.p, args.q
    strategies = [
        ("round-robin", round_robin_partitioning(graph, p, q)),
        ("hash", hash_partitioning(graph, p, q)),
        ("greedy", greedy_partitioning(graph, p, q)),
    ]
    try:
        strategies.append(("optimal", optimal_partitioning_bruteforce(graph, p, q)))
    except InstanceTooLargeError:
        print("(instance too large for the brute-force optimum)")
    for name, part in strategies:
        print(f"{name}: {part.cost(graph)} sub-joins")
    print()
    print("hash partitioning cell grid:")
    print(render_partitioning(graph, dict(strategies)["hash"]))
    return 0


_PREDICATES = {
    "equality": "Equality",
    "overlap": "SpatialOverlap",
    "containment": "SetContainment",
    "set-overlap": "SetOverlap",
}


def _cmd_join(args: argparse.Namespace) -> int:
    from repro.engine import JoinQuery, execute
    from repro.joins import predicates as predicate_module
    from repro.relations.io import format_value, load_relation
    from repro.runtime import Budget, use_budget

    with open(args.left_file) as handle:
        left = load_relation("R", handle.read())
    with open(args.right_file) as handle:
        right = load_relation("S", handle.read())
    if args.predicate == "band":
        predicate = predicate_module.Band(args.band_width)
    else:
        predicate_class = getattr(predicate_module, _PREDICATES[args.predicate])
        predicate = predicate_class()
    budget = Budget(deadline=args.deadline) if args.deadline is not None else None
    with use_budget(budget):
        result = execute(JoinQuery(left, right, predicate))
    print(result.explain_analyze())
    limit = args.limit if args.limit is not None else len(result.rows)
    for a, b in result.rows[:limit]:
        print(f"{format_value(a)}\t{format_value(b)}")
    if limit < len(result.rows):
        print(f"... ({len(result.rows) - limit} more rows)")
    return 0


def _cmd_multiway(args: argparse.Namespace) -> int:
    import json as _json

    from repro.engine import execute_multiway, plan_multiway
    from repro.joins.multiway import agm_bound, fractional_edge_cover
    from repro.runtime import Budget, use_budget
    from repro.workloads.multiway import (
        clique_query,
        four_cycle_query,
        triangle_query,
    )

    if args.instance == "triangle":
        query = triangle_query(args.n, skew=args.skew, seed=args.seed)
    elif args.instance == "4cycle":
        query = four_cycle_query(args.n, skew=args.skew, seed=args.seed)
    else:
        query = clique_query(args.clique_k, args.n, skew=args.skew, seed=args.seed)
    budget = Budget(deadline=args.deadline) if args.deadline is not None else None
    with use_budget(budget):
        if args.algorithm == "auto":
            the_plan = plan_multiway(query)
            result = execute_multiway(
                query, chosen_plan=the_plan, with_trace=not args.no_trace
            )
        else:
            the_plan = None
            result = execute_multiway(
                query, algorithm=args.algorithm, with_trace=not args.no_trace
            )
    cover = fractional_edge_cover(query)
    agm = result.agm if result.agm >= 0 else agm_bound(query)
    if args.json:
        document = {
            "query": query.describe(),
            "instance": args.instance,
            "n": args.n,
            "skew": args.skew,
            "agm_bound": round(agm, 2),
            "fractional_edge_cover": {
                name: str(weight) for name, weight in sorted(cover.items())
            },
            "execution": result.result.as_dict(),
            "plan": None if the_plan is None else the_plan.record.as_dict(),
            "trace": None if result.trace is None else result.trace.as_dict(),
        }
        print(_json.dumps(document, indent=2, sort_keys=True))
        return 0
    print(f"query: {query.describe()}")
    sizes = ", ".join(
        f"|{atom.name}| = {len(atom.distinct_rows())}" for atom in query.atoms
    )
    cover_text = ", ".join(f"w_{name} = {w}" for name, w in sorted(cover.items()))
    print(f"sizes: {sizes}")
    print(f"fractional edge cover: {cover_text}  ->  AGM bound {agm:.1f}")
    if the_plan is not None and the_plan.record is not None:
        print()
        print(the_plan.record.render())
        print()
    run = result.result
    print(
        f"{run.algorithm}: {run.output_size} bindings, "
        f"{run.intermediates} intermediates (AGM bound {agm:.1f}), "
        f"{run.seeks} seeks"
    )
    if run.stage_sizes:
        print(f"cascade stage sizes: {list(run.stage_sizes)}")
    if result.trace is not None:
        t = result.trace
        print(
            f"trace ({t.left_atom} x {t.right_atom}): "
            f"{t.projected_pairs} projected pairs, "
            f"effective cost {t.report.effective_cost} "
            f"(ratio {t.report.cost_ratio:.4f}), "
            f"{t.report.jumps} jumps, beta0 = {t.beta0}"
        )
    limit = args.limit if args.limit is not None else 0
    for row in run.bindings[:limit]:
        print("\t".join(str(v) for v in row))
    if limit and limit < run.output_size:
        print(f"... ({run.output_size - limit} more bindings)")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json as _json

    from repro.obs import planquality as obs_plans

    if args.scenario is not None:
        from repro.obs.bench import SCENARIOS, BenchConfig

        if args.scenario not in SCENARIOS:
            known = ", ".join(sorted(SCENARIOS))
            print(
                f"error: unknown scenario {args.scenario!r} (known: {known})",
                file=sys.stderr,
            )
            return 2
        was_enabled = obs_plans.is_enabled()
        obs_plans.reset()
        obs_plans.enable()
        try:
            SCENARIOS[args.scenario].run(BenchConfig(smoke=True, seed=args.seed))
            records = list(obs_plans.records())
        finally:
            obs_plans.reset()
            if not was_enabled:
                obs_plans.disable()
        if args.json:
            document = {
                "schema": obs_plans.PLAN_SCHEMA,
                "records": [record.as_dict() for record in records],
            }
            print(_json.dumps(document, indent=2, sort_keys=True))
            return 0
        if not records:
            print(f"scenario {args.scenario!r} planned no joins")
            return 0
        for index, record in enumerate(records):
            if index:
                print()
            print(record.render())
        return 0

    if args.left_file is None or args.right_file is None:
        print(
            "error: provide two relation files, or --scenario NAME",
            file=sys.stderr,
        )
        return 2

    from repro.engine import JoinQuery, execute, plan as plan_query
    from repro.joins import predicates as predicate_module
    from repro.relations.io import load_relation
    from repro.runtime import Budget, use_budget

    with open(args.left_file) as handle:
        left = load_relation("R", handle.read())
    with open(args.right_file) as handle:
        right = load_relation("S", handle.read())
    if args.predicate == "band":
        predicate = predicate_module.Band(args.band_width)
    else:
        predicate_class = getattr(predicate_module, _PREDICATES[args.predicate])
        predicate = predicate_class()
    budget = Budget(deadline=args.deadline) if args.deadline is not None else None
    query = JoinQuery(left, right, predicate)
    with use_budget(budget):
        if args.analyze:
            result = execute(query, shadow=args.shadow)
            the_plan = result.plan
        else:
            the_plan = plan_query(query)
    record = the_plan.record
    if args.json:
        document = {
            "schema": obs_plans.PLAN_SCHEMA,
            "records": [] if record is None else [record.as_dict()],
        }
        print(_json.dumps(document, indent=2, sort_keys=True))
    elif record is not None:
        print(record.render())
    else:
        print(the_plan.explain())
    return 0


def _cmd_decide(args: argparse.Namespace) -> int:
    from repro.core.decision import decide_pebble

    with open(args.graph_file) as handle:
        graph = load_bipartite(handle.read())
    decision = decide_pebble(graph, args.k)
    verdict = "YES" if decision.answer else "NO"
    print(f"pi(G) <= {args.k}?  {verdict}  ({decision.reason})")
    if decision.answer and decision.scheme is not None:
        print(
            f"witness scheme: pi = "
            f"{decision.scheme.effective_cost(graph.without_isolated_vertices())}"
        )
    if not decision.answer and decision.lower_bound is not None:
        print(f"certificate: pi(G) >= {decision.lower_bound}")
    return 0


def _cmd_svg(args: argparse.Namespace) -> int:
    from repro.analysis.svg import join_graph_svg, spatial_instance_svg
    from repro.core.solvers.registry import solve

    if args.family is not None:
        from repro.geometry.realize import realize_worst_case_family
        from repro.joins.join_graph import build_join_graph
        from repro.joins.predicates import SpatialOverlap

        left, right = realize_worst_case_family(args.family)
        with open(args.output, "w") as handle:
            handle.write(spatial_instance_svg(left, right))
        print(f"spatial G_{args.family} instance written to {args.output}")
        graph_path = args.output.replace(".svg", "-graph.svg")
        graph = build_join_graph(left, right, SpatialOverlap())
        result = solve(graph, exact_edge_limit=24)
        with open(graph_path, "w") as handle:
            handle.write(join_graph_svg(graph, result.scheme))
        print(f"join graph with scheme order written to {graph_path}")
        return 0
    with open(args.graph_file) as handle:
        graph = load_bipartite(handle.read())
    result = solve(graph)
    with open(args.output, "w") as handle:
        handle.write(join_graph_svg(graph, result.scheme))
    print(f"join graph written to {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import contextlib

    from repro.obs.bench import SCENARIOS, run_bench
    from repro.runtime import FaultPlan, inject

    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name}: {SCENARIOS[name].description}")
        return 0
    harness: contextlib.AbstractContextManager = contextlib.nullcontext()
    if args.fault_seed is not None:
        # Chaos mode: seeded faults at every instrumented site; scenario
        # retry + structured failure records absorb what trips.
        harness = inject(
            FaultPlan(seed=args.fault_seed, rates={"*": args.fault_rate})
        )
    publish_dir = None if args.no_publish else args.publish_dir
    try:
        with harness:
            report, run_dir, bench_path = run_bench(
                smoke=args.smoke,
                seed=args.seed,
                names=args.scenario or None,
                repeats=args.repeat,
                runs_dir=args.runs_dir,
                out_dir=None if args.no_bench_file else args.out_dir,
                scenario_deadline=args.scenario_deadline,
                publish_dir=publish_dir,
                jobs=args.jobs,
                cache_path=args.cache,
            )
    except (KeyError, ValueError) as exc:
        message = exc.args[0] if exc.args else str(exc)
        print(f"error: {message}", file=sys.stderr)
        return 2
    print(report.table().render())
    print(f"\nrun artifacts: {run_dir}/")
    if bench_path is not None:
        print(f"perf trajectory point: {bench_path}")
    if publish_dir is not None:
        print(f"trajectory feed: {publish_dir}/BENCH_*.json (commit to extend)")
    if report.failed:
        names = ", ".join(s.name for s in report.failed)
        print(
            f"error: {len(report.failed)} scenario(s) failed after retry: {names}",
            file=sys.stderr,
        )
        return 1
    return 0


DEFAULT_PROFILE_SCENARIO = "engine-equijoin"


def _run_traced_workload(args: argparse.Namespace) -> list:
    """Run the selected workload under enabled span/metric collection and
    return the recorded spans (collection state is restored afterwards).

    Workload selection, shared by ``profile`` and ``trace``: either a
    graph file solved with ``--method``, or one or more bench scenarios
    (default: the equijoin engine scenario, the same workload shape as
    ``examples/query_engine.py``).
    """
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.bench import SCENARIOS, BenchConfig

    was_trace = obs_trace.is_enabled()
    was_metrics = obs_metrics.is_enabled()
    obs_trace.reset()
    obs_metrics.reset()
    obs_trace.enable()
    obs_metrics.enable()
    try:
        if args.graph:
            from repro.core.solvers.registry import solve

            with open(args.graph) as handle:
                graph = load_bipartite(handle.read())
            with obs_trace.span(
                "workload.pebble", file=args.graph, method=args.method
            ):
                solve(graph, args.method)
        else:
            names = args.scenario or [DEFAULT_PROFILE_SCENARIO]
            for name in names:
                if name not in SCENARIOS:
                    raise KeyError(
                        f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
                    )
            config = BenchConfig(smoke=args.smoke, seed=args.seed)
            for name in names:
                with obs_trace.span(f"workload.{name}", smoke=args.smoke):
                    SCENARIOS[name].run(config)
        return obs_trace.spans()
    finally:
        if not was_trace:
            obs_trace.disable()
        if not was_metrics:
            obs_metrics.disable()


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--scenario",
        action="append",
        help=(
            "bench scenario to run (repeatable; default: "
            f"{DEFAULT_PROFILE_SCENARIO}; see `repro bench --list`)"
        ),
    )
    parser.add_argument(
        "--graph", help="profile a PEBBLE solve on this graph file instead"
    )
    parser.add_argument(
        "--method", default="auto", help="solver method for --graph (default auto)"
    )
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized scenario inputs"
    )
    parser.add_argument("--seed", type=int, default=0)


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import profile as obs_profile
    from repro.obs import trace as obs_trace

    try:
        spans = _run_traced_workload(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    result = obs_profile.profile_spans(spans)
    obs_trace.reset()
    if not result.rows or result.total_self_ns <= 0:
        print("error: no self time recorded (empty workload?)", file=sys.stderr)
        return 1
    print(result.table(top=args.top).render())
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs import export as obs_export
    from repro.obs import trace as obs_trace

    try:
        spans = _run_traced_workload(args)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    obs_trace.reset()
    output = args.output or obs_export.DEFAULT_FILENAMES[args.format]
    if args.format == "perfetto":
        # Self-check before writing: an exported trace that fails the
        # schema gate should never reach disk silently.
        problems = obs_export.validate_chrome_trace(
            obs_export.to_chrome_trace(spans)
        )
        if problems:
            for problem in problems:
                print(f"error: {problem}", file=sys.stderr)
            return 1
    path = obs_export.write_trace(output, args.format, spans)
    print(f"{len(spans)} spans exported to {path} ({args.format})")
    if args.format == "perfetto":
        print("open in https://ui.perfetto.dev or chrome://tracing")
    elif args.format == "folded":
        print("feed to flamegraph.pl to render a flamegraph")
    return 0


def _registry_for(args: argparse.Namespace):
    """An up-to-date in-memory registry over ``--runs-dir``.

    Read-only query commands rebuild from artifacts each invocation (the
    artifacts are the source of truth); only ``runs index`` persists the
    SQLite file for external tooling.
    """
    from repro.obs.registry import RunRegistry

    registry = RunRegistry(":memory:")
    registry.rebuild(args.runs_dir)
    return registry


def _cmd_runs_index(args: argparse.Namespace) -> int:
    from repro.obs.registry import open_registry

    with open_registry(args.runs_dir, db_path=args.db, refresh=True) as registry:
        indexed = registry.runs()
        partial = [r for r in indexed if r["status"] == "partial"]
        print(
            f"indexed {len(indexed)} run(s) from {args.runs_dir}/ "
            f"into {registry.path}"
        )
        for run in partial:
            problems = "; ".join(run["problems"]) or "incomplete artifacts"
            print(f"  partial: {run['run_id']} ({problems})")
    return 0


def _cmd_runs_list(args: argparse.Namespace) -> int:
    import time as _time

    from repro.analysis.report import Table

    registry = _registry_for(args)
    indexed = registry.runs(limit=args.limit)
    if not indexed:
        print(f"no runs indexed under {args.runs_dir}/")
        return 0
    table = Table(
        ["run", "created (UTC)", "commit", "seed", "mode", "status", "scenarios"],
        title=f"runs in {args.runs_dir}/",
    )
    for run in indexed:
        created = (
            "-"
            if run["created_unix"] is None
            else _time.strftime(
                "%Y-%m-%d %H:%M:%S", _time.gmtime(run["created_unix"])
            )
        )
        sha = run["git_sha"]
        table.add_row(
            [
                run["run_id"],
                created,
                sha[:10] + ("-dirty" if sha.endswith("-dirty") else ""),
                run["seed"] if run["seed"] is not None else "-",
                run["mode"] or "-",
                run["status"],
                len(registry.scenarios_for(run["run_id"])),
            ]
        )
    print(table.render())
    return 0


def _cmd_runs_show(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.analysis.report import Table

    registry = _registry_for(args)
    run = registry.run(args.run_id)
    if run is None:
        print(f"error: no run {args.run_id!r} under {args.runs_dir}/", file=sys.stderr)
        return 2
    print(f"run {run['run_id']}  [{run['status']}]")
    print(f"  git SHA: {run['git_sha']}")
    print(f"  seed: {run['seed']}  mode: {run['mode'] or '-'}")
    print(f"  path: {run['path']}")
    print(f"  artifacts: {', '.join(run['artifacts']) or 'none'}")
    for problem in run["problems"]:
        print(f"  problem: {problem}")
    scenarios = registry.scenarios_for(run["run_id"])
    if scenarios:
        table = Table(["scenario", "status", "best ms", "mean ms", "repeats"])
        for entry in scenarios:
            table.add_row(
                [
                    entry["scenario"],
                    entry["status"],
                    "-" if entry["best_ns"] is None else round(entry["best_ns"] / 1e6, 3),
                    "-" if entry["mean_ns"] is None else round(entry["mean_ns"] / 1e6, 3),
                    entry["repeats"] if entry["repeats"] is not None else "-",
                ]
            )
        print()
        print(table.render())
    events_path = Path(run["path"]) / "events.jsonl"
    if events_path.is_file():
        counts: dict[str, int] = {}
        for line in events_path.read_text().splitlines():
            if not line.strip():
                continue
            try:
                record = _json.loads(line)
            except _json.JSONDecodeError:
                continue
            name = record.get("name", "?")
            counts[name] = counts.get(name, 0) + 1
        print()
        print(f"events ({sum(counts.values())} recorded):")
        for name in sorted(counts):
            print(f"  {name}: {counts[name]}")
    return 0


def _cmd_runs_compare(args: argparse.Namespace) -> int:
    from repro.analysis.report import Table

    registry = _registry_for(args)
    for run_id in (args.run_a, args.run_b):
        if registry.run(run_id) is None:
            print(
                f"error: no run {run_id!r} under {args.runs_dir}/", file=sys.stderr
            )
            return 2
    from repro.obs.registry import DEFAULT_TOLERANCE

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    rows = registry.compare(args.run_a, args.run_b, tolerance=tolerance)
    table = Table(
        ["scenario", "a best ms", "b best ms", "ratio", "verdict"],
        title=f"{args.run_a} -> {args.run_b}",
    )
    regressions = 0
    for row in rows:
        if row["verdict"] in ("REGRESSION", "FAILED", "MISSING"):
            regressions += 1
        table.add_row(
            [
                row["scenario"],
                "-" if row["a_ns"] is None else round(row["a_ns"] / 1e6, 3),
                "-" if row["b_ns"] is None else round(row["b_ns"] / 1e6, 3),
                "-" if row["ratio"] is None else f"{row['ratio']:.2f}x",
                row["verdict"],
            ]
        )
    print(table.render())
    if regressions:
        print(f"{regressions} regression(s)", file=sys.stderr)
        return 1
    return 0


def _cmd_runs_trend(args: argparse.Namespace) -> int:
    import time as _time

    from repro.analysis.report import Table

    registry = _registry_for(args)
    scenario_names = registry.scenario_names()
    if args.scenario not in scenario_names:
        known = ", ".join(scenario_names) or "none indexed"
        print(
            f"error: no runs recorded scenario {args.scenario!r} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2
    from repro.obs.registry import DEFAULT_TOLERANCE

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    points = registry.trend(
        args.scenario,
        metric=f"{args.metric}_ns",
        tolerance=tolerance,
        limit=args.limit,
    )
    table = Table(
        ["run", "created (UTC)", "commit", f"{args.metric} ms", "vs prev", "verdict"],
        title=f"trend: {args.scenario} ({len(points)} run(s))",
    )
    for point in points:
        created = (
            "-"
            if point["created_unix"] is None
            else _time.strftime(
                "%Y-%m-%d %H:%M:%S", _time.gmtime(point["created_unix"])
            )
        )
        table.add_row(
            [
                point["run_id"],
                created,
                point["git_sha"][:10],
                "-"
                if point["value_ns"] is None
                else round(point["value_ns"] / 1e6, 3),
                "-" if point["ratio"] is None else f"{point['ratio']:.2f}x",
                point["verdict"],
            ]
        )
    print(table.render())
    return 0


def _cmd_runs_plan_quality(args: argparse.Namespace) -> int:
    import time as _time

    from repro.analysis.report import Table

    registry = _registry_for(args)
    predicates = registry.plan_predicates()
    if not predicates:
        print(f"no plan records indexed under {args.runs_dir}/")
        return 0
    if args.predicate is not None and args.predicate not in predicates:
        known = ", ".join(predicates)
        print(
            f"error: no runs recorded predicate {args.predicate!r} "
            f"(known: {known})",
            file=sys.stderr,
        )
        return 2
    from repro.obs.registry import DEFAULT_TOLERANCE

    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    selected = [args.predicate] if args.predicate is not None else predicates
    for index, predicate in enumerate(selected):
        points = registry.plan_trend(
            predicate,
            metric=args.metric,
            tolerance=tolerance,
            limit=args.limit,
        )
        table = Table(
            ["run", "created (UTC)", "commit", args.metric, "vs prev", "verdict"],
            title=f"plan quality: {predicate} / {args.metric} "
            f"({len(points)} run(s))",
        )
        for point in points:
            created = (
                "-"
                if point["created_unix"] is None
                else _time.strftime(
                    "%Y-%m-%d %H:%M:%S", _time.gmtime(point["created_unix"])
                )
            )
            table.add_row(
                [
                    point["run_id"],
                    created,
                    point["git_sha"][:10],
                    "-" if point["value"] is None else round(point["value"], 4),
                    "-" if point["ratio"] is None else f"{point['ratio']:.2f}x",
                    point["verdict"],
                ]
            )
        if index:
            print()
        print(table.render())
    return 0


def _cmd_runs_trace_request(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.obs import export as obs_export

    registry = _registry_for(args)
    run = registry.run(args.run_id)
    if run is None:
        print(f"error: no run {args.run_id!r} under {args.runs_dir}/", file=sys.stderr)
        return 2
    trace_path = Path(run["path"]) / "trace.jsonl"
    if not trace_path.is_file():
        print(
            f"error: {trace_path} missing (serve with --run-dir to record "
            "traces)",
            file=sys.stderr,
        )
        return 2
    records: list[dict] = []
    for line in trace_path.read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        try:
            record = _json.loads(line)
        except _json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            records.append(record)
    try:
        document = obs_export.request_trace(records, args.request_id)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    problems = obs_export.validate_chrome_trace(document)
    if problems:
        for problem in problems:
            print(f"error: {problem}", file=sys.stderr)
        return 1
    output = args.output or f"trace-{args.request_id}.json"
    Path(output).write_text(
        _json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    spans = document["otherData"]["spans"]
    trace_ids = document["otherData"]["trace_ids"]
    print(
        f"request {args.request_id}: {spans} span(s), "
        f"trace {', '.join(trace_ids)} -> {output}"
    )
    print("open in https://ui.perfetto.dev or chrome://tracing")
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    import time as _time

    from repro.analysis.report import Table
    from repro.obs.telemetry import parse_exposition
    from repro.server.client import ServeClient

    if args.unix is None and args.port is None:
        print("error: --port or --unix is required", file=sys.stderr)
        return 2

    def _series(families, name) -> dict[str, float]:
        family = families.get(name)
        if family is None:
            return {}
        return {
            sample.labels.get("op", ""): sample.value
            for sample in family.samples
        }

    def _scalar(families, name) -> float | None:
        family = families.get(name)
        if family is None or not family.samples:
            return None
        return family.samples[0].value

    def _render(text: str) -> str:
        families, _problems = parse_exposition(text)
        requests = _series(families, "repro_server_requests_total")
        rps = _series(families, "repro_server_window_rps")
        error_rate = _series(families, "repro_server_window_error_rate")
        p50 = _series(families, "repro_server_window_p50_ms")
        p99 = _series(families, "repro_server_window_p99_ms")
        uptime = _scalar(families, "repro_server_uptime_seconds")
        queue = _scalar(families, "repro_server_queue_depth")
        jobs = _scalar(families, "repro_server_jobs")
        rejected = _scalar(families, "repro_server_admission_rejected_total")
        header = (
            f"uptime {uptime:.0f}s" if uptime is not None else "uptime -"
        )
        if jobs is not None:
            header += f"  jobs {jobs:.0f}"
        if queue is not None:
            header += f"  queue {queue:.0f}"
        if rejected is not None:
            header += f"  rejected {rejected:.0f}"
        table = Table(
            ["op", "requests", "rps", "err%", "p50 ms", "p99 ms"],
            title=header,
        )
        for op in sorted(requests):
            table.add_row(
                [
                    op,
                    int(requests[op]),
                    round(rps.get(op, 0.0), 2),
                    round(error_rate.get(op, 0.0) * 100.0, 1),
                    "-" if op not in p50 else round(p50[op], 3),
                    "-" if op not in p99 else round(p99[op], 3),
                ]
            )
        return table.render()

    iterations = 1 if args.once else args.iterations
    polls = 0
    try:
        with ServeClient(
            host=args.host, port=args.port, unix_path=args.unix
        ) as client:
            while True:
                response = client.metrics()
                if not response.get("ok"):
                    error = response.get("error", {})
                    print(
                        f"error: {error.get('code')}: {error.get('message')}",
                        file=sys.stderr,
                    )
                    return 1
                rendered = _render(response["result"]["text"])
                if not args.once:
                    # ANSI home+clear keeps one live table; --once stays
                    # pipe-friendly for scripts and tests.
                    print("\x1b[H\x1b[2J", end="")
                print(rendered, flush=True)
                polls += 1
                if iterations is not None and polls >= iterations:
                    return 0
                _time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.registry import DEFAULT_TOLERANCE
    from repro.obs.report_html import write_report

    registry = _registry_for(args)
    runs = registry.runs()
    tolerance = args.tolerance if args.tolerance is not None else DEFAULT_TOLERANCE
    path = write_report(registry, args.output, tolerance=tolerance)
    print(
        f"report written to {path} ({len(runs)} run(s), "
        f"{len(registry.scenario_names())} scenario(s))"
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.obs import events as obs_events
    from repro.obs import metrics as obs_metrics
    from repro.obs import trace as obs_trace
    from repro.obs.telemetry import TelemetryWindow
    from repro.parallel.cache import SolveCache
    from repro.server.admission import AdmissionController
    from repro.server.server import SolveServer

    if args.unix is not None and args.port is not None:
        print("error: --port and --unix are mutually exclusive", file=sys.stderr)
        return 2
    if (
        args.journal is not None
        and args.recover is not None
        and args.journal != args.recover
    ):
        print(
            "error: --journal and --recover name different directories",
            file=sys.stderr,
        )
        return 2
    journal_dir = args.recover if args.recover is not None else args.journal
    if args.run_dir is not None:
        # A run directory makes the server an observed run: events.jsonl,
        # metrics.json, and trace.jsonl land there on shutdown,
        # registry-compatible (traces feed `repro runs trace-request`).
        obs_metrics.reset()
        obs_metrics.enable()
        obs_events.reset()
        obs_events.enable()
        obs_trace.reset()
        obs_trace.enable()
        from pathlib import Path

        obs_events.set_run_id(Path(args.run_dir).name)
    port = args.port
    if args.unix is None and port is None:
        port = 0  # ephemeral; the bound port is printed on start
    cache = SolveCache(path=args.cache)
    server = SolveServer(
        host=args.host,
        port=port if args.unix is None else None,
        unix_path=args.unix,
        jobs=args.jobs,
        cache=cache,
        admission=AdmissionController(
            max_queue_depth=args.max_queue_depth,
            max_inflight_bytes=args.max_inflight_bytes,
        ),
        default_deadline=args.default_deadline,
        run_dir=args.run_dir,
        journal_dir=journal_dir,
        recover=args.recover is not None,
        telemetry=TelemetryWindow(window_seconds=args.metrics_window),
    )

    async def _main() -> None:
        await server.start()
        address = server.address
        if isinstance(address, tuple):
            print(f"serving on {address[0]}:{address[1]}", flush=True)
        else:
            print(f"serving on unix:{address}", flush=True)
        await server.run_until_shutdown()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("interrupted; shutting down")
    finally:
        cache.close()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    import json

    from repro.server.client import ServeClient
    from repro.server.protocol import SOLVE_OPS

    if args.unix is None and args.port is None:
        print("error: --port or --unix is required", file=sys.stderr)
        return 2
    if args.op == "load":
        from repro.workloads.loadgen import LoadSpec, run_load

        spec = LoadSpec(
            requests=args.requests,
            concurrency=args.concurrency,
            deadline=args.deadline,
            seed=args.seed,
            retries=args.retries,
        )
        result = run_load(
            spec, host=args.host, port=args.port, unix_path=args.unix
        )
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return 0 if result.errors == 0 else 1
    if args.op in SOLVE_OPS and not args.graph_files:
        print(f"error: op {args.op!r} needs graph file(s)", file=sys.stderr)
        return 2
    if args.op == "explain" and len(args.graph_files) != 2:
        print(
            "error: op 'explain' needs a left and a right relation file",
            file=sys.stderr,
        )
        return 2
    retry = None
    if args.retries > 0:
        from repro.runtime.retry import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retries + 1, seed=args.seed)
    exit_code = 0
    with ServeClient(
        host=args.host, port=args.port, unix_path=args.unix, retry=retry
    ) as client:
        if args.op in SOLVE_OPS:
            for path in args.graph_files:
                with open(path) as handle:
                    graph_text = handle.read()
                response = client.request(
                    args.op,
                    graph_text,
                    method=args.method,
                    deadline=args.deadline,
                )
                if response.get("ok"):
                    result = response["result"]
                    line = (
                        f"{path}: pi={result['effective_cost']} "
                        f"({result['status']}, {result['components']} "
                        f"component(s), {result['cached_components']} cached)"
                    )
                    print(line)
                else:
                    error = response.get("error", {})
                    print(
                        f"{path}: error: {error.get('code')}: "
                        f"{error.get('message')}",
                        file=sys.stderr,
                    )
                    exit_code = 1
        elif args.op == "explain":
            with open(args.graph_files[0]) as handle:
                left_text = handle.read()
            with open(args.graph_files[1]) as handle:
                right_text = handle.read()
            response = client.explain(
                left_text,
                right_text,
                predicate=args.predicate,
                band_width=args.band_width,
                analyze=args.analyze,
                deadline=args.deadline,
            )
            if response.get("ok"):
                result = response["result"]
                if args.json:
                    print(json.dumps(result, indent=2, sort_keys=True))
                else:
                    print(result.get("render") or result["explain"])
            else:
                error = response.get("error", {})
                print(
                    f"error: {error.get('code')}: {error.get('message')}",
                    file=sys.stderr,
                )
                exit_code = 1
        else:
            response = client.request(args.op)
            if response.get("ok"):
                if args.op == "metrics":
                    # The exposition is already a text document; print it
                    # verbatim (scrape-able), not JSON-wrapped.
                    print(response["result"]["text"], end="")
                else:
                    print(json.dumps(response["result"], indent=2, sort_keys=True))
            else:
                error = response.get("error", {})
                print(
                    f"error: {error.get('code')}: {error.get('message')}",
                    file=sys.stderr,
                )
                exit_code = 1
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-pebble",
        description="Join-predicate pebbling (PODS 2001 reproduction)",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    pebble = commands.add_parser("pebble", help="solve PEBBLE on a graph file")
    pebble.add_argument("graph_file")
    pebble.add_argument("--method", default="auto")
    pebble.add_argument("--show-scheme", action="store_true")
    pebble.add_argument("--save", help="write the scheme to this file")
    pebble.add_argument(
        "--deadline",
        type=float,
        help="wall-clock budget in seconds (anytime: degrades, never fails)",
    )
    pebble.add_argument(
        "--node-budget",
        type=int,
        help="cooperative search-node budget (anytime)",
    )
    pebble.set_defaults(func=_cmd_pebble)

    solve_cmd = commands.add_parser(
        "solve", help="batch-solve PEBBLE on many graph files (parallel service)"
    )
    solve_cmd.add_argument("graph_files", nargs="+")
    solve_cmd.add_argument("--method", default="auto")
    solve_cmd.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for per-component solves (default 1 = inline)",
    )
    solve_cmd.add_argument(
        "--deadline",
        type=float,
        help="wall-clock budget in seconds for the whole batch "
        "(split cooperatively across workers)",
    )
    solve_cmd.add_argument(
        "--cache",
        nargs="?",
        const=".solve-cache.db",
        help="persistent solve cache path (flag alone: .solve-cache.db)",
    )
    solve_cmd.set_defaults(func=_cmd_solve)

    demo = commands.add_parser("demo", help="guided tour of the three join classes")
    demo.set_defaults(func=_cmd_demo)

    family = commands.add_parser("family", help="inspect the worst-case family G_n")
    family.add_argument("n", type=int)
    family.set_defaults(func=_cmd_family)

    experiments = commands.add_parser("experiments", help="run all paper experiments")
    experiments.set_defaults(func=_cmd_experiments)

    render = commands.add_parser("render", help="draw a graph and its scheme")
    render.add_argument("graph_file")
    render.set_defaults(func=_cmd_render)

    partition = commands.add_parser(
        "partition", help="compare partitioned-join mappings (§5)"
    )
    partition.add_argument("graph_file")
    partition.add_argument("-p", type=int, default=2)
    partition.add_argument("-q", type=int, default=2)
    partition.set_defaults(func=_cmd_partition)

    join = commands.add_parser("join", help="join two relation files")
    join.add_argument("left_file")
    join.add_argument("right_file")
    join.add_argument(
        "--predicate",
        default="equality",
        choices=sorted(_PREDICATES) + ["band"],
    )
    join.add_argument("--band-width", type=float, default=0.0)
    join.add_argument("--limit", type=int, help="print at most this many rows")
    join.add_argument(
        "--deadline",
        type=float,
        help="wall-clock budget in seconds for planning + execution",
    )
    join.set_defaults(func=_cmd_join)

    multiway = commands.add_parser(
        "multiway",
        help="evaluate a cyclic conjunctive query with the WCOJ engine",
    )
    multiway.add_argument(
        "--instance",
        default="triangle",
        choices=["triangle", "4cycle", "clique"],
        help="query shape (default: triangle)",
    )
    multiway.add_argument(
        "--n", type=int, default=200, help="rows per relation (default: 200)"
    )
    multiway.add_argument(
        "--skew",
        default="worst-case",
        choices=["uniform", "zipf", "worst-case"],
        help="row distribution (default: worst-case, the AGM-tight instance)",
    )
    multiway.add_argument(
        "--clique-k",
        type=int,
        default=4,
        help="clique size for --instance clique (default: 4)",
    )
    multiway.add_argument(
        "--algorithm",
        default="auto",
        choices=["auto", "lftj", "generic", "binary-cascade"],
        help="force an algorithm instead of planning (default: auto)",
    )
    multiway.add_argument("--seed", type=int, default=0)
    multiway.add_argument(
        "--limit", type=int, help="print at most this many result bindings"
    )
    multiway.add_argument(
        "--no-trace",
        action="store_true",
        help="skip the pebbling-trace projection",
    )
    multiway.add_argument(
        "--deadline",
        type=float,
        help="wall-clock budget in seconds for planning + execution",
    )
    multiway.add_argument("--json", action="store_true")
    multiway.set_defaults(func=_cmd_multiway)

    explain = commands.add_parser(
        "explain",
        help="render a join's structured plan record (tree or repro-plan/v1 JSON)",
    )
    explain.add_argument("left_file", nargs="?")
    explain.add_argument("right_file", nargs="?")
    explain.add_argument(
        "--predicate",
        default="equality",
        choices=sorted(_PREDICATES) + ["band"],
    )
    explain.add_argument("--band-width", type=float, default=0.0)
    explain.add_argument(
        "--analyze",
        action="store_true",
        help="execute the join so the record carries actuals and q-error",
    )
    explain.add_argument(
        "--shadow",
        action="store_true",
        help="with --analyze: shadow-execute runner-up candidates "
        "to measure plan regret",
    )
    explain.add_argument(
        "--deadline",
        type=float,
        help="wall-clock budget in seconds for planning + execution",
    )
    explain.add_argument(
        "--scenario",
        help="instead of relation files: run this bench scenario "
        "(smoke-sized) under plan logging and explain every join it plans",
    )
    explain.add_argument(
        "--seed", type=int, default=0, help="scenario mode: input seed"
    )
    explain.add_argument(
        "--json",
        action="store_true",
        help="emit the repro-plan/v1 record document instead of text",
    )
    explain.set_defaults(func=_cmd_explain)

    decide = commands.add_parser(
        "decide", help="PEBBLE(D): decide pi(G) <= K (Def 4.1)"
    )
    decide.add_argument("graph_file")
    decide.add_argument("k", type=int)
    decide.set_defaults(func=_cmd_decide)

    svg = commands.add_parser("svg", help="write an SVG of a graph or family")
    svg.add_argument("graph_file", nargs="?")
    svg.add_argument("--family", type=int, help="render the spatial G_n instance")
    svg.add_argument("-o", "--output", default="out.svg")
    svg.set_defaults(func=_cmd_svg)

    bench = commands.add_parser(
        "bench", help="run the observability bench harness"
    )
    bench.add_argument(
        "--smoke", action="store_true", help="CI-sized inputs, one repeat"
    )
    bench.add_argument(
        "--scenario",
        action="append",
        help="run only this scenario (repeatable; default: all)",
    )
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--repeat", type=int, help="timing repeats per scenario (default 3, smoke 1)"
    )
    bench.add_argument(
        "--runs-dir", default="runs", help="where run manifests are written"
    )
    bench.add_argument(
        "--out-dir", default=".", help="where BENCH_<date>.json is written"
    )
    bench.add_argument(
        "--no-bench-file",
        action="store_true",
        help="skip the top-level BENCH_<date>.json",
    )
    bench.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    bench.add_argument(
        "--scenario-deadline",
        type=float,
        default=60.0,
        help="ambient wall-clock budget per scenario attempt (seconds)",
    )
    bench.add_argument(
        "--fault-seed",
        type=int,
        help="chaos mode: inject seeded faults at instrumented sites",
    )
    bench.add_argument(
        "--fault-rate",
        type=float,
        default=0.2,
        help="per-site failure probability in chaos mode (default 0.2)",
    )
    bench.add_argument(
        "--publish-dir",
        default="benchmarks/results",
        help=(
            "tracked perf-trajectory directory the canonical snapshot is "
            "published to (default benchmarks/results)"
        ),
    )
    bench.add_argument(
        "--no-publish",
        action="store_true",
        help="skip publishing the snapshot to the trajectory feed",
    )
    bench.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for batch scenarios (results are "
        "jobs-invariant; only timings change)",
    )
    bench.add_argument(
        "--cache",
        nargs="?",
        const=".solve-cache.db",
        help="install a persistent solve cache for the run "
        "(flag alone: .solve-cache.db); warm runs emit cache.hit events",
    )
    bench.set_defaults(func=_cmd_bench)

    profile = commands.add_parser(
        "profile", help="run a workload and print its self-time profile"
    )
    _add_workload_arguments(profile)
    profile.add_argument(
        "--top", type=int, default=15, help="rows to print (default 15)"
    )
    profile.set_defaults(func=_cmd_profile)

    trace = commands.add_parser(
        "trace", help="run a workload and export its trace"
    )
    _add_workload_arguments(trace)
    trace.add_argument(
        "--format",
        default="perfetto",
        choices=["perfetto", "folded", "jsonl"],
        help="perfetto = Chrome trace-event JSON (default)",
    )
    trace.add_argument(
        "-o",
        "--output",
        help="output file (default: trace.json / trace.folded / trace.jsonl)",
    )
    trace.set_defaults(func=_cmd_trace)

    runs = commands.add_parser(
        "runs", help="query the cross-run registry (runs/ directories)"
    )
    runs_commands = runs.add_subparsers(dest="runs_command", required=True)

    def _runs_common(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--runs-dir", default="runs", help="run-manifest directory (default runs)"
        )

    runs_index = runs_commands.add_parser(
        "index", help="(re)build the persistent SQLite index runs/registry.db"
    )
    _runs_common(runs_index)
    runs_index.add_argument(
        "--db", help="registry database path (default <runs-dir>/registry.db)"
    )
    runs_index.set_defaults(func=_cmd_runs_index)

    runs_list = runs_commands.add_parser("list", help="list indexed runs")
    _runs_common(runs_list)
    runs_list.add_argument(
        "--limit", type=int, help="show only the newest N runs"
    )
    runs_list.set_defaults(func=_cmd_runs_list)

    runs_show = runs_commands.add_parser(
        "show", help="one run's provenance, scenarios, and event summary"
    )
    _runs_common(runs_show)
    runs_show.add_argument("run_id")
    runs_show.set_defaults(func=_cmd_runs_show)

    runs_compare = runs_commands.add_parser(
        "compare", help="scenario-by-scenario diff of two runs"
    )
    _runs_common(runs_compare)
    runs_compare.add_argument("run_a")
    runs_compare.add_argument("run_b")
    runs_compare.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed slowdown fraction (default: the perf-gate threshold)",
    )
    runs_compare.set_defaults(func=_cmd_runs_compare)

    runs_trend = runs_commands.add_parser(
        "trend", help="one scenario's timing series across runs"
    )
    _runs_common(runs_trend)
    runs_trend.add_argument(
        "--scenario", required=True, help="bench scenario name"
    )
    runs_trend.add_argument(
        "--metric", default="best", choices=["best", "mean"],
        help="wall-clock statistic to trend (default best)",
    )
    runs_trend.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed slowdown fraction (default: the perf-gate threshold)",
    )
    runs_trend.add_argument(
        "--limit", type=int, help="only the newest N points"
    )
    runs_trend.set_defaults(func=_cmd_runs_trend)

    runs_plan_quality = runs_commands.add_parser(
        "plan-quality",
        help="per-predicate q-error / choice-accuracy calibration across runs",
    )
    _runs_common(runs_plan_quality)
    runs_plan_quality.add_argument(
        "--predicate", help="only this predicate class (default: all)"
    )
    runs_plan_quality.add_argument(
        "--metric",
        default="q_p90",
        choices=["q_p50", "q_p90", "q_max", "misestimates", "choice_accuracy"],
        help="calibration statistic to trend (default q_p90)",
    )
    runs_plan_quality.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed worsening fraction (default: the perf-gate threshold)",
    )
    runs_plan_quality.add_argument(
        "--limit", type=int, help="only the newest N points"
    )
    runs_plan_quality.set_defaults(func=_cmd_runs_plan_quality)

    runs_trace_request = runs_commands.add_parser(
        "trace-request",
        help="assemble one request's Chrome trace from a server run's "
        "trace.jsonl (server dispatch + worker solver spans)",
    )
    _runs_common(runs_trace_request)
    runs_trace_request.add_argument("run_id")
    runs_trace_request.add_argument("request_id")
    runs_trace_request.add_argument(
        "-o",
        "--output",
        help="output file (default trace-<request_id>.json)",
    )
    runs_trace_request.set_defaults(func=_cmd_runs_trace_request)

    report = commands.add_parser(
        "report", help="render the cross-run HTML dashboard"
    )
    report.add_argument(
        "--html",
        action="store_true",
        help="emit the self-contained HTML dashboard (the only format; "
        "accepted for forward compatibility)",
    )
    report.add_argument(
        "-o", "--output", default="report.html", help="output file (default report.html)"
    )
    report.add_argument(
        "--runs-dir", default="runs", help="run-manifest directory (default runs)"
    )
    report.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="regression threshold (default: the perf-gate threshold)",
    )
    report.set_defaults(func=_cmd_report)

    serve = commands.add_parser(
        "serve", help="run the persistent solve server (NDJSON protocol)"
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="TCP bind host (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        help="TCP port (0 = ephemeral, printed on start)",
    )
    serve.add_argument("--unix", help="serve on this Unix socket path instead")
    serve.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes shared by all requests (default 1 = inline)",
    )
    serve.add_argument(
        "--cache",
        nargs="?",
        const=".solve-cache.db",
        help="persistent solve-cache path (flag alone: .solve-cache.db); "
        "the in-memory tier is always on",
    )
    serve.add_argument(
        "--max-queue-depth",
        type=int,
        default=64,
        help="admitted-but-unfinished request limit (default 64)",
    )
    serve.add_argument(
        "--max-inflight-bytes",
        type=int,
        default=32 * 1024 * 1024,
        help="summed wire bytes of admitted requests (default 32 MiB)",
    )
    serve.add_argument(
        "--default-deadline",
        type=float,
        help="per-request deadline in seconds when the request sets none",
    )
    serve.add_argument(
        "--run-dir",
        help="record this server run: events.jsonl + metrics.json are "
        "written here on shutdown",
    )
    serve.add_argument(
        "--journal",
        metavar="DIR",
        help="write-ahead request journal directory: every admitted "
        "request is fsync'd there before solving starts",
    )
    serve.add_argument(
        "--recover",
        metavar="DIR",
        help="replay admitted-but-unanswered requests from this journal "
        "directory on startup (implies --journal DIR)",
    )
    serve.add_argument(
        "--metrics",
        action="store_true",
        help="serve live telemetry via the 'metrics' op (always on; "
        "accepted for explicitness and forward compatibility)",
    )
    serve.add_argument(
        "--metrics-window",
        type=float,
        default=60.0,
        metavar="SECONDS",
        help="rolling window for rps/error-rate/latency telemetry "
        "(default 60)",
    )
    serve.set_defaults(func=_cmd_serve)

    top = commands.add_parser(
        "top", help="live per-op telemetry of a running solve server"
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, help="server TCP port")
    top.add_argument("--unix", help="server Unix socket path")
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--iterations",
        type=int,
        help="stop after this many polls (default: until interrupted)",
    )
    top.add_argument(
        "--once",
        action="store_true",
        help="poll once, print the table, exit (no screen clearing)",
    )
    top.set_defaults(func=_cmd_top)

    client = commands.add_parser(
        "client", help="send requests to a running solve server"
    )
    client.add_argument(
        "op",
        choices=[
            "solve",
            "plan",
            "explain",
            "ping",
            "stats",
            "metrics",
            "shutdown",
            "load",
        ],
    )
    client.add_argument(
        "graph_files",
        nargs="*",
        help="graph file(s) for solve/plan; left and right relation "
        "files for explain",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, help="server TCP port")
    client.add_argument("--unix", help="server Unix socket path")
    client.add_argument("--method", default="auto")
    client.add_argument(
        "--predicate",
        default="equality",
        choices=sorted(_PREDICATES) + ["band"],
        help="explain op: join predicate",
    )
    client.add_argument(
        "--band-width", type=float, default=0.0, help="explain op: band width"
    )
    client.add_argument(
        "--analyze",
        action="store_true",
        help="explain op: execute the join so the record carries actuals",
    )
    client.add_argument(
        "--json",
        action="store_true",
        help="explain op: print the full result JSON instead of the render",
    )
    client.add_argument(
        "--deadline", type=float, help="per-request deadline in seconds"
    )
    client.add_argument(
        "--requests", type=int, default=40, help="load mode: request count"
    )
    client.add_argument(
        "--concurrency", type=int, default=4, help="load mode: client count"
    )
    client.add_argument("--seed", type=int, default=0, help="load mode: mix seed")
    client.add_argument(
        "--retries",
        type=int,
        default=0,
        help="retry attempts after the first try on connection loss or "
        "overload (default 0 = never retry)",
    )
    client.set_defaults(func=_cmd_client)
    return parser


def main(argv: list[str] | None = None) -> int:
    """Parse and dispatch; library failures surface as one clean ``error:``
    line and a nonzero exit, never a traceback (chaos tests enforce this)."""
    from repro.errors import ReproError

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
