"""Spatial workloads: rectangle ensembles with controllable overlap shape.

- uniform — rectangles scattered uniformly over a square extent;
- clustered — Gaussian clusters (mimicking urban map data);
- map overlay — two jittered grid tilings joined against each other, the
  classic "road map vs census tracts" overlay scenario from the spatial
  join literature ([3, 8, 13] in the paper).
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.geometry.primitives import Rectangle
from repro.relations.relation import Relation


def _uniform_rect(rng: random.Random, extent: float, mean_side: float) -> Rectangle:
    w = rng.uniform(0.2 * mean_side, 1.8 * mean_side)
    h = rng.uniform(0.2 * mean_side, 1.8 * mean_side)
    x = rng.uniform(0, extent - w)
    y = rng.uniform(0, extent - h)
    return Rectangle(x, y, x + w, y + h)


def sessions_interval_workload(
    n_left: int,
    n_right: int,
    horizon: float = 1000.0,
    mean_length: float = 20.0,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """A temporal-join workload: random "session" intervals on a timeline.

    Both relations hold closed intervals with exponentially distributed
    lengths, the typical shape of session/meeting overlap joins.
    """
    from repro.geometry.interval import Interval

    if n_left < 1 or n_right < 1:
        raise WorkloadError("sizes must be positive")
    if mean_length <= 0 or horizon <= mean_length:
        raise WorkloadError("horizon must comfortably exceed the session length")
    rng = random.Random(seed)

    def session() -> Interval:
        length = min(rng.expovariate(1.0 / mean_length), horizon / 2)
        start = rng.uniform(0, horizon - length)
        return Interval(start, start + length)

    return (
        Relation("R", [session() for _ in range(n_left)]),
        Relation("S", [session() for _ in range(n_right)]),
    )


def uniform_rectangles_workload(
    n_left: int,
    n_right: int,
    extent: float = 100.0,
    mean_side: float = 3.0,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Uniformly scattered rectangles on both sides."""
    if n_left < 1 or n_right < 1:
        raise WorkloadError("sizes must be positive")
    if mean_side <= 0 or extent <= mean_side * 2:
        raise WorkloadError("extent must comfortably exceed the object size")
    rng = random.Random(seed)
    return (
        Relation("R", [_uniform_rect(rng, extent, mean_side) for _ in range(n_left)]),
        Relation("S", [_uniform_rect(rng, extent, mean_side) for _ in range(n_right)]),
    )


def clustered_rectangles_workload(
    n_left: int,
    n_right: int,
    clusters: int = 5,
    extent: float = 100.0,
    cluster_sigma: float = 4.0,
    mean_side: float = 2.0,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Rectangles gathered in Gaussian clusters shared by both relations.

    Clustered inputs make spatial join graphs dense within clusters and
    empty across them — the spatial analogue of key skew.
    """
    if clusters < 1:
        raise WorkloadError("need at least one cluster")
    rng = random.Random(seed)
    centers = [
        (rng.uniform(10, extent - 10), rng.uniform(10, extent - 10))
        for _ in range(clusters)
    ]

    def clustered_rect() -> Rectangle:
        cx, cy = centers[rng.randrange(clusters)]
        x = min(max(rng.gauss(cx, cluster_sigma), 0), extent - mean_side)
        y = min(max(rng.gauss(cy, cluster_sigma), 0), extent - mean_side)
        w = rng.uniform(0.5 * mean_side, 1.5 * mean_side)
        h = rng.uniform(0.5 * mean_side, 1.5 * mean_side)
        return Rectangle(x, y, x + w, y + h)

    return (
        Relation("R", [clustered_rect() for _ in range(n_left)]),
        Relation("S", [clustered_rect() for _ in range(n_right)]),
    )


def map_overlay_workload(
    tiles_left: int = 8,
    tiles_right: int = 10,
    extent: float = 100.0,
    jitter: float = 0.5,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Two jittered grid tilings of the same extent.

    ``R`` partitions the extent into ``tiles_left × tiles_left`` cells and
    ``S`` into ``tiles_right × tiles_right``; cell borders are jittered so
    overlaps are generic.  Every R-cell overlaps the S-cells it straddles —
    a realistic polygon-overlay join whose join graph is grid-like.
    """
    if tiles_left < 1 or tiles_right < 1:
        raise WorkloadError("tile counts must be positive")
    rng = random.Random(seed)

    def tiling(name: str, tiles: int) -> Relation:
        step = extent / tiles
        cells = []
        for i in range(tiles):
            for j in range(tiles):
                jx = rng.uniform(-jitter, jitter)
                jy = rng.uniform(-jitter, jitter)
                cells.append(
                    Rectangle(
                        max(0.0, i * step + jx),
                        max(0.0, j * step + jy),
                        min(extent, (i + 1) * step + jx),
                        min(extent, (j + 1) * step + jy),
                    )
                )
        return Relation(name, cells)

    return tiling("R", tiles_left), tiling("S", tiles_right)
