"""Workload generators: realistic join inputs for the three predicate classes.

Every generator is deterministic given a seed and returns plain
:class:`~repro.relations.relation.Relation` pairs, so examples, tests, and
benchmarks all draw from the same distributions.
"""

from repro.workloads.equijoin import fk_pk_workload, zipf_equijoin_workload
from repro.workloads.multiway import (
    clique_query,
    four_cycle_query,
    triangle_query,
)
from repro.workloads.spatial import (
    clustered_rectangles_workload,
    map_overlay_workload,
    uniform_rectangles_workload,
)
from repro.workloads.sets import market_basket_workload, zipf_sets_workload

__all__ = [
    "zipf_equijoin_workload",
    "fk_pk_workload",
    "uniform_rectangles_workload",
    "clustered_rectangles_workload",
    "map_overlay_workload",
    "zipf_sets_workload",
    "market_basket_workload",
    "triangle_query",
    "four_cycle_query",
    "clique_query",
]
