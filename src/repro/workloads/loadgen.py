"""Async load generation against the solve server (``server-load`` bench).

A :class:`LoadSpec` describes a seeded request mix: a pool of
``universe`` distinct random graphs sampled with zipf skew (exponent
``skew``), so a few graphs recur constantly — exercising the shared
solve cache — while the tail stays novel, exercising the solve path.
The same ``_zipf``-style weighting as the equijoin workloads, applied to
whole requests instead of join keys.

:func:`run_load` drives ``concurrency`` asyncio clients (one connection
each, many in-flight requests per connection) through the mix and
reduces the outcomes to a :class:`LoadResult`: terminal-status counts,
throughput, and p50/p99 client-side latency — overall and per op — the
scalars the bench scenario publishes into ``BENCH_<date>.json``.

Every request carries a *derived* trace id
(:func:`repro.obs.context.derived_trace_id` of the seed and request
index), so a journaled/traced server run under load yields server-side
span trees addressable by request index after the fact — the same
determinism contract as the mix itself.

The *mix* is deterministic in the seed; the *timings* of course are not.
Rejected requests (admission control) are counted, not retried — the
load generator measures the server as configured, it does not flatter
it.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.graphs.generators import random_connected_bipartite
from repro.graphs.io import dump_bipartite
from repro.obs.context import TraceContext, derived_trace_id
from repro.runtime.retry import CircuitBreaker, RetryPolicy
from repro.server.client import AsyncServeClient
from repro.server.protocol import OP_PLAN, OP_SOLVE
from repro.runtime.anytime import DEGRADED_STATUSES


@dataclass(frozen=True)
class LoadSpec:
    """One seeded load shape.

    ``retries > 0`` arms every worker's client with the shared
    :class:`~repro.runtime.retry.RetryPolicy` (that many retries after
    the first attempt) and one circuit breaker shared by the whole run —
    the survive-a-server-restart configuration of docs/ROBUSTNESS.md.
    With the default ``retries=0`` the generator measures the server as
    configured and never flatters it.
    """

    requests: int = 60
    concurrency: int = 4
    universe: int = 10  # distinct graphs in the pool
    skew: float = 1.2  # zipf exponent over the pool (higher = hotter head)
    edges: int = 16  # edges per random graph
    plan_fraction: float = 0.25  # this share of requests use op=plan
    deadline: float | None = None  # per-request deadline, if any
    seed: int = 0
    retries: int = 0  # retry attempts after the first try (0 = never)


@dataclass
class LoadResult:
    """The reduced outcome of one load run."""

    requests: int
    ok: int
    errors: int
    rejected: int
    degraded: int
    elapsed_seconds: float
    latencies_ms: list[float] = field(default_factory=list)
    op_latencies_ms: dict[str, list[float]] = field(default_factory=dict)
    statuses: dict[str, int] = field(default_factory=dict)
    error_codes: dict[str, int] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        """Requests per second; 0.0 on a degenerate window (no elapsed
        time recorded — e.g. a wave that failed before the clock moved)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.requests / self.elapsed_seconds

    def latency_quantile(self, q: float) -> float:
        """The q-quantile of client-observed latency in ms (0.0 if none)."""
        return _quantile(self.latencies_ms, q)

    def per_op(self) -> dict[str, dict[str, Any]]:
        """Per-op latency breakdown: sample count and p50/p99 in ms."""
        return {
            op: {
                "requests": len(samples),
                "p50_ms": round(_quantile(samples, 0.50), 3),
                "p99_ms": round(_quantile(samples, 0.99), 3),
            }
            for op, samples in sorted(self.op_latencies_ms.items())
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "ok": self.ok,
            "errors": self.errors,
            "rejected": self.rejected,
            "degraded": self.degraded,
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.latency_quantile(0.50), 3),
            "p99_ms": round(self.latency_quantile(0.99), 3),
            "per_op": self.per_op(),
            "statuses": dict(sorted(self.statuses.items())),
            "error_codes": dict(sorted(self.error_codes.items())),
        }


def _quantile(samples: list[float], q: float) -> float:
    """Nearest-rank quantile, total over every degenerate window.

    Contract (pinned by tests/workloads/test_loadgen_stats.py):

    - empty window  -> 0.0 (an all-error cold wave records no latencies;
      stats must stay JSON-renderable rather than raise);
    - one sample    -> that sample, for every q;
    - q outside [0, 1] (caller bug or NaN-ish arithmetic upstream) is
      clamped to the nearest valid quantile instead of indexing out of
      range.
    """
    if not samples:
        return 0.0
    if not (0.0 <= q <= 1.0):  # also catches NaN, which fails both compares
        q = 0.0 if q < 0.0 else 1.0
    ordered = sorted(samples)
    rank = max(0, min(len(ordered) - 1, int(q * len(ordered) + 0.5) - 1))
    return ordered[rank]


def build_graph_pool(spec: LoadSpec) -> list[str]:
    """``spec.universe`` distinct serialized graphs, deterministic in the
    seed.  Sizes wobble slightly so components differ structurally (and
    therefore fingerprint differently)."""
    pool: list[str] = []
    for index in range(spec.universe):
        edges = max(3, spec.edges + (index % 5) - 2)
        sides = max(2, edges // 4)
        graph = random_connected_bipartite(
            sides, sides, edges, seed=spec.seed * 1000 + index
        )
        pool.append(dump_bipartite(graph))
    return pool


def sample_mix(spec: LoadSpec) -> list[tuple[str, str]]:
    """The request mix: ``spec.requests`` ``(op, graph_text)`` pairs.

    Graphs are drawn zipf-skewed from the pool — weight ``1/rank^skew``
    — so the head of the pool dominates (cache-hot) while the tail shows
    up rarely (cache-cold).  A ``plan_fraction`` share of requests use
    the cheaper ``plan`` op.  Deterministic in ``spec.seed``.
    """
    rng = random.Random(spec.seed)
    pool = build_graph_pool(spec)
    weights = [1.0 / (rank + 1) ** spec.skew for rank in range(len(pool))]
    graphs = rng.choices(pool, weights=weights, k=spec.requests)
    return [
        (OP_PLAN if rng.random() < spec.plan_fraction else OP_SOLVE, graph)
        for graph in graphs
    ]


async def drive_load(
    spec: LoadSpec,
    host: str | None = None,
    port: int | None = None,
    unix_path: str | Path | None = None,
) -> LoadResult:
    """Run the mix against a live server; returns the reduced result."""
    mix = sample_mix(spec)
    cursor = iter(enumerate(mix))
    outcome = LoadResult(
        requests=len(mix),
        ok=0,
        errors=0,
        rejected=0,
        degraded=0,
        elapsed_seconds=0.0,
    )
    retry: RetryPolicy | None = None
    breaker: CircuitBreaker | None = None
    if spec.retries > 0:
        retry = RetryPolicy(max_attempts=spec.retries + 1, seed=spec.seed)
        # One breaker for the whole run: the workers trip it together and
        # a single half-open probe rediscovers a restarted server.
        breaker = CircuitBreaker(threshold=spec.concurrency * 2, cooldown=0.1)

    async def worker() -> None:
        client = await AsyncServeClient.connect(
            host=host, port=port, unix_path=unix_path, retry=retry, breaker=breaker
        )
        try:
            # next() on a shared iterator is race-free here: workers are
            # coroutines on one loop, and there is no await around it.
            for index, (op, graph_text) in cursor:
                # Trace identity is derived, not random: request `index`
                # under `seed` always travels as the same trace_id, so a
                # load run's server-side traces are addressable offline.
                trace = TraceContext(derived_trace_id(spec.seed, index))
                started = time.perf_counter()
                try:
                    response = await client.request(
                        op, graph_text, deadline=spec.deadline, trace=trace
                    )
                except (ConnectionError, OSError):
                    outcome.errors += 1
                    code = "connection"
                    outcome.error_codes[code] = (
                        outcome.error_codes.get(code, 0) + 1
                    )
                    continue
                latency_ms = (time.perf_counter() - started) * 1000.0
                outcome.latencies_ms.append(latency_ms)
                outcome.op_latencies_ms.setdefault(op, []).append(latency_ms)
                if response.get("ok"):
                    outcome.ok += 1
                    status = response["result"].get("status", "optimal")
                    outcome.statuses[status] = (
                        outcome.statuses.get(status, 0) + 1
                    )
                    if status in DEGRADED_STATUSES:
                        outcome.degraded += 1
                else:
                    code = response.get("error", {}).get("code", "unknown")
                    outcome.error_codes[code] = (
                        outcome.error_codes.get(code, 0) + 1
                    )
                    if code == "overloaded":
                        outcome.rejected += 1
                    else:
                        outcome.errors += 1
        finally:
            await client.close()

    started = time.perf_counter()
    workers = max(1, min(spec.concurrency, len(mix)))
    await asyncio.gather(*[worker() for _ in range(workers)])
    outcome.elapsed_seconds = time.perf_counter() - started
    return outcome


def run_load(
    spec: LoadSpec,
    host: str | None = None,
    port: int | None = None,
    unix_path: str | Path | None = None,
) -> LoadResult:
    """Synchronous entry point: drive the load on a fresh event loop.

    Usable wherever the caller has no loop of its own — the bench
    scenario, ``tools/check_serve_smoke.py``, and ``repro client
    --load`` all call this against a server running elsewhere (another
    thread or another process).
    """
    return asyncio.run(
        drive_load(spec, host=host, port=port, unix_path=unix_path)
    )


__all__ = [
    "LoadResult",
    "LoadSpec",
    "build_graph_pool",
    "drive_load",
    "run_load",
    "sample_mix",
]
