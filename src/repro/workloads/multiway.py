"""AGM-bound instance generators for the multiway join engine.

Cyclic query shapes (triangle, 4-cycle, k-clique) with three row
distributions per relation:

- ``uniform`` — endpoints drawn uniformly from a universe sized so the
  output stays moderate; binary cascades do fine here, which is the point
  (the planner should pick them);
- ``zipf`` — both endpoints Zipf-skewed, so every pairwise join
  concentrates on heavy-hitter values and materializes a super-linear
  intermediate while the cyclic output stays small;
- ``worst-case`` — the deterministic star + co-star construction that
  makes the AGM separation exact: ``R = S = T = {(0,i)} ∪ {(i,0)}``.
  Every pairwise join has Θ(n²) tuples, the triangle output is Θ(n), and
  the AGM bound is ``(2n+1)^{3/2}`` — the canonical instance where
  worst-case-optimal joins beat every binary plan.
"""

from __future__ import annotations

import random
from itertools import combinations

from repro.errors import WorkloadError
from repro.joins.multiway.query import Atom, MultiwayQuery
from repro.workloads.equijoin import _zipf_keys

SKEWS = ("uniform", "zipf", "worst-case")


def _pairs(
    rng: random.Random, n: int, universe: int, skew: str, zipf_s: float
) -> tuple[tuple[int, int], ...]:
    if skew == "uniform":
        return tuple(
            (rng.randrange(universe), rng.randrange(universe)) for _ in range(n)
        )
    if skew == "zipf":
        left = _zipf_keys(rng, n, universe, zipf_s)
        right = _zipf_keys(rng, n, universe, zipf_s)
        return tuple(zip(left, right))
    # worst-case: star (hub 0 fanning out) + co-star (everything into hub 0).
    arms = max(1, n // 2)
    rows = [(0, i) for i in range(arms + 1)] + [(i, 0) for i in range(1, arms + 1)]
    return tuple(rows)


def _check(n: int, skew: str) -> None:
    if n < 1:
        raise WorkloadError("instance size must be positive")
    if skew not in SKEWS:
        raise WorkloadError(f"skew must be one of {SKEWS}, got {skew!r}")


def triangle_query(
    n: int, skew: str = "uniform", seed: int = 0, zipf_s: float = 1.0
) -> MultiwayQuery:
    """``R(a,b) ⋈ S(b,c) ⋈ T(c,a)`` with ~``n`` rows per relation."""
    _check(n, skew)
    rng = random.Random(seed)
    universe = max(2, int(round(n**0.75)))
    atoms = tuple(
        Atom(name, vars_, _pairs(rng, n, universe, skew, zipf_s))
        for name, vars_ in (("R", ("a", "b")), ("S", ("b", "c")), ("T", ("c", "a")))
    )
    return MultiwayQuery(atoms=atoms)


def four_cycle_query(
    n: int, skew: str = "uniform", seed: int = 0, zipf_s: float = 1.0
) -> MultiwayQuery:
    """``R(a,b) ⋈ S(b,c) ⋈ T(c,d) ⋈ U(d,a)`` with ~``n`` rows per relation."""
    _check(n, skew)
    rng = random.Random(seed)
    universe = max(2, int(round(n**0.75)))
    shape = (
        ("R", ("a", "b")),
        ("S", ("b", "c")),
        ("T", ("c", "d")),
        ("U", ("d", "a")),
    )
    atoms = tuple(
        Atom(name, vars_, _pairs(rng, n, universe, skew, zipf_s))
        for name, vars_ in shape
    )
    return MultiwayQuery(atoms=atoms)


def clique_query(
    k: int, n: int, skew: str = "uniform", seed: int = 0, zipf_s: float = 1.0
) -> MultiwayQuery:
    """The ``k``-clique query: one binary atom per pair of ``k`` variables."""
    if k < 3:
        raise WorkloadError("clique queries need k >= 3")
    if k > 6:
        raise WorkloadError("clique queries above k=6 blow up the edge-cover LP")
    _check(n, skew)
    rng = random.Random(seed)
    universe = max(2, int(round(n**0.75)))
    variables = tuple(f"x{i}" for i in range(k))
    atoms = []
    for idx, (i, j) in enumerate(combinations(range(k), 2)):
        atoms.append(
            Atom(
                f"E{idx}",
                (variables[i], variables[j]),
                _pairs(rng, n, universe, skew, zipf_s),
            )
        )
    return MultiwayQuery(atoms=tuple(atoms))
