"""Equijoin workloads.

Two staples of the equijoin literature:

- Zipf-skewed keys on both sides — the join graph becomes a union of
  complete bipartite blocks whose sizes follow the skew;
- foreign-key → primary-key joins — every FK block meets exactly one PK
  tuple, so blocks are stars ``K_{k,1}``.
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.relations.relation import Relation


def _zipf_keys(rng: random.Random, n: int, universe: int, skew: float) -> list[int]:
    """Draw ``n`` keys from ``{0..universe-1}`` with Zipf(s=skew) weights."""
    weights = [1.0 / (k + 1) ** skew for k in range(universe)]
    total = sum(weights)
    cumulative = []
    acc = 0.0
    for w in weights:
        acc += w / total
        cumulative.append(acc)
    keys = []
    for _ in range(n):
        u = rng.random()
        lo, hi = 0, universe - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        keys.append(lo)
    return keys


def zipf_equijoin_workload(
    n_left: int,
    n_right: int,
    key_universe: int = 100,
    skew: float = 1.0,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Zipf-distributed integer keys on both sides."""
    if n_left < 1 or n_right < 1 or key_universe < 1:
        raise WorkloadError("sizes must be positive")
    if skew < 0:
        raise WorkloadError("skew must be non-negative")
    rng = random.Random(seed)
    return (
        Relation("R", _zipf_keys(rng, n_left, key_universe, skew)),
        Relation("S", _zipf_keys(rng, n_right, key_universe, skew)),
    )


def fk_pk_workload(
    n_fact: int,
    n_dim: int,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """A foreign-key/primary-key join: ``R`` holds FKs drawn uniformly from
    the ``n_dim`` distinct PKs of ``S``.

    Every join-graph component is a star, hence pebbles perfectly — the
    easiest realistic equijoin shape.
    """
    if n_fact < 1 or n_dim < 1:
        raise WorkloadError("sizes must be positive")
    rng = random.Random(seed)
    fact = [rng.randrange(n_dim) for _ in range(n_fact)]
    dim = list(range(n_dim))
    return Relation("R", fact), Relation("S", dim)
