"""Set-valued workloads for containment joins.

- Zipf-element sets: elements drawn with Zipf skew (popular elements appear
  in many sets), left sets small, right sets larger — the typical profile
  where containment matches exist;
- market-basket: right tuples are "baskets" over an item catalog; left
  tuples are small "query patterns" (some sampled from baskets so matches
  are guaranteed to exist).
"""

from __future__ import annotations

import random

from repro.errors import WorkloadError
from repro.relations.relation import Relation


def _zipf_element(rng: random.Random, universe: int, skew: float) -> int:
    # Inverse-CDF sampling over a small universe is fine at workload scale.
    weights = [1.0 / (k + 1) ** skew for k in range(universe)]
    total = sum(weights)
    u = rng.random() * total
    acc = 0.0
    for k, w in enumerate(weights):
        acc += w
        if u <= acc:
            return k
    return universe - 1


def _random_set(
    rng: random.Random, universe: int, size: int, skew: float
) -> frozenset:
    out: set[int] = set()
    guard = 0
    while len(out) < size and guard < 50 * size:
        out.add(_zipf_element(rng, universe, skew))
        guard += 1
    return frozenset(out)


def zipf_sets_workload(
    n_left: int,
    n_right: int,
    universe: int = 50,
    left_size: int = 2,
    right_size: int = 8,
    skew: float = 1.0,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Zipf-element sets: small left sets, larger right sets."""
    if min(n_left, n_right, universe, left_size, right_size) < 1:
        raise WorkloadError("sizes must be positive")
    if left_size > universe or right_size > universe:
        raise WorkloadError("set sizes cannot exceed the universe")
    rng = random.Random(seed)
    return (
        Relation(
            "R", [_random_set(rng, universe, left_size, skew) for _ in range(n_left)]
        ),
        Relation(
            "S", [_random_set(rng, universe, right_size, skew) for _ in range(n_right)]
        ),
    )


def market_basket_workload(
    n_patterns: int,
    n_baskets: int,
    catalog: int = 100,
    basket_size: int = 12,
    pattern_size: int = 3,
    hit_fraction: float = 0.5,
    seed: int = 0,
) -> tuple[Relation, Relation]:
    """Query patterns vs shopping baskets.

    A ``hit_fraction`` of the patterns are subsampled from actual baskets
    (guaranteeing containment matches); the rest are random (mostly
    non-matching).  Returns ``(patterns, baskets)``.
    """
    if min(n_patterns, n_baskets, catalog, basket_size, pattern_size) < 1:
        raise WorkloadError("sizes must be positive")
    if not 0.0 <= hit_fraction <= 1.0:
        raise WorkloadError("hit_fraction must lie in [0, 1]")
    rng = random.Random(seed)
    baskets = [
        frozenset(rng.sample(range(catalog), min(basket_size, catalog)))
        for _ in range(n_baskets)
    ]
    patterns = []
    for _ in range(n_patterns):
        if rng.random() < hit_fraction:
            source = baskets[rng.randrange(n_baskets)]
            patterns.append(
                frozenset(rng.sample(sorted(source), min(pattern_size, len(source))))
            )
        else:
            patterns.append(
                frozenset(rng.sample(range(catalog), min(pattern_size, catalog)))
            )
    return Relation("R", patterns), Relation("S", baskets)
