"""Value domains for join attributes.

The paper's three join classes live on three domain families:

- equality-comparable scalars (numbers, strings) for equijoins;
- spatial values (rectangles, polygons) for overlap joins;
- set values for containment joins.

:class:`Domain` tags a relation's column so join predicates can check type
compatibility up front instead of failing on the millionth tuple.
"""

from __future__ import annotations

import enum
import numbers
from typing import Any

from repro.errors import PredicateError


class Domain(enum.Enum):
    """The attribute domains the library's predicates understand."""

    NUMERIC = "numeric"
    STRING = "string"
    INTERVAL = "interval"
    RECTANGLE = "rectangle"
    POLYGON = "polygon"
    SET = "set"
    OTHER = "other"

    @property
    def supports_equality(self) -> bool:
        """Every domain supports equality ("A and B can be over any domain
        that supports equality", §2)."""
        return True

    @property
    def supports_overlap(self) -> bool:
        return self in (Domain.INTERVAL, Domain.RECTANGLE, Domain.POLYGON)

    @property
    def supports_containment(self) -> bool:
        return self is Domain.SET


def infer_domain(value: Any) -> Domain:
    """Classify a single attribute value.

    Geometry types are detected by duck-typing on the primitives of
    :mod:`repro.geometry.primitives` (checked by class name to avoid a hard
    import cycle); sets cover ``set``/``frozenset``.
    """
    if isinstance(value, bool):
        return Domain.OTHER
    if isinstance(value, numbers.Number):
        return Domain.NUMERIC
    if isinstance(value, str):
        return Domain.STRING
    if isinstance(value, (set, frozenset)):
        return Domain.SET
    name = type(value).__name__
    if name == "Interval":
        return Domain.INTERVAL
    if name == "Rectangle":
        return Domain.RECTANGLE
    if name == "Polygon":
        return Domain.POLYGON
    return Domain.OTHER


def common_domain(values: Any) -> Domain:
    """The domain shared by all values, or raise
    :class:`~repro.errors.PredicateError` on a mixed column.

    ``NUMERIC`` absorbs int/float mixes; an empty column is ``OTHER``.
    """
    domain: Domain | None = None
    for value in values:
        current = infer_domain(value)
        if domain is None:
            domain = current
        elif domain != current:
            raise PredicateError(
                f"mixed column: saw both {domain.value} and {current.value}"
            )
    return domain if domain is not None else Domain.OTHER
