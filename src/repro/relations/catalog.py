"""A tiny relation catalog.

Examples and the CLI register relations by name; the catalog enforces name
uniqueness and gives a single place to look up join inputs.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.errors import RelationError
from repro.relations.relation import Relation


class Catalog:
    """Named registry of :class:`~repro.relations.relation.Relation` objects.

    Example
    -------
    >>> cat = Catalog()
    >>> _ = cat.create("R", [1, 2, 3])
    >>> cat.get("R").values
    [1, 2, 3]
    """

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}

    def create(self, name: str, values=()) -> Relation:
        """Create and register a relation; duplicate names raise."""
        if name in self._relations:
            raise RelationError(f"relation {name!r} already exists")
        relation = Relation(name, values)
        self._relations[name] = relation
        return relation

    def register(self, relation: Relation) -> None:
        """Register an existing relation object under its own name."""
        if relation.name in self._relations:
            raise RelationError(f"relation {relation.name!r} already exists")
        self._relations[relation.name] = relation

    def get(self, name: str) -> Relation:
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        return self._relations[name]

    def drop(self, name: str) -> None:
        if name not in self._relations:
            raise RelationError(f"no relation named {name!r}")
        del self._relations[name]

    def names(self) -> list[str]:
        return sorted(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[Relation]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)
