"""Loading and saving relations as text files.

One value per line, with typed parsing so every domain the library joins
over has a file format:

- numerics: ``42`` or ``3.5``
- strings: anything else (quoted forms keep leading/trailing spaces)
- intervals: ``12.5..17.25``
- rectangles: ``0,0..4,2.5`` (x_min,y_min..x_max,y_max)
- sets: ``{a|b|c}`` (``{}`` is the empty set)

The parser infers the domain from the first non-empty line and insists the
rest of the file agrees (mirroring :class:`~repro.relations.relation.
Relation`'s single-domain column rule).  The CLI's ``join`` command reads
these files.
"""

from __future__ import annotations

import re
from typing import Any

from repro.errors import RelationError
from repro.geometry.interval import Interval
from repro.geometry.primitives import Rectangle
from repro.relations.relation import Relation
from repro.runtime.faults import maybe_fail

_INTERVAL = re.compile(r"^(-?\d+(?:\.\d+)?)\.\.(-?\d+(?:\.\d+)?)$")
_RECTANGLE = re.compile(
    r"^(-?\d+(?:\.\d+)?),(-?\d+(?:\.\d+)?)\.\.(-?\d+(?:\.\d+)?),(-?\d+(?:\.\d+)?)$"
)
_SET = re.compile(r"^\{(.*)\}$")
_NUMBER = re.compile(r"^-?\d+(\.\d+)?$")
_QUOTED = re.compile(r'^"(.*)"$')


def parse_value(text: str) -> Any:
    """Parse one line into a typed attribute value."""
    stripped = text.strip()
    quoted = _QUOTED.match(stripped)
    if quoted:
        return quoted.group(1)
    match = _INTERVAL.match(stripped)
    if match:
        return Interval(float(match.group(1)), float(match.group(2)))
    match = _RECTANGLE.match(stripped)
    if match:
        return Rectangle(*(float(match.group(i)) for i in range(1, 5)))
    match = _SET.match(stripped)
    if match:
        body = match.group(1).strip()
        if not body:
            return frozenset()
        return frozenset(part.strip() for part in body.split("|"))
    if _NUMBER.match(stripped):
        value = float(stripped)
        return int(value) if value.is_integer() and "." not in stripped else value
    return stripped


def format_value(value: Any) -> str:
    """Format a typed value back to its line form (inverse of parse)."""
    if isinstance(value, Interval):
        return f"{value.lo}..{value.hi}"
    if isinstance(value, Rectangle):
        return f"{value.x_min},{value.y_min}..{value.x_max},{value.y_max}"
    if isinstance(value, (set, frozenset)):
        return "{" + "|".join(sorted(str(e) for e in value)) + "}"
    if isinstance(value, str):
        needs_quotes = (
            value != value.strip()
            or _NUMBER.match(value)
            or _INTERVAL.match(value)
            or _RECTANGLE.match(value)
            or _SET.match(value)
        )
        return f'"{value}"' if needs_quotes else value
    return str(value)


def load_relation(name: str, text: str) -> Relation:
    """Parse a relation file body into a named relation.

    Blank lines and ``#`` comments are skipped; a domain mismatch anywhere
    in the file raises :class:`~repro.errors.RelationError` with the line
    number.
    """
    maybe_fail("io.load_relation")
    relation = Relation(name)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        value = parse_value(line)
        try:
            relation.append(value)
        except RelationError as exc:
            raise RelationError(f"line {lineno}: {exc}") from exc
    return relation


def dump_relation(relation: Relation) -> str:
    """Serialize a relation; inverse of :func:`load_relation`."""
    maybe_fail("io.dump_relation")
    lines = [f"# relation {relation.name} ({relation.domain.value})"]
    lines.extend(format_value(v) for v in relation.values)
    return "\n".join(lines) + "\n"
