"""A paged-storage simulator: the page-fetch view of the pebble game.

The pebbling model descends from Merrett, Kambayashi & Yasuura's study of
*page-fetch scheduling* in joins (the paper's reference [6]): there, graph
nodes are disk pages and the two pebbles are two in-memory page frames.
This module makes that lineage concrete: it packs relations into fixed-size
pages, builds the *page connection graph* (pages that must be co-resident
because some tuple pair joining across them), and counts page fetches of a
pebbling scheme played on that graph.

This is a simulator substitute for actual disk I/O — behaviourally faithful
where it matters: the fetch count of a strategy equals the raw pebbling
cost π̂ of the corresponding scheme on the page graph.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass
from typing import Any

from repro.errors import RelationError
from repro.graphs.bipartite import BipartiteGraph
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relations.relation import Relation, TupleRef
from repro.core.scheme import PebblingScheme
from repro.runtime.faults import maybe_fail


@dataclass(frozen=True, order=True)
class PageRef:
    """One disk page of a relation."""

    relation: str
    page_number: int

    def __repr__(self) -> str:
        return f"{self.relation}:p{self.page_number}"


class PagedRelation:
    """A relation packed into fixed-size pages in tuple order."""

    def __init__(self, relation: Relation, page_size: int) -> None:
        if page_size < 1:
            raise RelationError("page size must be positive")
        self.relation = relation
        self.page_size = page_size

    @property
    def num_pages(self) -> int:
        n = len(self.relation)
        return (n + self.page_size - 1) // self.page_size

    def page_of(self, ref: TupleRef) -> PageRef:
        """The page holding the referenced tuple."""
        if ref.relation != self.relation.name:
            raise RelationError(f"{ref!r} is not a tuple of {self.relation.name!r}")
        return PageRef(self.relation.name, ref.ordinal // self.page_size)

    def pages(self) -> list[PageRef]:
        return [PageRef(self.relation.name, i) for i in range(self.num_pages)]

    def tuples_on(self, page: PageRef) -> list[TupleRef]:
        start = page.page_number * self.page_size
        stop = min(start + self.page_size, len(self.relation))
        return [TupleRef(self.relation.name, i) for i in range(start, stop)]


def page_connection_graph(
    left: PagedRelation,
    right: PagedRelation,
    joins: Callable[[Any, Any], bool],
) -> BipartiteGraph:
    """The bipartite *page* graph of a join: page ``p`` of ``R`` connects to
    page ``q`` of ``S`` iff some tuple on ``p`` joins some tuple on ``q``.

    This is the input of the page-fetch scheduling problem of [6]; playing
    the pebble game on it with two memory frames counts page fetches.
    """
    maybe_fail("storage.page_graph")
    graph = BipartiteGraph(left=left.pages(), right=right.pages())
    with obs_trace.span("storage.page_graph"):
        for p in left.pages():
            left_values = [left.relation.value(t) for t in left.tuples_on(p)]
            for q in right.pages():
                right_values = [
                    right.relation.value(t) for t in right.tuples_on(q)
                ]
                if any(joins(a, b) for a in left_values for b in right_values):
                    graph.add_edge(p, q)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("storage.page_graphs")
        obs_metrics.inc(
            "storage.page_pairs_checked", left.num_pages * right.num_pages
        )
    return graph


def page_fetches_of_scheme(scheme: PebblingScheme) -> int:
    """Page fetches incurred by replaying ``scheme`` with two frames.

    Identical to the raw pebbling cost π̂: every pebble placement is a page
    fetch (the initial two placements are the two cold reads).
    """
    return scheme.cost()


@dataclass(frozen=True)
class FetchReport:
    """Fetch accounting for one page-level join schedule."""

    page_pairs: int
    fetches: int
    lower_bound: int  # page_pairs + 1 when connected: best possible

    @property
    def overhead(self) -> float:
        """Fetches per joining page pair beyond the ideal 1.0."""
        if self.page_pairs == 0:
            return 0.0
        return self.fetches / self.page_pairs


def schedule_report(graph: BipartiteGraph, scheme: PebblingScheme) -> FetchReport:
    """Summarize a page-fetch schedule for the page graph ``graph``."""
    maybe_fail("storage.schedule")
    scheme.validate(graph.without_isolated_vertices())
    m = graph.num_edges
    fetches = page_fetches_of_scheme(scheme)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("storage.schedules")
        obs_metrics.inc("storage.page_fetches", fetches)
    return FetchReport(
        page_pairs=m,
        fetches=fetches,
        lower_bound=m + 1 if m else 0,
    )
