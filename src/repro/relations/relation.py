"""Single-column relations with multiset semantics (paper §2).

A :class:`Relation` is a named bag of attribute values.  Each physical tuple
gets a :class:`TupleRef` — a stable identifier — because the pebbling model
needs one join-graph vertex *per tuple*, including duplicates ("the
relations are allowed to be multi-sets").
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.errors import RelationError
from repro.relations.domains import Domain, common_domain


@dataclass(frozen=True, order=True)
class TupleRef:
    """A stable reference to one physical tuple: relation name + ordinal.

    These are the vertex labels of join graphs built by
    :func:`repro.joins.join_graph.build_join_graph`.
    """

    relation: str
    ordinal: int

    def __repr__(self) -> str:
        return f"{self.relation}[{self.ordinal}]"


class Relation:
    """A named single-column relation (a multiset of values).

    Values are stored in insertion order; ``ordinal`` positions are stable
    for the life of the relation.  The column's :class:`Domain` is inferred
    at construction and enforced on append.

    Example
    -------
    >>> r = Relation("R", [1, 2, 2, 7])
    >>> len(r)
    4
    >>> r.domain
    <Domain.NUMERIC: 'numeric'>
    >>> r.value(TupleRef("R", 2))
    2
    """

    def __init__(self, name: str, values: Iterable[Any] = ()) -> None:
        if not name or not isinstance(name, str):
            raise RelationError("relation name must be a non-empty string")
        self.name = name
        self._values: list[Any] = list(values)
        self._domain = common_domain(self._values)

    # ------------------------------------------------------------------
    @property
    def domain(self) -> Domain:
        """The inferred domain of the single attribute column."""
        return self._domain

    @property
    def values(self) -> list[Any]:
        """A copy of the column values in tuple order."""
        return list(self._values)

    def append(self, value: Any) -> TupleRef:
        """Add a tuple; returns its :class:`TupleRef`.

        Raises :class:`~repro.errors.RelationError` if the value's domain
        conflicts with the column's existing domain.
        """
        from repro.relations.domains import infer_domain

        if self._values:
            incoming = infer_domain(value)
            if incoming != self._domain:
                raise RelationError(
                    f"value domain {incoming.value} conflicts with column "
                    f"domain {self._domain.value}"
                )
        else:
            self._domain = common_domain([value])
        self._values.append(value)
        return TupleRef(self.name, len(self._values) - 1)

    def refs(self) -> list[TupleRef]:
        """One :class:`TupleRef` per physical tuple, in order."""
        return [TupleRef(self.name, i) for i in range(len(self._values))]

    def value(self, ref: TupleRef) -> Any:
        """The attribute value of the referenced tuple."""
        if ref.relation != self.name:
            raise RelationError(
                f"ref {ref!r} belongs to relation {ref.relation!r}, "
                f"not {self.name!r}"
            )
        if not 0 <= ref.ordinal < len(self._values):
            raise RelationError(f"ref {ref!r} is out of range")
        return self._values[ref.ordinal]

    def items(self) -> Iterator[tuple[TupleRef, Any]]:
        """Iterate ``(ref, value)`` pairs in tuple order."""
        for i, v in enumerate(self._values):
            yield TupleRef(self.name, i), v

    def distinct_values(self) -> list[Any]:
        """Distinct values, first-occurrence order (hashable domains only)."""
        seen: set = set()
        out = []
        for v in self._values:
            key = v
            if key not in seen:
                seen.add(key)
                out.append(v)
        return out

    def multiplicity(self, value: Any) -> int:
        """The number of tuples carrying ``value``."""
        return sum(1 for v in self._values if v == value)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, n={len(self._values)}, domain={self._domain.value})"
