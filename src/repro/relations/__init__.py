"""Relational substrate: single-column relations over typed domains.

The paper assumes "all relations have a single column, and all joins are on
that column" (§2), with multiset semantics.  This subpackage provides that
relation model, the value domains the three join-predicate classes need
(numbers/strings for equijoins, rectangles/polygons for spatial joins, sets
for containment joins), a tiny catalog, and a paged-storage simulator that
connects the model to the page-fetch-scheduling lineage of the pebbling game
(Merrett–Kambayashi–Yasuura, the paper's reference [6]).
"""

from repro.relations.relation import Relation, TupleRef
from repro.relations.domains import Domain, infer_domain
from repro.relations.catalog import Catalog

__all__ = ["Relation", "TupleRef", "Domain", "infer_domain", "Catalog"]
