"""Anytime-result vocabulary: status constants and search provenance.

Every :class:`repro.core.solvers.registry.SolveResult` carries a ``status``
from this module and, when a budget was in play, a :class:`SolveProvenance`
describing how much of the search actually ran.  Keeping the vocabulary in
one place means the registry, the bench harness, and the CLI all agree on
what "timed out" means.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# The solver finished and the answer is certified optimal.
STATUS_OPTIMAL = "optimal"
# The solver finished; the answer is a (possibly approximate) full result.
STATUS_COMPLETE = "complete"
# A node or memo budget tripped; the answer is the best found so far.
STATUS_BUDGET_EXHAUSTED = "budget_exhausted"
# The wall-clock deadline tripped; the answer is the best found so far.
STATUS_TIMED_OUT = "timed_out"

STATUSES = (
    STATUS_OPTIMAL,
    STATUS_COMPLETE,
    STATUS_BUDGET_EXHAUSTED,
    STATUS_TIMED_OUT,
)

# Statuses that mean the budget tripped before the search finished.
DEGRADED_STATUSES = (STATUS_BUDGET_EXHAUSTED, STATUS_TIMED_OUT)


@dataclass(frozen=True)
class SolveProvenance:
    """How much search produced an anytime answer.

    ``lower_bound`` is the polynomial-time lower bound on the effective
    cost (``m`` + jump lower bound), so ``effective_cost - lower_bound``
    bounds the regret of a budget-truncated answer.  ``degradations``
    records each rung of the fallback ladder taken, e.g.
    ``("exact->dfs+polish",)``.
    """

    nodes_expanded: int = 0
    elapsed_seconds: float = 0.0
    lower_bound: int | None = None
    degradations: tuple[str, ...] = ()

    def as_dict(self) -> dict[str, Any]:
        return {
            "nodes_expanded": self.nodes_expanded,
            "elapsed_seconds": self.elapsed_seconds,
            "lower_bound": self.lower_bound,
            "degradations": list(self.degradations),
        }
