"""Resource budgets, anytime-result vocabulary, and fault injection.

The runtime package is the robustness layer under the solving stack:
:class:`Budget` bounds wall clock / search nodes / memo size with
cooperative checkpoints, :mod:`repro.runtime.anytime` names the result
statuses, and :mod:`repro.runtime.faults` injects deterministic faults for
chaos testing.  See ``docs/ROBUSTNESS.md``.
"""

from repro.runtime.anytime import (
    DEGRADED_STATUSES,
    STATUS_BUDGET_EXHAUSTED,
    STATUS_COMPLETE,
    STATUS_OPTIMAL,
    STATUS_TIMED_OUT,
    STATUSES,
    SolveProvenance,
)
from repro.runtime.budget import (
    REASON_DEADLINE,
    REASON_MEMO,
    REASON_NODES,
    Budget,
    current_budget,
    use_budget,
)
from repro.runtime.clock import MONOTONIC_CLOCK, FakeClock, MonotonicClock
from repro.runtime.retry import (
    CircuitBreaker,
    RetryController,
    RetryPolicy,
)
from repro.runtime.faults import (
    FaultPlan,
    SkewedClock,
    active_plan,
    inject,
    maybe_fail,
)

__all__ = [
    "Budget",
    "current_budget",
    "use_budget",
    "REASON_DEADLINE",
    "REASON_NODES",
    "REASON_MEMO",
    "FakeClock",
    "MonotonicClock",
    "MONOTONIC_CLOCK",
    "CircuitBreaker",
    "RetryController",
    "RetryPolicy",
    "FaultPlan",
    "SkewedClock",
    "active_plan",
    "inject",
    "maybe_fail",
    "SolveProvenance",
    "STATUSES",
    "DEGRADED_STATUSES",
    "STATUS_OPTIMAL",
    "STATUS_COMPLETE",
    "STATUS_BUDGET_EXHAUSTED",
    "STATUS_TIMED_OUT",
]
