"""Deterministic fault injection for chaos testing.

A :class:`FaultPlan` is seeded, so a failing chaos run reproduces exactly
from its seed — the same property the rest of the repo demands of its
workload generators.  Three fault families are supported:

- **I/O failures**: instrumented sites in ``relations/storage.py`` and
  ``relations/io.py`` call :func:`maybe_fail(site) <maybe_fail>`; when a
  plan is installed, each call draws from the plan's RNG and raises
  :class:`repro.errors.InjectedFaultError` with probability
  ``rates[site]`` (``"*"`` is a wildcard rate for every site).
- **clock skew**: :meth:`FaultPlan.skewed` wraps any clock so each read
  drifts forward by a seeded random amount, tightening deadlines.
- **budget starvation**: :meth:`FaultPlan.starve` divides a budget's caps
  by ``starvation``, modelling a machine ``k`` times slower than sized for.

With no plan installed (the default, and always the case in production
code paths), :func:`maybe_fail` is a single global read — the harness is
free when off.
"""

from __future__ import annotations

import contextlib
import random
from typing import Iterator, Mapping

from repro.errors import InjectedFaultError
from repro.obs import events as obs_events
from repro.runtime.budget import Budget


class SkewedClock:
    """A clock whose reads drift forward by seeded random increments."""

    def __init__(self, inner, rng: random.Random, max_skew: float) -> None:
        self._inner = inner
        self._rng = rng
        self._max_skew = max_skew
        self._drift = 0.0

    def now(self) -> float:
        self._drift += self._rng.uniform(0.0, self._max_skew)
        return self._inner.now() + self._drift


class FaultPlan:
    """A seeded schedule of faults.

    ``rates`` maps an instrumented site name (or ``"*"``) to a failure
    probability in ``[0, 1]``.  ``clock_skew`` is the maximum extra seconds
    each skewed-clock read drifts.  ``starvation`` divides budget caps.
    """

    def __init__(
        self,
        seed: int,
        rates: Mapping[str, float] | None = None,
        clock_skew: float = 0.0,
        starvation: int = 1,
    ) -> None:
        if starvation < 1:
            raise ValueError("starvation must be >= 1")
        self.seed = seed
        self.rates = dict(rates or {})
        self.clock_skew = clock_skew
        self.starvation = starvation
        self._rng = random.Random(seed)
        self.calls = 0
        self.injected = 0

    def rate_for(self, site: str) -> float:
        if site in self.rates:
            return self.rates[site]
        return self.rates.get("*", 0.0)

    def should_fail(self, site: str) -> bool:
        """One deterministic draw for ``site``; counts every call."""
        self.calls += 1
        rate = self.rate_for(site)
        if rate <= 0.0:
            return False
        if rate >= 1.0 or self._rng.random() < rate:
            self.injected += 1
            return True
        return False

    def skewed(self, clock) -> SkewedClock:
        """Wrap ``clock`` with seeded forward drift (dedicated RNG, so
        skew draws do not perturb the fault-site draw sequence)."""
        return SkewedClock(clock, random.Random(self.seed + 1), self.clock_skew)

    def starve(self, budget: Budget) -> Budget:
        """A copy of ``budget`` with every cap divided by ``starvation``."""

        def _shrink(value: int | float | None):
            return None if value is None else max(1, int(value // self.starvation))

        deadline = None
        if budget.deadline is not None:
            deadline = budget.deadline / self.starvation
        return Budget(
            deadline=deadline,
            node_budget=_shrink(budget.node_budget),
            memo_cap=_shrink(budget.memo_cap),
            clock=budget.clock,
            check_interval=budget.check_interval,
        )


_ACTIVE_PLAN: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    return _ACTIVE_PLAN


@contextlib.contextmanager
def inject(plan: FaultPlan | None) -> Iterator[FaultPlan | None]:
    """Install ``plan`` as the process-wide fault plan for the ``with`` body."""
    global _ACTIVE_PLAN
    previous = _ACTIVE_PLAN
    _ACTIVE_PLAN = plan
    try:
        yield plan
    finally:
        _ACTIVE_PLAN = previous


def maybe_fail(site: str) -> None:
    """Instrumented-site hook: raise :class:`InjectedFaultError` if the
    active plan says this call fails.  A no-op when no plan is installed."""
    plan = _ACTIVE_PLAN
    if plan is None:
        return
    if plan.should_fail(site):
        # Every injected fault leaves a correlated event, so chaos runs
        # can be replayed from events.jsonl (site + seed + call number
        # pins down the exact draw).
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_FAULT_INJECTED,
                site=site,
                seed=plan.seed,
                call=plan.calls,
                injected=plan.injected,
            )
        raise InjectedFaultError(
            f"injected fault at {site} (seed={plan.seed}, call #{plan.calls})"
        )
