"""Cooperative resource budgets for anytime solving.

A :class:`Budget` bounds three resources at once — wall clock (via an
injectable clock), search nodes, and memo-table cells — and is *checked,
never enforced*: solvers call :meth:`Budget.checkpoint` (raising) or
:meth:`Budget.poll` (non-raising) at natural loop boundaries, so a budget
can only trip where the solver can hand back a valid partial answer.

The two styles map onto the two solver shapes in this repo:

- branch-and-bound / DP searches (``exact``, ``held_karp``) have no useful
  partial state mid-expansion, so they use the raising ``checkpoint()`` and
  let the registry ladder catch :class:`BudgetExhaustedError`;
- constructive heuristics (``anneal``, ``local_search``,
  ``matching_stitch``, …) always hold a valid scheme, so they ``poll()``
  and simply stop improving when the budget trips.

``use_budget`` installs an *ambient* budget on a stack, which is how the
engine and CLI thread one deadline through planner → solver → executor
without changing every signature in between.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from repro.errors import BudgetExhaustedError
from repro.obs import events as obs_events
from repro.runtime.clock import MONOTONIC_CLOCK

REASON_DEADLINE = "deadline"
REASON_NODES = "nodes"
REASON_MEMO = "memo"


class Budget:
    """A cooperative budget over wall clock, search nodes, and memo cells.

    Any subset of the three limits may be set; an all-``None`` budget never
    trips and costs one integer increment per checkpoint.  ``clock`` defaults
    to the process monotonic clock; tests inject
    :class:`repro.runtime.clock.FakeClock`.  ``check_interval`` trades
    deadline precision for clock reads: the clock is consulted every
    ``check_interval`` charged nodes (default 1, i.e. every checkpoint, so a
    deadline is honoured within one checkpoint interval).
    """

    def __init__(
        self,
        deadline: float | None = None,
        node_budget: int | None = None,
        memo_cap: int | None = None,
        clock=None,
        check_interval: int = 1,
    ) -> None:
        if deadline is not None and deadline < 0:
            raise ValueError("deadline must be non-negative")
        if node_budget is not None and node_budget < 0:
            raise ValueError("node_budget must be non-negative")
        if memo_cap is not None and memo_cap < 0:
            raise ValueError("memo_cap must be non-negative")
        if check_interval < 1:
            raise ValueError("check_interval must be >= 1")
        self.deadline = deadline
        self.node_budget = node_budget
        self.memo_cap = memo_cap
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.check_interval = check_interval
        self.nodes_charged = 0
        self.memo_cells = 0
        self.exhausted_reason: str | None = None
        self._started_at: float | None = None
        self._deadline_at: float | None = None
        self._since_clock_check = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> "Budget":
        """Arm the deadline; idempotent, called lazily by the first check."""
        if self._started_at is None:
            self._started_at = self.clock.now()
            if self.deadline is not None:
                self._deadline_at = self._started_at + self.deadline
        return self

    def elapsed(self) -> float:
        """Seconds since the budget was armed (0 if never armed)."""
        if self._started_at is None:
            return 0.0
        return self.clock.now() - self._started_at

    def remaining(self) -> float | None:
        """Seconds left before the deadline, clamped at 0.0 (``None``
        when no deadline is set).  Arms the budget on first call.

        This is how a deadline propagates out of its home thread or
        event loop: an async dispatcher can't share the ``Budget``
        object with worker processes, but it can hand each stage
        ``remaining()`` as a plain number and rebuild a budget on the
        other side — the server does exactly that per component solve.
        """
        if self.deadline is None:
            return None
        self.start()
        assert self._deadline_at is not None
        return max(0.0, self._deadline_at - self.clock.now())

    # -- checks ------------------------------------------------------------

    def _trip(self, reason: str) -> str:
        """Record first exhaustion; the transition emits one structured
        event (:data:`repro.obs.events.EVENT_BUDGET_TRIPPED`) so budget
        trips are greppable in ``events.jsonl`` — a no-op when the event
        log is disabled, like every observability hook."""
        self.exhausted_reason = reason
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_BUDGET_TRIPPED,
                reason=reason,
                nodes_charged=self.nodes_charged,
                memo_cells=self.memo_cells,
                elapsed_seconds=self.elapsed(),
            )
        return reason

    def _check(self, cost: int) -> str | None:
        """Charge ``cost`` nodes; return the tripped reason, if any."""
        self.start()
        if self.exhausted_reason is not None:
            return self.exhausted_reason
        self.nodes_charged += cost
        if self.node_budget is not None and self.nodes_charged > self.node_budget:
            return self._trip(REASON_NODES)
        if self._deadline_at is not None:
            self._since_clock_check += cost
            if self._since_clock_check >= self.check_interval:
                self._since_clock_check = 0
                if self.clock.now() >= self._deadline_at:
                    return self._trip(REASON_DEADLINE)
        return None

    def checkpoint(self, cost: int = 1) -> None:
        """Charge ``cost`` nodes; raise :class:`BudgetExhaustedError` if tripped."""
        reason = self._check(cost)
        if reason is not None:
            raise BudgetExhaustedError(
                f"budget exhausted ({reason}) after {self.nodes_charged} nodes, "
                f"{self.elapsed():.4f}s",
                reason=reason,
            )

    def poll(self, cost: int = 1) -> bool:
        """Charge ``cost`` nodes; return True (sticky) once the budget trips."""
        return self._check(cost) is not None

    def charge_memo(self, cells: int) -> None:
        """Account for ``cells`` memo-table cells; raise if past the cap."""
        self.start()
        self.memo_cells += cells
        if self.memo_cap is not None and self.memo_cells > self.memo_cap:
            if self.exhausted_reason != REASON_MEMO:
                self._trip(REASON_MEMO)
            raise BudgetExhaustedError(
                f"memo cap exceeded ({self.memo_cells} > {self.memo_cap} cells)",
                reason=REASON_MEMO,
            )

    # -- state -------------------------------------------------------------

    @property
    def exhausted(self) -> bool:
        return self.exhausted_reason is not None

    def status(self, default: str = "complete") -> str:
        """Map the tripped resource to an anytime status string."""
        if self.exhausted_reason == REASON_DEADLINE:
            return "timed_out"
        if self.exhausted_reason is not None:
            return "budget_exhausted"
        return default

    def under_pressure(self, fraction: float = 0.1) -> bool:
        """True once less than ``fraction`` of the deadline remains.

        Lets the planner/executor shed optional work (estimation, trace
        building) before the deadline actually trips.  Always False for
        budgets without a deadline.
        """
        if self.exhausted_reason is not None:
            return True
        if self._deadline_at is None or self.deadline is None:
            return False
        self.start()
        remaining = self._deadline_at - self.clock.now()
        return remaining < fraction * self.deadline


# -- ambient budget stack --------------------------------------------------

_BUDGET_STACK: list[Budget] = []


def current_budget() -> Budget | None:
    """The innermost ambient budget installed by :func:`use_budget`."""
    return _BUDGET_STACK[-1] if _BUDGET_STACK else None


@contextlib.contextmanager
def use_budget(budget: Budget | None) -> Iterator[Budget | None]:
    """Install ``budget`` as the ambient budget for the ``with`` body.

    ``None`` is accepted and installs nothing, so call sites can write
    ``with use_budget(maybe_budget):`` without branching.
    """
    if budget is None:
        yield None
        return
    _BUDGET_STACK.append(budget)
    try:
        yield budget
    finally:
        _BUDGET_STACK.pop()
