"""Injectable clocks for deadline enforcement.

Deadlines are only testable if the clock is a seam: production code reads
:data:`MONOTONIC_CLOCK`, tests substitute a :class:`FakeClock` that advances
deterministically, and the fault harness wraps either in a
:class:`repro.runtime.faults.SkewedClock`.  All clocks expose a single
``now() -> float`` returning seconds on a monotonic axis (never wall time,
so NTP steps cannot fire or starve a deadline).
"""

from __future__ import annotations

import time


class MonotonicClock:
    """The real process clock (:func:`time.monotonic`)."""

    def now(self) -> float:
        return time.monotonic()


class FakeClock:
    """A deterministic clock for tests.

    ``step`` seconds elapse on every ``now()`` call, which models a solver
    that does a fixed amount of work per checkpoint; ``advance`` jumps the
    clock explicitly.
    """

    def __init__(self, start: float = 0.0, step: float = 0.0) -> None:
        self._now = start
        self.step = step
        self.calls = 0

    def now(self) -> float:
        self.calls += 1
        self._now += self.step
        return self._now

    def advance(self, seconds: float) -> None:
        self._now += seconds


MONOTONIC_CLOCK = MonotonicClock()
