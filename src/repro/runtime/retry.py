"""Deadline-aware retry policy and circuit breaker for transient failures.

Every retry loop in this repo used to roll its own sleeps: the SQLite
cache tier slept fixed backoffs, the load generator never retried at
all, and a killed pool worker simply crashed the batch.  This module is
the one shared answer: a :class:`RetryPolicy` describes *how* to retry
(exponential backoff, seeded jitter, a bounded attempt count) and a
:class:`RetryController` tracks one operation's retry state, deciding
*whether* another attempt is allowed.

Three integrations make the policy deadline-safe and observable:

- **budgets** — a controller bound to a
  :class:`~repro.runtime.budget.Budget` (explicitly, or the ambient one
  from :func:`~repro.runtime.budget.use_budget`) gives up as soon as the
  next sleep would outlive the budget's deadline, so retries never push
  a request past its own deadline;
- **server hints** — ``retry_after_ms`` backoff hints (the admission
  controller's currency) act as a floor on the computed delay, so a
  polite client never hammers an overloaded server faster than asked;
- **events** — every retry emits ``retry.attempt`` and every
  abandonment ``retry.give_up`` (plus ``runtime.retry.*`` counters), so
  recovery behaviour is reconstructable from ``events.jsonl`` alone.

:class:`CircuitBreaker` is the companion for *connection-shaped*
failures: after ``threshold`` consecutive failures it opens (fail fast,
no network traffic), and after ``cooldown`` seconds it lets exactly one
half-open probe through; a probe success closes it again.  The solve
clients wire both together so a load run survives a server restart.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.runtime.budget import Budget, current_budget
from repro.runtime.clock import MONOTONIC_CLOCK

GIVE_UP_ATTEMPTS = "attempts"
GIVE_UP_DEADLINE = "deadline"

# Sentinel: "resolve the ambient budget at controller creation".
_AMBIENT = object()


@dataclass(frozen=True)
class RetryPolicy:
    """How to retry: attempt count, backoff curve, jitter.

    ``max_attempts`` counts *total* tries including the first, so
    ``max_attempts=1`` means "never retry".  The un-jittered delay before
    retry ``k`` (0-based) is ``min(max_delay, base_delay * multiplier**k)``;
    jitter adds up to ``jitter`` (a fraction) of that, drawn from a
    seeded RNG so a failing run replays exactly.  The policy itself is
    immutable and shareable; per-operation state lives in the
    :class:`RetryController` built by :meth:`controller`.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 1.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.base_delay < 0:
            raise ValueError("base_delay must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.max_delay < 0:
            raise ValueError("max_delay must be non-negative")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def backoff(self, retry_index: int) -> float:
        """The un-jittered delay before retry ``retry_index`` (0-based)."""
        if retry_index < 0:
            raise ValueError("retry_index must be non-negative")
        return min(self.max_delay, self.base_delay * self.multiplier**retry_index)

    def controller(
        self, site: str, budget: Budget | None | Any = _AMBIENT
    ) -> "RetryController":
        """Per-operation retry state for ``site``.

        ``budget`` defaults to the *ambient* budget at creation time
        (:func:`~repro.runtime.budget.current_budget`), pass ``None`` to
        retry without a deadline bound, or an explicit :class:`Budget`.
        """
        resolved = current_budget() if budget is _AMBIENT else budget
        return RetryController(self, site, resolved)

    def call(
        self,
        operation: Callable[[], Any],
        *,
        site: str,
        should_retry: Callable[[BaseException], bool],
        budget: Budget | None | Any = _AMBIENT,
        hint_for: Callable[[BaseException], int | None] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ) -> Any:
        """Run ``operation`` under this policy (the sync convenience loop).

        Exceptions ``should_retry`` rejects propagate immediately; on
        give-up (attempts exhausted or the budget deadline would be
        outlived) the *last* exception propagates, so callers keep their
        existing error handling.  ``hint_for`` may extract a
        ``retry_after_ms`` hint from the exception.
        """
        controller = self.controller(site, budget=budget)
        while True:
            try:
                return operation()
            except BaseException as exc:
                if not should_retry(exc):
                    raise
                hint = hint_for(exc) if hint_for is not None else None
                delay = controller.next_delay(
                    hint_ms=hint, reason=type(exc).__name__
                )
                if delay is None:
                    raise
                if delay > 0:
                    sleep(delay)


class RetryController:
    """One operation's retry state: failures seen, delays granted.

    Built by :meth:`RetryPolicy.controller`.  After each failure call
    :meth:`next_delay`; a float is the seconds to sleep before the next
    attempt, ``None`` means give up (and :attr:`gave_up` records why).
    """

    def __init__(
        self, policy: RetryPolicy, site: str, budget: Budget | None
    ) -> None:
        self.policy = policy
        self.site = site
        self.budget = budget
        self.failures = 0
        self.gave_up: str | None = None
        self._rng = random.Random(policy.seed)

    def next_delay(
        self, hint_ms: int | None = None, reason: str = ""
    ) -> float | None:
        """Record one failure; grant a backoff delay or give up.

        Gives up when the attempt count is exhausted, or when the bound
        budget has a deadline and the jittered delay would not fit in
        ``budget.remaining()`` — a retry that cannot finish sleeping
        before the deadline is never worth starting.
        """
        self.failures += 1
        if self.failures >= self.policy.max_attempts:
            return self._give_up(GIVE_UP_ATTEMPTS, reason)
        delay = self.policy.backoff(self.failures - 1)
        if self.policy.jitter > 0.0:
            delay *= 1.0 + self.policy.jitter * self._rng.random()
        if hint_ms is not None:
            # The server's hint is a floor, never a discount.
            delay = max(delay, hint_ms / 1000.0)
        if self.budget is not None:
            remaining = self.budget.remaining()
            if remaining is not None and delay >= remaining:
                return self._give_up(GIVE_UP_DEADLINE, reason)
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("runtime.retry.attempts")
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_RETRY_ATTEMPT,
                site=self.site,
                attempt=self.failures,
                delay_ms=round(delay * 1000.0, 3),
                hint_ms=hint_ms,
                reason=reason,
            )
        return delay

    def _give_up(self, why: str, reason: str) -> None:
        self.gave_up = why
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("runtime.retry.give_ups")
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_RETRY_GIVE_UP,
                site=self.site,
                attempts=self.failures,
                why=why,
                reason=reason,
            )
        return None


BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half_open"


class CircuitBreaker:
    """Fail fast after repeated failures; probe cautiously after a cooldown.

    State machine: ``closed`` (all calls allowed) → ``open`` after
    ``threshold`` *consecutive* failures (every call refused for
    ``cooldown`` seconds) → ``half_open`` (exactly one probe allowed) →
    ``closed`` on probe success, back to ``open`` on probe failure.
    The clock is injectable for deterministic tests, like
    :class:`~repro.runtime.budget.Budget`.

    The breaker is deliberately obs-light: it counts lifetime ``opens``
    itself and bumps a ``runtime.breaker.opens`` counter on each
    closed→open transition; the surrounding retry loop owns the event
    trail.
    """

    def __init__(
        self, threshold: int = 5, cooldown: float = 1.0, clock=None
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock if clock is not None else MONOTONIC_CLOCK
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self.opens = 0
        self._opened_at: float | None = None

    def allow(self) -> bool:
        """May a call proceed right now?  Transitions open → half-open
        (and burns the single probe) when the cooldown has elapsed."""
        if self.state == BREAKER_CLOSED:
            return True
        if self.state == BREAKER_OPEN:
            assert self._opened_at is not None
            if self.clock.now() - self._opened_at >= self.cooldown:
                self.state = BREAKER_HALF_OPEN
                return True
            return False
        return False  # half-open: the one probe is already in flight

    def retry_in(self) -> float:
        """Seconds until :meth:`allow` could next return True (0 when a
        call is allowed right now; ``cooldown`` while half-open, since a
        failed probe re-opens for a full cooldown)."""
        if self.state == BREAKER_CLOSED:
            return 0.0
        if self.state == BREAKER_OPEN:
            assert self._opened_at is not None
            return max(0.0, self.cooldown - (self.clock.now() - self._opened_at))
        return self.cooldown

    def record_success(self) -> None:
        """A call succeeded: close (from any state) and forget failures."""
        self.state = BREAKER_CLOSED
        self.consecutive_failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        """A call failed: trip immediately from half-open, or once the
        consecutive-failure count reaches the threshold."""
        self.consecutive_failures += 1
        should_open = (
            self.state == BREAKER_HALF_OPEN
            or self.consecutive_failures >= self.threshold
        )
        if should_open:
            if self.state != BREAKER_OPEN:
                self.opens += 1
                if obs_metrics.METRICS.enabled:
                    obs_metrics.inc("runtime.breaker.opens")
            self.state = BREAKER_OPEN
            self._opened_at = self.clock.now()


__all__ = [
    "BREAKER_CLOSED",
    "BREAKER_HALF_OPEN",
    "BREAKER_OPEN",
    "CircuitBreaker",
    "GIVE_UP_ATTEMPTS",
    "GIVE_UP_DEADLINE",
    "RetryController",
    "RetryPolicy",
]
