"""Cheap column statistics and join selectivity estimation.

The planner's inputs: per-column summaries collected in one pass, and a
sampling-based selectivity estimate for arbitrary predicates.  Everything
is deterministic given the seed, so plans are reproducible.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass
from typing import Any

from repro.joins.predicates import JoinPredicate
from repro.obs import metrics as obs_metrics
from repro.relations.domains import Domain
from repro.relations.relation import Relation


@dataclass(frozen=True)
class ColumnStats:
    """A one-pass summary of a single-column relation."""

    count: int
    distinct: int | None  # None when values are unhashable
    domain: Domain

    @property
    def duplication_factor(self) -> float:
        """Mean tuples per distinct value (1.0 = key column)."""
        if not self.count or not self.distinct:
            return 1.0
        return self.count / self.distinct


def collect_stats(relation: Relation) -> ColumnStats:
    """Collect :class:`ColumnStats` for a relation."""
    try:
        distinct: int | None = len(set(relation.values))
    except TypeError:
        distinct = None
    return ColumnStats(
        count=len(relation), distinct=distinct, domain=relation.domain
    )


def derive_seed(
    left: Relation,
    right: Relation,
    predicate: JoinPredicate,
    seed: int = 0,
) -> int:
    """A per-call sampling seed derived from the *content identity* of the
    estimate: relation names and sizes, the predicate class, and the base
    seed.

    Two properties matter for reproducible plans:

    - **cross-process stability** — the derivation uses CRC-32, never
      Python's randomized ``hash()``, so ``--jobs 1`` and ``--jobs N``
      worker processes draw identical samples and produce identical
      estimates (and therefore identical plans);
    - **per-query independence** — distinct queries sharing a base seed
      no longer reuse one sample-index sequence, so correlated sampling
      artifacts cannot line up across a workload.
    """
    key = (
        f"{left.name}|{len(left)}|{right.name}|{len(right)}|"
        f"{predicate.name}|{seed}"
    )
    return zlib.crc32(key.encode("utf-8"))


def estimate_selectivity(
    left: Relation,
    right: Relation,
    predicate: JoinPredicate,
    sample_size: int = 64,
    seed: int = 0,
) -> float:
    """Estimate the fraction of the cross product satisfying ``predicate``
    by evaluating it on a random sample of tuple pairs.

    Returns 0.0 for empty inputs.  The estimate drives the planner's
    expected-output-size computation; it is *not* used for correctness.

    When the whole cross product fits inside the sample budget
    (``n_left * n_right <= sample_size``) it is enumerated exactly: on
    tiny inputs with-replacement sampling both biased the estimate (pairs
    drawn more than once carry extra weight) and made it look
    nondeterministic across sample sizes, for more work than the exact
    count.  The chosen mode is surfaced through the
    ``planner.selectivity.{exact,sampled}`` metrics counters.

    The sampled path seeds a private generator via :func:`derive_seed`
    (``seed`` is the base seed of that derivation), so estimates are a
    pure function of the inputs — identical in every process.
    """
    n_left, n_right = len(left), len(right)
    if n_left == 0 or n_right == 0:
        return 0.0
    left_values = left.values
    right_values = right.values
    cross = n_left * n_right
    if cross <= sample_size:
        hits = sum(
            1 for a in left_values for b in right_values if predicate.matches(a, b)
        )
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("planner.selectivity.exact")
            obs_metrics.inc("planner.selectivity.pairs_evaluated", cross)
        return hits / cross
    rng = random.Random(derive_seed(left, right, predicate, seed))
    pairs = sample_size
    hits = 0
    for _ in range(pairs):
        a = left_values[rng.randrange(n_left)]
        b = right_values[rng.randrange(n_right)]
        if predicate.matches(a, b):
            hits += 1
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("planner.selectivity.sampled")
        obs_metrics.inc("planner.selectivity.pairs_evaluated", pairs)
    return hits / pairs


def estimate_output_size(
    left: Relation,
    right: Relation,
    predicate: JoinPredicate,
    sample_size: int = 64,
    seed: int = 0,
) -> float:
    """Expected ``m``: selectivity × cross-product size.

    For equijoins a closed-form refinement is used when both sides hash:
    ``|R|·|S| / max(d_R, d_S)`` (the textbook containment assumption),
    which is far more stable than sampling at low selectivities.
    """
    from repro.joins.predicates import Equality

    if isinstance(predicate, Equality):
        left_stats = collect_stats(left)
        right_stats = collect_stats(right)
        if left_stats.distinct and right_stats.distinct:
            return (
                len(left) * len(right) / max(left_stats.distinct, right_stats.distinct)
            )
    selectivity = estimate_selectivity(left, right, predicate, sample_size, seed)
    return selectivity * len(left) * len(right)
