"""Rule-plus-cost join planning.

The planner maps a :class:`~repro.engine.query.JoinQuery` to one of the
library's join algorithms:

- **equality** → sort-merge when the estimated output is large relative to
  the inputs (its emission order pebbles perfectly, so downstream
  pipelines pay no jumps), hash join otherwise (cheapest per probe);
- **spatial overlap** → plane sweep for small inputs, R-tree join when an
  index pays off, PBSM when the extent is densely populated;
- **set containment** → inverted-index join (exact, no verify) unless the
  element universe is tiny, where signatures filter well;
- anything else → block nested loops (always correct).

The returned :class:`Plan` carries the chosen algorithm, the reasoning
string (an "EXPLAIN" line), the estimates it was based on, and — since
PR 9 — a structured :class:`~repro.obs.planquality.PlanRecord` listing
every candidate considered with its cost-model estimate, so plan
decisions are inspectable as data (``repro explain``) and auditable
against actuals (q-error calibration, ``make plan-gate``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.engine.query import JoinQuery
from repro.engine.stats import collect_stats, estimate_output_size
from repro.joins.algorithms import (
    block_nested_loops,
    hash_join,
    interval_merge_join,
    inverted_index_join,
    pbsm_join,
    plane_sweep_join,
    rtree_join,
    signature_nested_loops,
    sort_merge_join,
)
from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import planquality
from repro.obs import trace as obs_trace
from repro.obs.planquality import CandidateRecord, PlanRecord
from repro.relations.domains import Domain
from repro.runtime.budget import Budget, current_budget

Algorithm = Callable[..., list]

# Input size beyond which index structures beat a sweep for spatial joins.
RTREE_THRESHOLD = 400
# Element-universe size under which signatures filter containment well.
SIGNATURE_UNIVERSE_THRESHOLD = 16
# Estimated selectivity (m / |R||S|) at which a large spatial extent
# counts as densely populated: partition-based spatial merge beats the
# R-tree's index descent because most index probes would hit anyway.
PBSM_DENSITY_THRESHOLD = 0.05


@dataclass(frozen=True)
class Plan:
    """A chosen execution strategy for one join query."""

    query: JoinQuery
    algorithm_name: str
    reason: str
    estimated_output: float
    # The structured EXPLAIN record (candidates, costs, actuals once
    # executed).  Excluded from equality/hash: two plans that agree on
    # the choice are the same plan regardless of observation state.
    record: PlanRecord | None = field(default=None, compare=False, repr=False)

    def explain(self) -> str:
        """The one-line EXPLAIN string, rendered from the structured
        record when present so text and JSON can never disagree."""
        if self.record is not None:
            return self.record.explain_line()
        return (
            f"{self.query.describe()} -> {self.algorithm_name} "
            f"(est. m = {self.estimated_output:.0f}; {self.reason})"
        )


_ALGORITHMS: dict[str, Algorithm] = {
    "sort-merge": sort_merge_join,
    "hash": hash_join,
    "interval-merge": interval_merge_join,
    "plane-sweep": plane_sweep_join,
    "rtree": rtree_join,
    "pbsm": pbsm_join,
    "inverted-index": inverted_index_join,
    "signature-NL": signature_nested_loops,
    "block-NL": None,  # handled specially (needs the predicate argument)
}


def algorithm_by_name(name: str) -> Algorithm | None:
    return _ALGORITHMS.get(name)


def _nlogn(n: int) -> float:
    """``n log2 n`` with the log clamped at 1 (cost-model helper)."""
    return n * max(1.0, math.log2(n) if n > 1 else 1.0)


def plan(query: JoinQuery, budget: Budget | None = None) -> Plan:
    """Choose an algorithm for ``query`` (see module docstring).

    Under deadline pressure (``budget.under_pressure()``, explicit or
    ambient) the planner sheds its own work: estimation is skipped and a
    safe per-predicate default is served — degraded planning beats a
    missed deadline.

    Every plan carries a :class:`~repro.obs.planquality.PlanRecord`;
    when the plan log (:mod:`repro.obs.planquality`) is enabled the
    record is also appended there, and a ``planner.plan`` event is
    emitted when the event log is on.
    """
    if budget is None:
        budget = current_budget()
    with obs_trace.span("engine.plan"):
        if budget is not None and budget.under_pressure():
            chosen = _choose_safe_default(query)
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("planner.deadline_pressure")
        else:
            chosen = _choose(query)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("planner.plans")
        obs_metrics.inc(f"planner.algorithm.{chosen.algorithm_name}")
    record = chosen.record
    if record is not None:
        planquality.PLANS.record(record)
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_PLANNER_PLAN,
                predicate=record.predicate,
                algorithm=record.algorithm,
                estimated_output=record.estimated_output,
                candidates=len(record.candidates),
                deadline_pressure=record.deadline_pressure,
            )
    return chosen


def _make_plan(
    query: JoinQuery,
    estimated: float,
    candidates: list[CandidateRecord],
    deadline_pressure: bool = False,
) -> Plan:
    """Assemble a :class:`Plan` (and its record) from scored candidates;
    exactly one candidate must carry ``chosen=True``."""
    chosen = next(c for c in candidates if c.chosen)
    record = PlanRecord(
        query=query.describe(),
        predicate=query.predicate.name,
        left=query.left.name,
        right=query.right.name,
        left_size=len(query.left),
        right_size=len(query.right),
        algorithm=chosen.algorithm,
        reason=chosen.reason,
        estimated_output=estimated,
        candidates=candidates,
        deadline_pressure=deadline_pressure,
    )
    return Plan(query, chosen.algorithm, chosen.reason, estimated, record)


def _choose_safe_default(query: JoinQuery) -> Plan:
    """A no-estimation fallback plan: always-correct algorithms chosen by
    predicate type alone, used when the budget is nearly exhausted."""
    predicate = query.predicate
    reason = "deadline pressure: skipped estimation"
    if isinstance(predicate, Equality):
        name = "hash"
    elif isinstance(predicate, SpatialOverlap):
        if (
            query.left.domain == Domain.INTERVAL
            and query.right.domain == Domain.INTERVAL
        ):
            name = "interval-merge"
        else:
            name = "plane-sweep"
    elif isinstance(predicate, SetContainment):
        name = "inverted-index"
    else:
        name = "block-NL"
    candidates = [
        CandidateRecord(
            algorithm=name, estimated_cost=-1.0, reason=reason, chosen=True
        )
    ]
    return _make_plan(query, -1.0, candidates, deadline_pressure=True)


def _choose(query: JoinQuery) -> Plan:
    predicate = query.predicate
    estimated = estimate_output_size(query.left, query.right, predicate)
    n_left, n_right = len(query.left), len(query.right)
    cross = max(1, n_left * n_right)

    if isinstance(predicate, Equality):
        inputs = query.input_size
        sort_merge_wins = estimated >= inputs
        candidates = [
            CandidateRecord(
                "sort-merge",
                _nlogn(n_left) + _nlogn(n_right) + estimated,
                "large output: perfect-pebbling emission order pays off"
                if sort_merge_wins
                else "output below inputs: sort cost not repaid",
                chosen=sort_merge_wins,
            ),
            CandidateRecord(
                "hash",
                n_left + n_right + estimated,
                "small output: cheapest per probe"
                if not sort_merge_wins
                else "probe savings lose to pebbling jumps at this output size",
                chosen=not sort_merge_wins,
            ),
        ]
        return _make_plan(query, estimated, candidates)

    if isinstance(predicate, SpatialOverlap):
        if (
            query.left.domain == Domain.INTERVAL
            and query.right.domain == Domain.INTERVAL
        ):
            candidates = [
                CandidateRecord(
                    "interval-merge",
                    _nlogn(n_left) + _nlogn(n_right) + estimated,
                    "interval columns: temporal merge",
                    chosen=True,
                ),
                CandidateRecord(
                    "plane-sweep",
                    _nlogn(query.input_size) + estimated,
                    "generic sweep ignores interval adjacency",
                ),
            ]
            return _make_plan(query, estimated, candidates)
        density = estimated / cross
        large = query.input_size >= RTREE_THRESHOLD
        dense = density >= PBSM_DENSITY_THRESHOLD
        pick = "pbsm" if large and dense else "rtree" if large else "plane-sweep"
        candidates = [
            CandidateRecord(
                "plane-sweep",
                _nlogn(query.input_size) + estimated,
                "small inputs: sweep wins"
                if pick == "plane-sweep"
                else "inputs too large: sweep's active list thrashes",
                chosen=pick == "plane-sweep",
            ),
            CandidateRecord(
                "rtree",
                _nlogn(n_right) + _nlogn(n_left) + estimated,
                "large inputs: index descent"
                if pick == "rtree"
                else (
                    f"dense extent (sel {density:.3f}): probes hit everywhere"
                    if large
                    else "index build not repaid on small inputs"
                ),
                chosen=pick == "rtree",
            ),
            CandidateRecord(
                "pbsm",
                2 * query.input_size + estimated,
                f"dense extent (sel {density:.3f}): partitioning beats descent"
                if pick == "pbsm"
                else "sparse extent: partitions mostly empty",
                chosen=pick == "pbsm",
            ),
        ]
        return _make_plan(query, estimated, candidates)

    if isinstance(predicate, SetContainment):
        universe: set[Any] = set()
        for value in query.right.values:
            universe |= value
        tiny = len(universe) <= SIGNATURE_UNIVERSE_THRESHOLD
        candidates = [
            CandidateRecord(
                "signature-NL",
                n_left * n_right / 8 + estimated,
                f"tiny universe ({len(universe)}): signatures filter well"
                if tiny
                else f"universe {len(universe)} overflows signature bits",
                chosen=tiny,
            ),
            CandidateRecord(
                "inverted-index",
                n_left + n_right + estimated,
                "exact posting intersection"
                if not tiny
                else "posting lists degenerate on a tiny universe",
                chosen=not tiny,
            ),
        ]
        return _make_plan(query, estimated, candidates)

    candidates = [
        CandidateRecord(
            "block-NL",
            float(n_left * n_right),
            "generic predicate: nested loops",
            chosen=True,
        )
    ]
    return _make_plan(query, estimated, candidates)
