"""Rule-plus-cost join planning.

The planner maps a :class:`~repro.engine.query.JoinQuery` to one of the
library's join algorithms:

- **equality** → sort-merge when the estimated output is large relative to
  the inputs (its emission order pebbles perfectly, so downstream
  pipelines pay no jumps), hash join otherwise (cheapest per probe);
- **spatial overlap** → plane sweep for small inputs, R-tree join when an
  index pays off, PBSM when the extent is densely populated;
- **set containment** → inverted-index join (exact, no verify) unless the
  element universe is tiny, where signatures filter well;
- anything else → block nested loops (always correct).

The returned :class:`Plan` carries the chosen algorithm, the reasoning
string (an "EXPLAIN" line), and the estimates it was based on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.engine.query import JoinQuery
from repro.engine.stats import collect_stats, estimate_output_size
from repro.joins.algorithms import (
    block_nested_loops,
    hash_join,
    interval_merge_join,
    inverted_index_join,
    pbsm_join,
    plane_sweep_join,
    rtree_join,
    signature_nested_loops,
    sort_merge_join,
)
from repro.joins.predicates import Equality, SetContainment, SpatialOverlap
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relations.domains import Domain
from repro.runtime.budget import Budget, current_budget

Algorithm = Callable[..., list]

# Input size beyond which index structures beat a sweep for spatial joins.
RTREE_THRESHOLD = 400
# Element-universe size under which signatures filter containment well.
SIGNATURE_UNIVERSE_THRESHOLD = 16


@dataclass(frozen=True)
class Plan:
    """A chosen execution strategy for one join query."""

    query: JoinQuery
    algorithm_name: str
    reason: str
    estimated_output: float

    def explain(self) -> str:
        return (
            f"{self.query.describe()} -> {self.algorithm_name} "
            f"(est. m = {self.estimated_output:.0f}; {self.reason})"
        )


_ALGORITHMS: dict[str, Algorithm] = {
    "sort-merge": sort_merge_join,
    "hash": hash_join,
    "interval-merge": interval_merge_join,
    "plane-sweep": plane_sweep_join,
    "rtree": rtree_join,
    "pbsm": pbsm_join,
    "inverted-index": inverted_index_join,
    "signature-NL": signature_nested_loops,
    "block-NL": None,  # handled specially (needs the predicate argument)
}


def algorithm_by_name(name: str) -> Algorithm | None:
    return _ALGORITHMS.get(name)


def plan(query: JoinQuery, budget: Budget | None = None) -> Plan:
    """Choose an algorithm for ``query`` (see module docstring).

    Under deadline pressure (``budget.under_pressure()``, explicit or
    ambient) the planner sheds its own work: estimation is skipped and a
    safe per-predicate default is served — degraded planning beats a
    missed deadline.
    """
    if budget is None:
        budget = current_budget()
    with obs_trace.span("engine.plan"):
        if budget is not None and budget.under_pressure():
            chosen = _choose_safe_default(query)
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("planner.deadline_pressure")
        else:
            chosen = _choose(query)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("planner.plans")
        obs_metrics.inc(f"planner.algorithm.{chosen.algorithm_name}")
    return chosen


def _choose_safe_default(query: JoinQuery) -> Plan:
    """A no-estimation fallback plan: always-correct algorithms chosen by
    predicate type alone, used when the budget is nearly exhausted."""
    predicate = query.predicate
    reason = "deadline pressure: skipped estimation"
    if isinstance(predicate, Equality):
        return Plan(query, "hash", reason, -1.0)
    if isinstance(predicate, SpatialOverlap):
        if (
            query.left.domain == Domain.INTERVAL
            and query.right.domain == Domain.INTERVAL
        ):
            return Plan(query, "interval-merge", reason, -1.0)
        return Plan(query, "plane-sweep", reason, -1.0)
    if isinstance(predicate, SetContainment):
        return Plan(query, "inverted-index", reason, -1.0)
    return Plan(query, "block-NL", reason, -1.0)


def _choose(query: JoinQuery) -> Plan:
    predicate = query.predicate
    estimated = estimate_output_size(query.left, query.right, predicate)

    if isinstance(predicate, Equality):
        inputs = query.input_size
        if estimated >= inputs:
            return Plan(
                query,
                "sort-merge",
                "large output: perfect-pebbling emission order pays off",
                estimated,
            )
        return Plan(query, "hash", "small output: cheapest per probe", estimated)

    if isinstance(predicate, SpatialOverlap):
        if (
            query.left.domain == Domain.INTERVAL
            and query.right.domain == Domain.INTERVAL
        ):
            return Plan(
                query, "interval-merge", "interval columns: temporal merge", estimated
            )
        if query.input_size >= RTREE_THRESHOLD:
            return Plan(query, "rtree", "large inputs: index descent", estimated)
        return Plan(query, "plane-sweep", "small inputs: sweep wins", estimated)

    if isinstance(predicate, SetContainment):
        universe: set[Any] = set()
        for value in query.right.values:
            universe |= value
        if len(universe) <= SIGNATURE_UNIVERSE_THRESHOLD:
            return Plan(
                query,
                "signature-NL",
                f"tiny universe ({len(universe)}): signatures filter well",
                estimated,
            )
        return Plan(query, "inverted-index", "exact posting intersection", estimated)

    return Plan(query, "block-NL", "generic predicate: nested loops", estimated)
