"""Query execution: run a plan, return rows plus pebbling accounting.

Execution materializes the value pairs and, when requested, builds the
join graph and converts the emission order into a pebbling trace — the
paper's model as an explain-analyze metric for real executions.

Execution also *closes the planner's feedback loop*: the plan's
structured record (:class:`~repro.obs.planquality.PlanRecord`) is
completed with the actual output size, the derived q-error is observed
as a metric, a ``planner.misestimate`` event fires when the estimate was
off by more than the threshold, and — with ``shadow=True`` on small
inputs — the runner-up candidates are shadow-executed and scored by
pebbling effective cost so plan regret is measurable, not guessed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.planner import Plan, algorithm_by_name, plan as make_plan
from repro.engine.query import JoinQuery
from repro.errors import SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.joins.algorithms import block_nested_loops
from repro.joins.join_graph import build_join_graph_cached
from repro.joins.trace import TraceReport, trace_report
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import planquality
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget, current_budget


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one executed join query."""

    plan: Plan
    pairs: list  # (left TupleRef, right TupleRef) in emission order
    rows: list[tuple[Any, Any]]  # materialized value pairs, same order
    trace: TraceReport | None  # pebbling accounting (None if not requested)

    @property
    def output_size(self) -> int:
        return len(self.pairs)

    def explain_analyze(self) -> str:
        """An EXPLAIN ANALYZE-style line including pebbling metrics.

        Rendered from the plan's structured record when present (the
        same record ``repro explain --json`` serializes), so the text
        and JSON forms cannot disagree.
        """
        record = self.plan.record
        actual = (
            record.actual_output
            if record is not None and record.actual_output is not None
            else self.output_size
        )
        base = f"{self.plan.explain()}; actual m = {actual}"
        if self.trace is None:
            return base
        return (
            f"{base}; pebbling pi = {self.trace.effective_cost} "
            f"(ratio {self.trace.cost_ratio:.3f}, jumps {self.trace.jumps})"
        )


def _run_candidate(query: JoinQuery, name: str) -> list:
    """Execute one candidate algorithm by name (shadow-execution path)."""
    if name == "block-NL":
        return block_nested_loops(query.left, query.right, query.predicate)
    algorithm = algorithm_by_name(name)
    if algorithm is None:
        raise SolverError(f"unknown algorithm {name!r}")
    return algorithm(query.left, query.right)


def _shadow_execute(
    query: JoinQuery,
    record: planquality.PlanRecord,
    pairs: list,
    graph: BipartiteGraph,
) -> None:
    """Score every candidate by pebbling effective cost (the paper's
    deterministic cost model — wall time would not replay) and complete
    the record's regret fields in place."""
    chosen_cost: int | None = None
    best_cost: int | None = None
    best_name: str | None = None
    for candidate in record.candidates:
        candidate_pairs = (
            pairs if candidate.chosen else _run_candidate(query, candidate.algorithm)
        )
        report = trace_report(graph, candidate_pairs, candidate.algorithm)
        candidate.shadow_cost = report.effective_cost
        if candidate.chosen:
            chosen_cost = report.effective_cost
        if best_cost is None or report.effective_cost < best_cost:
            best_cost = report.effective_cost
            best_name = candidate.algorithm
    record.shadow_checked = True
    if chosen_cost is not None and chosen_cost == best_cost:
        # Ties go to the planner: equal-cost alternatives are not regret.
        record.best_algorithm = record.algorithm
        record.regret = 0
    else:
        record.best_algorithm = best_name
        record.regret = (
            None
            if chosen_cost is None or best_cost is None
            else chosen_cost - best_cost
        )


def _close_feedback_loop(record: planquality.PlanRecord, actual: int) -> None:
    """Fill actuals on the plan record and surface misestimates."""
    record.actual_output = actual
    q_error = record.q_error
    if q_error is None:
        return
    if obs_metrics.METRICS.enabled:
        obs_metrics.observe("planner.q_error", q_error)
    if (
        q_error > planquality.MISESTIMATE_THRESHOLD
        and obs_events.EVENTS.enabled
    ):
        obs_events.emit(
            obs_events.EVENT_PLANNER_MISESTIMATE,
            predicate=record.predicate,
            algorithm=record.algorithm,
            estimated_output=record.estimated_output,
            actual_output=actual,
            q_error=round(q_error, 4),
        )
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("planner.misestimates")


def execute(
    query: JoinQuery,
    chosen_plan: Plan | None = None,
    with_trace: bool = True,
    join_graph: BipartiteGraph | None = None,
    budget: Budget | None = None,
    shadow: bool = False,
) -> QueryResult:
    """Plan (unless a plan is supplied) and execute ``query``.

    With ``with_trace=True`` (default) the join graph is also built and
    the execution's pebbling costs reported; pass False to skip that
    overhead for large joins.  A caller that already materialized the
    query's join graph can thread it through ``join_graph`` to skip the
    rebuild (otherwise the memoized builder covers repeated executions).

    ``budget`` (explicit, or ambient via :func:`repro.runtime.use_budget`)
    threads a deadline through planning and sheds the optional pebbling
    trace under pressure: rows are the contract, the trace is diagnostics.

    ``shadow=True`` additionally shadow-executes the plan's runner-up
    candidates on small inputs (``input_size`` up to
    :data:`~repro.obs.planquality.SHADOW_INPUT_LIMIT`) and records
    plan-regret: whether the chosen candidate was the a-posteriori
    cheapest by pebbling cost.  Skipped under deadline pressure.
    """
    if budget is None:
        budget = current_budget()
    with obs_trace.span("engine.execute"):
        the_plan = chosen_plan or make_plan(query, budget=budget)
        if the_plan.query is not query and the_plan.query != query:
            raise SolverError("plan does not belong to this query")
        name = the_plan.algorithm_name
        with obs_trace.span("engine.join", algorithm=name):
            if name == "block-NL":
                pairs = block_nested_loops(
                    query.left, query.right, query.predicate
                )
            else:
                algorithm = algorithm_by_name(name)
                if algorithm is None:
                    raise SolverError(f"unknown algorithm {name!r}")
                pairs = algorithm(query.left, query.right)
        with obs_trace.span("engine.materialize", pairs=len(pairs)):
            rows = [
                (query.left.value(l_ref), query.right.value(r_ref))
                for l_ref, r_ref in pairs
            ]
        under_pressure = budget is not None and budget.under_pressure()
        trace = None
        if with_trace and under_pressure:
            # Shed the diagnostic trace rather than blow the deadline.
            with_trace = False
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("executor.trace_skipped")
        graph: BipartiteGraph | None = join_graph
        if with_trace:
            with obs_trace.span("engine.trace"):
                if graph is None:
                    graph = build_join_graph_cached(
                        query.left, query.right, query.predicate
                    )
                trace = trace_report(graph, pairs, name)
        record = the_plan.record
        if record is not None:
            _close_feedback_loop(record, len(pairs))
            if (
                shadow
                and not under_pressure
                and len(record.candidates) > 1
                and query.input_size <= planquality.SHADOW_INPUT_LIMIT
            ):
                with obs_trace.span("engine.shadow"):
                    if graph is None:
                        graph = build_join_graph_cached(
                            query.left, query.right, query.predicate
                        )
                    _shadow_execute(query, record, pairs, graph)
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("executor.queries")
            obs_metrics.inc("executor.rows_emitted", len(rows))
            obs_metrics.observe("executor.output_size", len(pairs))
        return QueryResult(plan=the_plan, pairs=pairs, rows=rows, trace=trace)
