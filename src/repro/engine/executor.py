"""Query execution: run a plan, return rows plus pebbling accounting.

Execution materializes the value pairs and, when requested, builds the
join graph and converts the emission order into a pebbling trace — the
paper's model as an explain-analyze metric for real executions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.engine.planner import Plan, algorithm_by_name, plan as make_plan
from repro.engine.query import JoinQuery
from repro.errors import SolverError
from repro.graphs.bipartite import BipartiteGraph
from repro.joins.algorithms import block_nested_loops
from repro.joins.join_graph import build_join_graph_cached
from repro.joins.trace import TraceReport, trace_report
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget, current_budget


@dataclass(frozen=True)
class QueryResult:
    """The outcome of one executed join query."""

    plan: Plan
    pairs: list  # (left TupleRef, right TupleRef) in emission order
    rows: list[tuple[Any, Any]]  # materialized value pairs, same order
    trace: TraceReport | None  # pebbling accounting (None if not requested)

    @property
    def output_size(self) -> int:
        return len(self.pairs)

    def explain_analyze(self) -> str:
        """An EXPLAIN ANALYZE-style line including pebbling metrics."""
        base = f"{self.plan.explain()}; actual m = {self.output_size}"
        if self.trace is None:
            return base
        return (
            f"{base}; pebbling pi = {self.trace.effective_cost} "
            f"(ratio {self.trace.cost_ratio:.3f}, jumps {self.trace.jumps})"
        )


def execute(
    query: JoinQuery,
    chosen_plan: Plan | None = None,
    with_trace: bool = True,
    join_graph: BipartiteGraph | None = None,
    budget: Budget | None = None,
) -> QueryResult:
    """Plan (unless a plan is supplied) and execute ``query``.

    With ``with_trace=True`` (default) the join graph is also built and
    the execution's pebbling costs reported; pass False to skip that
    overhead for large joins.  A caller that already materialized the
    query's join graph can thread it through ``join_graph`` to skip the
    rebuild (otherwise the memoized builder covers repeated executions).

    ``budget`` (explicit, or ambient via :func:`repro.runtime.use_budget`)
    threads a deadline through planning and sheds the optional pebbling
    trace under pressure: rows are the contract, the trace is diagnostics.
    """
    if budget is None:
        budget = current_budget()
    with obs_trace.span("engine.execute"):
        the_plan = chosen_plan or make_plan(query, budget=budget)
        if the_plan.query is not query and the_plan.query != query:
            raise SolverError("plan does not belong to this query")
        name = the_plan.algorithm_name
        with obs_trace.span("engine.join", algorithm=name):
            if name == "block-NL":
                pairs = block_nested_loops(
                    query.left, query.right, query.predicate
                )
            else:
                algorithm = algorithm_by_name(name)
                if algorithm is None:
                    raise SolverError(f"unknown algorithm {name!r}")
                pairs = algorithm(query.left, query.right)
        with obs_trace.span("engine.materialize", pairs=len(pairs)):
            rows = [
                (query.left.value(l_ref), query.right.value(r_ref))
                for l_ref, r_ref in pairs
            ]
        trace = None
        if with_trace and budget is not None and budget.under_pressure():
            # Shed the diagnostic trace rather than blow the deadline.
            with_trace = False
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("executor.trace_skipped")
        if with_trace:
            with obs_trace.span("engine.trace"):
                graph = join_graph if join_graph is not None else (
                    build_join_graph_cached(
                        query.left, query.right, query.predicate
                    )
                )
                trace = trace_report(graph, pairs, name)
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("executor.queries")
            obs_metrics.inc("executor.rows_emitted", len(rows))
            obs_metrics.observe("executor.output_size", len(pairs))
        return QueryResult(plan=the_plan, pairs=pairs, rows=rows, trace=trace)
