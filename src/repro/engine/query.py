"""Join query descriptions."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PredicateError
from repro.joins.predicates import JoinPredicate
from repro.relations.relation import Relation


@dataclass(frozen=True)
class JoinQuery:
    """A two-relation join: ``left ⋈_θ right``.

    Immutable; domain compatibility is checked at construction so planning
    and execution never see ill-typed queries.
    """

    left: Relation
    right: Relation
    predicate: JoinPredicate

    def __post_init__(self) -> None:
        if not self.predicate.accepts(self.left.domain, self.right.domain):
            raise PredicateError(
                f"{self.predicate.name} cannot join "
                f"{self.left.domain.value} with {self.right.domain.value}"
            )

    @property
    def input_size(self) -> int:
        return len(self.left) + len(self.right)

    def describe(self) -> str:
        return (
            f"{self.left.name}({len(self.left)} tuples) "
            f"{self.predicate.name} "
            f"{self.right.name}({len(self.right)} tuples)"
        )
