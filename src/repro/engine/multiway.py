"""The multiway predicate path: planning and executing conjunctive queries.

Binary queries go through :func:`repro.engine.planner.plan` /
:func:`repro.engine.executor.execute`; full conjunctive queries (triangle,
4-cycle, clique — anything with more than two atoms) come through here.
The planner scores three candidates:

- ``binary-cascade`` — pairwise hash joins; its per-stage intermediate
  sizes are estimated skew-aware (exact first stage from value counters);
- ``lftj`` — Leapfrog Triejoin, intermediate work bounded by the AGM
  output bound;
- ``generic`` — generic join, the reference WCOJ, never chosen
  automatically (same bound as LFTJ, higher constants).

Decision rule: take the cascade when no estimated stage exceeds the AGM
bound (on such instances the pairwise plan is safe and its constants are
lower), otherwise LFTJ.  Plans carry the same structured
:class:`~repro.obs.planquality.PlanRecord` as binary plans — candidates
with estimated intermediate sizes, actuals once executed — so ``repro
explain``, the plans log, and q-error calibration all see multiway
decisions with no extra plumbing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.executor import _close_feedback_loop
from repro.errors import SolverError
from repro.joins.multiway.bounds import agm_bound
from repro.joins.multiway.cascade import binary_cascade, estimate_cascade
from repro.joins.multiway.generic import generic_join
from repro.joins.multiway.leapfrog import leapfrog_triejoin
from repro.joins.multiway.query import MultiwayQuery
from repro.joins.multiway.result import MultiwayResult
from repro.joins.trace import MultiwayTraceReport, multiway_trace_report
from repro.obs import events as obs_events
from repro.obs import metrics as obs_metrics
from repro.obs import planquality
from repro.obs import trace as obs_trace
from repro.obs.planquality import CandidateRecord, PlanRecord
from repro.runtime.budget import Budget, current_budget

MULTIWAY_ALGORITHMS = ("lftj", "generic", "binary-cascade")


@dataclass(frozen=True)
class MultiwayPlan:
    """A chosen execution strategy for one multiway query."""

    query: MultiwayQuery
    algorithm_name: str
    reason: str
    estimated_output: float
    agm: float
    record: PlanRecord | None = field(default=None, compare=False, repr=False)

    def explain(self) -> str:
        if self.record is not None:
            return self.record.explain_line()
        return (
            f"{self.query.describe()} -> {self.algorithm_name} "
            f"(est. m = {self.estimated_output:.0f}; {self.reason})"
        )


@dataclass
class MultiwayQueryResult:
    """One executed multiway query: plan, bindings, counters, trace."""

    plan: MultiwayPlan | None
    result: MultiwayResult
    agm: float
    trace: MultiwayTraceReport | None = None

    @property
    def rows(self) -> list[tuple]:
        return self.result.bindings


def plan_multiway(
    query: MultiwayQuery, budget: Budget | None = None
) -> MultiwayPlan:
    """Choose an algorithm for ``query`` (see module docstring).

    Under deadline pressure the safe default is LFTJ: worst-case-optimal
    means never catastrophically wrong, which is exactly what a nearly
    exhausted budget wants.
    """
    if budget is None:
        budget = current_budget()
    with obs_trace.span("engine.plan_multiway", atoms=len(query.atoms)):
        if budget is not None and budget.under_pressure():
            chosen = _safe_default(query)
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("planner.deadline_pressure")
        else:
            chosen = _choose(query)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("planner.plans")
        obs_metrics.inc(f"planner.algorithm.{chosen.algorithm_name}")
    record = chosen.record
    if record is not None:
        planquality.PLANS.record(record)
        if obs_events.EVENTS.enabled:
            obs_events.emit(
                obs_events.EVENT_PLANNER_PLAN,
                predicate=record.predicate,
                algorithm=record.algorithm,
                estimated_output=record.estimated_output,
                candidates=len(record.candidates),
                deadline_pressure=record.deadline_pressure,
            )
    return chosen


def _make_plan(
    query: MultiwayQuery,
    estimated: float,
    agm: float,
    candidates: list[CandidateRecord],
    deadline_pressure: bool = False,
) -> MultiwayPlan:
    chosen = next(c for c in candidates if c.chosen)
    first, last = query.atoms[0], query.atoms[-1]
    record = PlanRecord(
        query=query.describe(),
        predicate="multiway",
        left=first.name,
        right=last.name,
        left_size=len(first.distinct_rows()),
        right_size=len(last.distinct_rows()),
        algorithm=chosen.algorithm,
        reason=chosen.reason,
        estimated_output=estimated,
        candidates=candidates,
        deadline_pressure=deadline_pressure,
    )
    return MultiwayPlan(query, chosen.algorithm, chosen.reason, estimated, agm, record)


def _safe_default(query: MultiwayQuery) -> MultiwayPlan:
    reason = "deadline pressure: skipped estimation, worst-case-optimal default"
    candidates = [
        CandidateRecord(
            algorithm="lftj", estimated_cost=-1.0, reason=reason, chosen=True
        )
    ]
    return _make_plan(query, -1.0, -1.0, candidates, deadline_pressure=True)


def _choose(query: MultiwayQuery) -> MultiwayPlan:
    agm = agm_bound(query)
    stages = estimate_cascade(query)
    # Non-final stages are the materialized intermediates; the last stage
    # estimate doubles as the planner's output estimate, capped by the
    # worst-case bound (the cascade cap is an upper-bound-style estimate,
    # so AGM is the tighter of the two).
    bottleneck = max(stages[:-1], default=0)
    estimated = min(float(stages[-1]), agm) if stages else agm
    cascade_safe = bottleneck <= agm
    total = query.total_rows()
    stage_text = ", ".join(str(s) for s in stages[:-1]) or "none"
    candidates = [
        CandidateRecord(
            "binary-cascade",
            float(total + sum(stages)),
            f"est. intermediate stages [{stage_text}] within AGM bound "
            f"{agm:.0f}: pairwise plan is safe"
            if cascade_safe
            else f"est. intermediate stages [{stage_text}] exceed AGM bound "
            f"{agm:.0f}: materialization blowup",
            chosen=cascade_safe,
        ),
        CandidateRecord(
            "lftj",
            float(total + agm),
            f"worst-case-optimal: intermediate work bounded by AGM ≈ {agm:.0f}"
            if not cascade_safe
            else "bound holds but the cascade's constants are lower here",
            chosen=not cascade_safe,
        ),
        CandidateRecord(
            "generic",
            float(total + 2 * agm),
            "reference WCOJ: same bound as LFTJ, higher constants",
            chosen=False,
        ),
    ]
    return _make_plan(query, estimated, agm, candidates)


def execute_multiway(
    query: MultiwayQuery,
    chosen_plan: MultiwayPlan | None = None,
    algorithm: str | None = None,
    with_trace: bool = True,
    budget: Budget | None = None,
    order: tuple[str, ...] | None = None,
) -> MultiwayQueryResult:
    """Plan (unless a plan or explicit ``algorithm`` is supplied) and
    execute ``query``.

    ``algorithm`` forces one of :data:`MULTIWAY_ALGORITHMS` without
    planning — no record, no feedback loop — which is what benchmark
    timing loops want.  ``with_trace`` controls the pebbling-trace bridge
    (projected onto the first two atoms); like the binary executor it is
    shed under deadline pressure.
    """
    if budget is None:
        budget = current_budget()
    if algorithm is not None and chosen_plan is not None:
        raise SolverError("pass a plan or an explicit algorithm, not both")
    with obs_trace.span("engine.execute_multiway"):
        the_plan: MultiwayPlan | None
        if algorithm is not None:
            if algorithm not in MULTIWAY_ALGORITHMS:
                raise SolverError(f"unknown multiway algorithm {algorithm!r}")
            the_plan = None
            name = algorithm
        else:
            the_plan = chosen_plan or plan_multiway(query, budget=budget)
            if the_plan.query is not query and the_plan.query != query:
                raise SolverError("plan does not belong to this query")
            name = the_plan.algorithm_name
        with obs_trace.span("engine.multiway_join", algorithm=name):
            if name == "lftj":
                result = leapfrog_triejoin(query, order=order, budget=budget)
            elif name == "generic":
                result = generic_join(query, order=order, budget=budget)
            else:
                result = binary_cascade(query, budget=budget)
        under_pressure = budget is not None and budget.under_pressure()
        if with_trace and under_pressure:
            with_trace = False
            if obs_metrics.METRICS.enabled:
                obs_metrics.inc("executor.trace_skipped")
        trace = None
        if with_trace and len(query.atoms) >= 2:
            with obs_trace.span("engine.multiway_trace"):
                trace = multiway_trace_report(query, result.bindings, name)
        agm = the_plan.agm if the_plan is not None and the_plan.agm >= 0 else agm_bound(query)
        if the_plan is not None and the_plan.record is not None:
            _close_feedback_loop(the_plan.record, result.output_size)
        if obs_metrics.METRICS.enabled:
            obs_metrics.inc("executor.multiway_queries")
            obs_metrics.inc("executor.rows_emitted", result.output_size)
            obs_metrics.observe("executor.output_size", result.output_size)
        return MultiwayQueryResult(
            plan=the_plan, result=result, agm=agm, trace=trace
        )
