"""A small join query engine on top of the substrate.

The layer a downstream user actually calls: describe a join
(:class:`~repro.engine.query.JoinQuery`), let the planner pick an
algorithm from the predicate class and cheap statistics, execute, and get
results *plus* the pebbling accounting of the execution — the paper's
model surfaced as an explain-plan metric.

>>> from repro import Relation, Equality
>>> from repro.engine import JoinQuery, execute
>>> q = JoinQuery(Relation("R", [1, 2, 2]), Relation("S", [2, 3]), Equality())
>>> result = execute(q)
>>> result.rows
[(2, 2), (2, 2)]
"""

from repro.engine.query import JoinQuery
from repro.engine.planner import Plan, plan
from repro.engine.executor import QueryResult, execute
from repro.engine.chain import ChainQuery, ChainResult, execute_chain
from repro.engine.multiway import (
    MultiwayPlan,
    MultiwayQueryResult,
    execute_multiway,
    plan_multiway,
)
from repro.engine.stats import ColumnStats, derive_seed, estimate_selectivity

__all__ = [
    "JoinQuery",
    "Plan",
    "plan",
    "QueryResult",
    "execute",
    "ChainQuery",
    "ChainResult",
    "execute_chain",
    "MultiwayPlan",
    "MultiwayQueryResult",
    "plan_multiway",
    "execute_multiway",
    "ColumnStats",
    "derive_seed",
    "estimate_selectivity",
]
