"""Left-deep multi-way join chains.

``R₁ ⋈_{θ₁} R₂ ⋈_{θ₂} R₃ ⋈ …`` executed as a left-deep pipeline: each
stage joins the running result's *last column* against the next relation
(the natural chain semantics for single-column relations).  Every stage is
planned independently through :mod:`repro.engine.planner` and reports its
own pebbling trace, so multi-way plans expose per-stage model costs.

>>> from repro import Relation, Equality
>>> from repro.engine.chain import ChainQuery, execute_chain
>>> chain = ChainQuery(
...     [Relation("A", [1, 2]), Relation("B", [2, 3, 2]), Relation("C", [2])],
...     [Equality(), Equality()],
... )
>>> result = execute_chain(chain)
>>> result.rows
[(2, 2, 2), (2, 2, 2)]
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.executor import QueryResult, execute
from repro.engine.query import JoinQuery
from repro.errors import PredicateError, RelationError
from repro.joins.predicates import JoinPredicate
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relations.relation import Relation


@dataclass(frozen=True)
class ChainQuery:
    """A chain of joins: ``n`` relations and ``n − 1`` stage predicates."""

    relations: list[Relation]
    predicates: list[JoinPredicate]

    def __post_init__(self) -> None:
        if len(self.relations) < 2:
            raise RelationError("a chain needs at least two relations")
        if len(self.predicates) != len(self.relations) - 1:
            raise PredicateError(
                f"{len(self.relations)} relations need "
                f"{len(self.relations) - 1} predicates, got {len(self.predicates)}"
            )
        # Stage domain compatibility: predicate i joins relation i's column
        # against relation i+1's column.
        for index, predicate in enumerate(self.predicates):
            left = self.relations[index]
            right = self.relations[index + 1]
            if not predicate.accepts(left.domain, right.domain):
                raise PredicateError(
                    f"stage {index}: {predicate.name} cannot join "
                    f"{left.domain.value} with {right.domain.value}"
                )

    def describe(self) -> str:
        parts = [self.relations[0].name]
        for predicate, relation in zip(self.predicates, self.relations[1:]):
            parts.append(f"⋈[{predicate.name}] {relation.name}")
        return " ".join(parts)


@dataclass(frozen=True)
class ChainResult:
    """Outcome of a chain execution."""

    query: ChainQuery
    rows: list[tuple]  # full-width result tuples
    stages: list[QueryResult]  # per-stage execution reports

    @property
    def output_size(self) -> int:
        return len(self.rows)

    def explain_analyze(self) -> str:
        lines = [self.query.describe()]
        for index, stage in enumerate(self.stages):
            lines.append(f"  stage {index}: {stage.explain_analyze()}")
        lines.append(f"  final rows: {self.output_size}")
        return "\n".join(lines)


def execute_chain(chain: ChainQuery, with_trace: bool = True) -> ChainResult:
    """Execute the chain left-deep; returns full rows plus stage reports.

    Stage ``i`` joins the distinct *join-column* values flowing out of
    stage ``i − 1`` (initially relation 0's tuples) against relation
    ``i + 1``; matched prefixes are expanded to full rows.  Each stage
    deduplicates the probe column, so the per-stage join graph is the join
    graph of distinct surviving values — the shape pebbling cares about.
    """
    relations = chain.relations
    # prefix_rows_by_value: current join-column value -> list of row prefixes.
    prefix_rows_by_value: dict = {}
    for value in relations[0].values:
        prefix_rows_by_value.setdefault(value, []).append((value,))

    stages: list[QueryResult] = []
    with obs_trace.span("engine.execute_chain"):
        for index, predicate in enumerate(chain.predicates):
            probe = Relation(
                f"stage{index}", list(prefix_rows_by_value.keys())
            )
            stage_query = JoinQuery(probe, relations[index + 1], predicate)
            stage_result = execute(stage_query, with_trace=with_trace)
            stages.append(stage_result)
            next_prefixes: dict = {}
            for left_value, right_value in stage_result.rows:
                for prefix in prefix_rows_by_value[left_value]:
                    next_prefixes.setdefault(right_value, []).append(
                        prefix + (right_value,)
                    )
            prefix_rows_by_value = next_prefixes
            if not prefix_rows_by_value:
                break
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("executor.chains")
        obs_metrics.inc("executor.chain_stages", len(stages))

    rows = [
        row
        for row_group in prefix_rows_by_value.values()
        for row in row_group
    ]
    rows.sort(key=repr)
    return ChainResult(query=chain, rows=rows, stages=stages)
