"""Exception hierarchy for the repro library.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or illegal graph operations."""


class NotBipartiteError(GraphError):
    """Raised when a bipartite graph is required but the input is not one."""


class VertexError(GraphError):
    """Raised when a vertex reference does not exist in a graph."""


class EdgeError(GraphError):
    """Raised when an edge reference is invalid or does not exist."""


class SchemeError(ReproError):
    """Raised when a pebbling scheme is malformed or invalid for a graph."""


class SolverError(ReproError):
    """Raised when a pebbling solver cannot handle its input."""


class InstanceTooLargeError(SolverError):
    """Raised when an exact solver is asked to exceed its size budget."""


class BudgetExhaustedError(SolverError):
    """Raised when a cooperative :class:`repro.runtime.Budget` trips.

    ``reason`` records which resource ran out: ``"deadline"`` (wall clock),
    ``"nodes"`` (search-node budget), or ``"memo"`` (memo-table cap).
    """

    def __init__(self, message: str, reason: str = "nodes") -> None:
        super().__init__(message)
        self.reason = reason


class InjectedFaultError(ReproError):
    """Raised by the deterministic fault-injection harness (chaos testing)."""


class PredicateError(ReproError):
    """Raised for type mismatches between join predicates and tuple values."""


class GeometryError(ReproError):
    """Raised for degenerate or invalid geometric primitives."""


class RelationError(ReproError):
    """Raised for malformed relations or catalog misuse."""


class ReductionError(ReproError):
    """Raised when a complexity reduction receives an out-of-scope instance."""


class GadgetError(ReproError):
    """Raised when gadget certification fails or no gadget can be found."""


class WorkloadError(ReproError):
    """Raised for invalid workload-generator parameters."""
