"""Partitioned joins: the paper's closing open problem (§5).

"Many join algorithms in practice work by first mapping the input
relations R and S into R₁ ∪ … ∪ R_p and S₁ ∪ … ∪ S_q, and doing the join
by investigating a subset of the joins R_i ⋈ S_j …  This is done either to
explore parallelism or to make better use of main memory …  Here it is
natural to ask how hard it is to find the optimal mapping of the tuples …
For the three classes of joins we consider, this problem is NP-complete.
However, we conjecture that the problem for equijoins has good
approximation algorithms."

This module makes the problem concrete and testable.  Because the memory /
parallelism motivation is what makes the problem non-trivial, partitions
are **capacity-constrained**: with ``p`` left and ``q`` right partitions,
each left partition holds at most ``⌈|L|/p⌉`` tuples and each right
partition at most ``⌈|R|/q⌉`` (balanced partitioning).  The **cost** of a
valid partitioning is the number of *active cells* — pairs ``(i, j)`` such
that some joining pair crosses ``R_i × S_j`` — i.e. the number of
sub-joins the partitioned algorithm must execute.

Provided strategies:

- :func:`optimal_partitioning_bruteforce` — exact exponential reference;
- :func:`hash_partitioning` — bin-pack connected components (for equijoin
  graphs: key groups) into cells, the classic hash-partitioned join;
- :func:`round_robin_partitioning` — the value-blind baseline;
- :func:`greedy_partitioning` — capacity-respecting local search;
- :func:`replication_grid_partitioning` — the PBSM-style trade: fewer
  cells for replicated tuples.

Supporting the paper's conjecture, tests show hash partitioning tracks
the brute-force optimum on equijoin graphs while round-robin does not.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.errors import InstanceTooLargeError, SchemeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import component_vertex_sets
from repro.graphs.simple import Vertex


def left_capacity(graph: BipartiteGraph, p: int) -> int:
    """Balanced capacity of one left partition: ``⌈|L|/p⌉``."""
    return -(-len(graph.left) // p)


def right_capacity(graph: BipartiteGraph, q: int) -> int:
    """Balanced capacity of one right partition: ``⌈|R|/q⌉``."""
    return -(-len(graph.right) // q)


@dataclass(frozen=True)
class Partitioning:
    """An assignment of join-graph vertices to partition indices."""

    p: int
    q: int
    left_of: dict
    right_of: dict

    def validate(self, graph: BipartiteGraph) -> None:
        """Check full assignment, index ranges, and balanced capacities."""
        counts_left = [0] * self.p
        counts_right = [0] * self.q
        for v in graph.left:
            i = self.left_of.get(v, -1)
            if not 0 <= i < self.p:
                raise SchemeError(f"left vertex {v!r} unassigned or out of range")
            counts_left[i] += 1
        for v in graph.right:
            j = self.right_of.get(v, -1)
            if not 0 <= j < self.q:
                raise SchemeError(f"right vertex {v!r} unassigned or out of range")
            counts_right[j] += 1
        if max(counts_left, default=0) > left_capacity(graph, self.p):
            raise SchemeError("a left partition exceeds its balanced capacity")
        if max(counts_right, default=0) > right_capacity(graph, self.q):
            raise SchemeError("a right partition exceeds its balanced capacity")

    def active_cells(self, graph: BipartiteGraph) -> set[tuple[int, int]]:
        """The sub-joins that must run: cells crossed by some join edge."""
        return {(self.left_of[u], self.right_of[v]) for u, v in graph.edges()}

    def cost(self, graph: BipartiteGraph) -> int:
        """The number of active cells (sub-joins executed)."""
        return len(self.active_cells(graph))


def cell_capacity_lower_bound(graph: BipartiteGraph, p: int, q: int) -> int:
    """Any valid partitioning activates at least
    ``⌈m / (cap_L · cap_R)⌉`` cells: one cell joins at most
    ``cap_L · cap_R`` tuple pairs."""
    m = graph.num_edges
    if m == 0:
        return 0
    per_cell = left_capacity(graph, p) * right_capacity(graph, q)
    return -(-m // per_cell)


def hash_partitioning(graph: BipartiteGraph, p: int, q: int) -> Partitioning:
    """Partition by connected component (key group), packing whole
    components into *cells* first-fit-decreasing.

    For an equijoin graph, components are key groups: hashing on the join
    key sends a whole group to one cell.  Because left capacity is shared
    by all cells in a row and right capacity by all cells in a column, the
    packer places each component (sorted by size, largest first) into an
    already-active cell whose row and column still fit it, opening a fresh
    least-loaded cell otherwise; co-locating several small key groups in
    one cell is what keeps the active-cell count near the optimum.
    Component sides larger than a partition's capacity spill across
    partitions vertex-by-vertex (which necessarily activates extra cells —
    no strategy avoids that).
    """
    cap_left = left_capacity(graph, p)
    cap_right = right_capacity(graph, q)
    left_set = set(graph.left)
    components = []
    for vertex_set in component_vertex_sets(graph):
        lefts = [v for v in vertex_set if v in left_set]
        rights = [v for v in vertex_set if v not in left_set]
        components.append((lefts, rights))
    components.sort(key=lambda c: -(len(c[0]) + len(c[1])))

    left_loads = [0] * p
    right_loads = [0] * q
    used_cells: list[tuple[int, int]] = []
    left_of: dict[Vertex, int] = {}
    right_of: dict[Vertex, int] = {}

    def place(lefts: list, rights: list, cell: tuple[int, int]) -> None:
        i, j = cell
        for v in lefts:
            row = i
            if left_loads[row] >= cap_left:  # oversized component: spill
                row = min(range(p), key=lambda r: left_loads[r])
            left_loads[row] += 1
            left_of[v] = row
        for v in rights:
            col = j
            if right_loads[col] >= cap_right:
                col = min(range(q), key=lambda c: right_loads[c])
            right_loads[col] += 1
            right_of[v] = col

    for lefts, rights in components:
        target = None
        for cell in used_cells:
            i, j = cell
            if (
                left_loads[i] + len(lefts) <= cap_left
                and right_loads[j] + len(rights) <= cap_right
            ):
                target = cell
                break
        if target is None:
            target = (
                min(range(p), key=lambda r: left_loads[r]),
                min(range(q), key=lambda c: right_loads[c]),
            )
            if lefts and rights:
                used_cells.append(target)
        place(lefts, rights, target)
    return Partitioning(p, q, left_of, right_of)


def round_robin_partitioning(graph: BipartiteGraph, p: int, q: int) -> Partitioning:
    """The oblivious baseline: deal tuples round-robin, ignoring values.

    Perfectly balanced but value-blind; on equijoin graphs it shreds key
    groups across cells.
    """
    left_of = {v: i % p for i, v in enumerate(graph.left)}
    right_of = {v: j % q for j, v in enumerate(graph.right)}
    return Partitioning(p, q, left_of, right_of)


def greedy_partitioning(
    graph: BipartiteGraph, p: int, q: int, max_rounds: int = 20
) -> Partitioning:
    """Local search from :func:`hash_partitioning`: repeatedly move one
    vertex to another partition (if capacity allows) when that reduces the
    active-cell count."""
    start = hash_partitioning(graph, p, q)
    left_of = dict(start.left_of)
    right_of = dict(start.right_of)
    cap_left = left_capacity(graph, p)
    cap_right = right_capacity(graph, q)
    left_loads = [0] * p
    right_loads = [0] * q
    for v in graph.left:
        left_loads[left_of[v]] += 1
    for v in graph.right:
        right_loads[right_of[v]] += 1

    def cost() -> int:
        return len({(left_of[u], right_of[v]) for u, v in graph.edges()})

    best = cost()
    for _ in range(max_rounds):
        improved = False
        for v in graph.left:
            home = left_of[v]
            for i in range(p):
                if i == home or left_loads[i] >= cap_left:
                    continue
                left_of[v] = i
                c = cost()
                if c < best:
                    best = c
                    left_loads[home] -= 1
                    left_loads[i] += 1
                    home = i
                    improved = True
                else:
                    left_of[v] = home
        for v in graph.right:
            home = right_of[v]
            for j in range(q):
                if j == home or right_loads[j] >= cap_right:
                    continue
                right_of[v] = j
                c = cost()
                if c < best:
                    best = c
                    right_loads[home] -= 1
                    right_loads[j] += 1
                    home = j
                    improved = True
                else:
                    right_of[v] = home
        if not improved:
            break
    return Partitioning(p, q, left_of, right_of)


def optimal_partitioning_bruteforce(
    graph: BipartiteGraph, p: int, q: int
) -> Partitioning:
    """The exact optimum over all capacity-respecting assignments.

    ``p^|L| · q^|R|`` candidates — the NP-complete problem solved by brute
    force, for cross-checking heuristics on tiny instances.
    """
    lefts = graph.left
    rights = graph.right
    if p ** len(lefts) * q ** len(rights) > 2_000_000:
        raise InstanceTooLargeError("brute-force partitioning space too large")
    cap_left = left_capacity(graph, p)
    cap_right = right_capacity(graph, q)
    edges = graph.edges()
    best_cost = None
    best: Partitioning | None = None

    def balanced(assignment: tuple[int, ...], bins: int, capacity: int) -> bool:
        counts = [0] * bins
        for b in assignment:
            counts[b] += 1
            if counts[b] > capacity:
                return False
        return True

    for left_assignment in product(range(p), repeat=len(lefts)):
        if not balanced(left_assignment, p, cap_left):
            continue
        left_of = dict(zip(lefts, left_assignment))
        for right_assignment in product(range(q), repeat=len(rights)):
            if not balanced(right_assignment, q, cap_right):
                continue
            right_of = dict(zip(rights, right_assignment))
            c = len({(left_of[u], right_of[v]) for u, v in edges})
            if best_cost is None or c < best_cost:
                best_cost = c
                best = Partitioning(p, q, left_of, right_of)
    assert best is not None, "balanced assignments always exist"
    return best


@dataclass(frozen=True)
class ReplicationReport:
    """Outcome of the PBSM-style replicating strategy."""

    left_of: dict
    copies_of: dict  # right vertex -> set of left partitions holding a copy
    replicas: int  # extra right-tuple copies beyond the first
    active_subjoins: int  # one per left partition that has any join edge


def replication_grid_partitioning(
    graph: BipartiteGraph, p: int, q: int
) -> ReplicationReport:
    """The PBSM-style trade: round-robin the left side, then *replicate*
    each right tuple into every left partition holding a joining partner.

    With replication there is one merged right bucket per left partition,
    so at most ``p`` sub-joins run regardless of the join graph — bought
    with the returned replica count, the "replication of data" cost the
    paper's introduction holds against spatial join algorithms.  (``q`` is
    accepted for signature symmetry with the non-replicating strategies;
    replication collapses the right dimension.)
    """
    left_of = {v: i % p for i, v in enumerate(graph.left)}
    copies_of: dict[Vertex, set[int]] = {}
    replicas = 0
    for v in graph.right:
        cells = {left_of[u] for u in graph.neighbors(v)}
        copies_of[v] = cells
        if cells:
            replicas += len(cells) - 1
    active = {left_of[u] for u, _ in graph.edges()}
    return ReplicationReport(
        left_of=left_of,
        copies_of=copies_of,
        replicas=replicas,
        active_subjoins=len(active),
    )
