"""Join predicate classes (paper §2).

A :class:`JoinPredicate` is a boolean test over a pair of attribute values
plus metadata: which domains it accepts and a name for reports.  The three
classes the paper analyzes are :class:`Equality`, :class:`SpatialOverlap`,
and :class:`SetContainment`; :class:`SetOverlap` and :class:`Band` are
extensions exercising the same machinery.
"""

from __future__ import annotations

import abc
from typing import Any

from repro.errors import PredicateError
from repro.geometry.intersect import overlap as geometry_overlap
from repro.relations.domains import Domain
from repro.sets.setvalue import contains as set_contains
from repro.sets.setvalue import overlaps as set_overlaps


class JoinPredicate(abc.ABC):
    """A binary join predicate ``θ`` over single-column tuples.

    Subclasses implement :meth:`matches` and declare the domains they
    accept; :meth:`check_domains` is called once per join to fail fast on
    type mismatches.
    """

    name: str = "predicate"

    @abc.abstractmethod
    def matches(self, left: Any, right: Any) -> bool:
        """Does ``left θ right`` hold?"""

    @abc.abstractmethod
    def accepts(self, left_domain: Domain, right_domain: Domain) -> bool:
        """Are the two column domains valid inputs for this predicate?"""

    def check_domains(self, left_domain: Domain, right_domain: Domain) -> None:
        if not self.accepts(left_domain, right_domain):
            raise PredicateError(
                f"{self.name} cannot join {left_domain.value} "
                f"with {right_domain.value}"
            )

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class Equality(JoinPredicate):
    """The equijoin predicate ``r.A = s.B``.

    Works over any domain that supports equality (§2), i.e. all of them.
    """

    name = "equality"

    def matches(self, left: Any, right: Any) -> bool:
        return left == right

    def accepts(self, left_domain: Domain, right_domain: Domain) -> bool:
        return left_domain == right_domain


class SpatialOverlap(JoinPredicate):
    """The spatial-overlap predicate: geometries share at least one point."""

    name = "spatial-overlap"

    def matches(self, left: Any, right: Any) -> bool:
        return geometry_overlap(left, right)

    def accepts(self, left_domain: Domain, right_domain: Domain) -> bool:
        return left_domain.supports_overlap and right_domain.supports_overlap


class SetContainment(JoinPredicate):
    """The set-containment predicate ``r.A ⊆ s.B``."""

    name = "set-containment"

    def matches(self, left: Any, right: Any) -> bool:
        return set_contains(left, right)

    def accepts(self, left_domain: Domain, right_domain: Domain) -> bool:
        return left_domain.supports_containment and right_domain.supports_containment


class SetOverlap(JoinPredicate):
    """Extension: the set-overlap predicate ``r.A ∩ s.B ≠ ∅``."""

    name = "set-overlap"

    def matches(self, left: Any, right: Any) -> bool:
        return set_overlaps(left, right)

    def accepts(self, left_domain: Domain, right_domain: Domain) -> bool:
        return left_domain.supports_containment and right_domain.supports_containment


class Band(JoinPredicate):
    """Extension: the band-join predicate ``|r.A − s.B| ≤ width``.

    A numeric near-equality join; with ``width = 0`` it degenerates to the
    equijoin, which tests use to confirm the two predicates agree there.
    """

    name = "band"

    def __init__(self, width: float) -> None:
        if width < 0:
            raise PredicateError("band width must be non-negative")
        self.width = width

    def matches(self, left: Any, right: Any) -> bool:
        return abs(left - right) <= self.width

    def accepts(self, left_domain: Domain, right_domain: Domain) -> bool:
        return left_domain == Domain.NUMERIC and right_domain == Domain.NUMERIC

    def __repr__(self) -> str:
        return f"Band(width={self.width})"
