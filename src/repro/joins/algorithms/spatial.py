"""Spatial overlap join algorithms.

Three classic strategies over rectangle (or polygon, via bounding-box
filter + exact verify) columns:

- :func:`plane_sweep_join` — sort by x, sweep (Günther-style sweep filter);
- :func:`rtree_join` — STR-bulk-load both sides, synchronized descent;
- :func:`pbsm_join` — Partition Based Spatial-Merge (Patel–DeWitt, the
  paper's [13]): overlay a uniform grid, replicate objects into every cell
  they touch, join within cells, de-duplicate.

The replication+dedup of PBSM is one of the "unsatisfying" traits of
spatial join algorithms the paper's introduction points at ("requiring
either replication of data or repeated processing of data") — visible here
as the ``replication_factor`` the function can report.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PredicateError
from repro.geometry.primitives import Polygon, Rectangle
from repro.geometry.rtree import RTree
from repro.geometry.sweep import sweep_rectangle_pairs
from repro.relations.domains import Domain
from repro.relations.relation import Relation, TupleRef


def _boxes(relation: Relation) -> list[tuple[Rectangle, TupleRef]]:
    """Bounding boxes + refs for an interval, rectangle, or polygon column.

    Intervals lift to unit-height rectangles, which makes every rectangle
    algorithm (and its box test, which is then exact) apply to temporal
    joins unchanged.
    """
    if relation.domain == Domain.RECTANGLE:
        return [(value, ref) for ref, value in relation.items()]
    if relation.domain == Domain.POLYGON:
        return [(value.bounding_box(), ref) for ref, value in relation.items()]
    if relation.domain == Domain.INTERVAL:
        return [
            (Rectangle(value.lo, 0.0, value.hi, 1.0), ref)
            for ref, value in relation.items()
        ]
    raise PredicateError(
        f"spatial join needs interval, rectangle or polygon columns, "
        f"got {relation.domain.value}"
    )


def _verify(left: Relation, right: Relation, r_ref: TupleRef, s_ref: TupleRef) -> bool:
    """Exact predicate check (only needed for polygon columns)."""
    from repro.geometry.intersect import overlap

    exact_domains = (Domain.RECTANGLE, Domain.INTERVAL)
    if left.domain in exact_domains and right.domain in exact_domains:
        return True  # the box test *is* the predicate
    return overlap(left.value(r_ref), right.value(s_ref))


def plane_sweep_join(
    left: Relation, right: Relation
) -> list[tuple[TupleRef, TupleRef]]:
    """Overlap join by plane sweep, in sweep emission order."""
    candidates = sweep_rectangle_pairs(_boxes(left), _boxes(right))
    out: list[tuple[TupleRef, TupleRef]] = []
    for r_ref, s_ref in candidates:
        if _verify(left, right, r_ref, s_ref):
            out.append((r_ref, s_ref))
    return out


def rtree_join(
    left: Relation, right: Relation, fanout: int = 8
) -> list[tuple[TupleRef, TupleRef]]:
    """Overlap join by synchronized R-tree descent."""
    left_tree = RTree(_boxes(left), fanout=fanout)
    right_tree = RTree(_boxes(right), fanout=fanout)
    out: list[tuple[TupleRef, TupleRef]] = []
    for r_ref, s_ref in left_tree.join(right_tree):
        if _verify(left, right, r_ref, s_ref):
            out.append((r_ref, s_ref))
    return out


def pbsm_join(
    left: Relation,
    right: Relation,
    grid: int = 4,
    report_stats: bool = False,
) -> list[tuple[TupleRef, TupleRef]] | tuple[list[tuple[TupleRef, TupleRef]], dict]:
    """Partition Based Spatial-Merge join.

    Overlays a ``grid × grid`` uniform partition of the data extent,
    replicates each object into every overlapping cell, joins cell-by-cell
    with nested loops, and suppresses duplicate results (an object pair
    overlapping several shared cells would otherwise be reported multiple
    times).  With ``report_stats=True`` also returns
    ``{"replication_factor": …, "duplicates_suppressed": …}``.
    """
    if grid < 1:
        raise PredicateError("grid must be positive")
    left_boxes = _boxes(left)
    right_boxes = _boxes(right)
    if not left_boxes or not right_boxes:
        return ([], {"replication_factor": 0.0, "duplicates_suppressed": 0}) if report_stats else []
    extent = left_boxes[0][0]
    for box, _ in left_boxes + right_boxes:
        extent = extent.union_bounds(box)
    width = max(extent.width, 1e-9) / grid
    height = max(extent.height, 1e-9) / grid

    def cells_of(box: Rectangle) -> list[tuple[int, int]]:
        cx0 = int((box.x_min - extent.x_min) / width)
        cx1 = int((box.x_max - extent.x_min) / width)
        cy0 = int((box.y_min - extent.y_min) / height)
        cy1 = int((box.y_max - extent.y_min) / height)
        return [
            (min(cx, grid - 1), min(cy, grid - 1))
            for cx in range(cx0, cx1 + 1)
            for cy in range(cy0, cy1 + 1)
            if cx < grid + 1 and cy < grid + 1
        ]

    partitions: dict[tuple[int, int], tuple[list, list]] = {}
    replicas = 0
    for box, ref in left_boxes:
        for cell in cells_of(box):
            partitions.setdefault(cell, ([], []))[0].append((box, ref))
            replicas += 1
    for box, ref in right_boxes:
        for cell in cells_of(box):
            partitions.setdefault(cell, ([], []))[1].append((box, ref))
            replicas += 1

    out: list[tuple[TupleRef, TupleRef]] = []
    seen: set[tuple[TupleRef, TupleRef]] = set()
    duplicates = 0
    for cell in sorted(partitions):
        cell_left, cell_right = partitions[cell]
        for l_box, r_ref in cell_left:
            for r_box, s_ref in cell_right:
                if not l_box.intersects(r_box):
                    continue
                pair = (r_ref, s_ref)
                if pair in seen:
                    duplicates += 1
                    continue
                # Mark the pair as seen either way so a verified-negative
                # polygon pair is not re-verified in another shared cell.
                seen.add(pair)
                if _verify(left, right, r_ref, s_ref):
                    out.append(pair)
    if report_stats:
        stats = {
            "replication_factor": replicas / (len(left_boxes) + len(right_boxes)),
            "duplicates_suppressed": duplicates,
        }
        return out, stats
    return out
