"""Block nested loops: the universal join algorithm.

Works for any predicate by brute force.  The block structure matters for
the pebbling view: with a block of ``B`` left tuples resident, the
algorithm emits, per right tuple, all its matches within the block — so
output order is (block, right tuple, left tuple), which is the classic
outer/inner loop structure of a real BNL join.
"""

from __future__ import annotations

from repro.errors import RelationError
from repro.joins.predicates import JoinPredicate
from repro.relations.relation import Relation, TupleRef


def block_nested_loops(
    left: Relation,
    right: Relation,
    predicate: JoinPredicate,
    block_size: int = 64,
) -> list[tuple[TupleRef, TupleRef]]:
    """All matching pairs, in block-nested-loops emission order."""
    if block_size < 1:
        raise RelationError("block size must be positive")
    predicate.check_domains(left.domain, right.domain)
    left_items = list(left.items())
    right_items = list(right.items())
    out: list[tuple[TupleRef, TupleRef]] = []
    for start in range(0, len(left_items), block_size):
        block = left_items[start : start + block_size]
        for s_ref, s_val in right_items:
            for r_ref, r_val in block:
                if predicate.matches(r_val, s_val):
                    out.append((r_ref, s_ref))
    return out
