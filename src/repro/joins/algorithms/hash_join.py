"""Classic hash equijoin: build on the smaller input, probe with the other.

Emission order is probe order: for each probe tuple, all matching build
tuples in bucket order.  In pebbling terms each probe tuple's matches share
a vertex (the probe tuple), but consecutive probe tuples of the same key
group re-scan the bucket from the top — so hash join, unlike sort-merge,
generally pays jumps inside large key groups (measured by the benchmarks).
"""

from __future__ import annotations

from repro.errors import PredicateError
from repro.relations.relation import Relation, TupleRef


def hash_join(left: Relation, right: Relation) -> list[tuple[TupleRef, TupleRef]]:
    """All equality-matching pairs in hash-join emission order.

    Build side is the smaller relation; output pairs are always reported
    as ``(left_ref, right_ref)`` regardless of build side.
    """
    if left.domain != right.domain:
        raise PredicateError(
            f"cannot equijoin {left.domain.value} with {right.domain.value}"
        )
    build, probe, build_is_left = (
        (left, right, True) if len(left) <= len(right) else (right, left, False)
    )
    buckets: dict = {}
    for ref, value in build.items():
        try:
            buckets.setdefault(value, []).append(ref)
        except TypeError as exc:
            raise PredicateError(f"unhashable join key {value!r}") from exc
    out: list[tuple[TupleRef, TupleRef]] = []
    for probe_ref, value in probe.items():
        for build_ref in buckets.get(value, ()):
            if build_is_left:
                out.append((build_ref, probe_ref))
            else:
                out.append((probe_ref, build_ref))
    return out
