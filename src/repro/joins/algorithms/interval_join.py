"""The classic temporal merge join over interval columns.

Sort both sides by interval start; advance the side whose active window
closes first, emitting each newly opened interval against the opposite
side's active set — the standard "sort-merge interval join" used by
temporal databases.  Equivalent output set to the generic plane sweep, but
a dedicated algorithm gives the trace bridge a tenth distinct emission
order to measure.
"""

from __future__ import annotations

from repro.errors import PredicateError
from repro.relations.domains import Domain
from repro.relations.relation import Relation, TupleRef


def interval_merge_join(
    left: Relation, right: Relation
) -> list[tuple[TupleRef, TupleRef]]:
    """All overlapping pairs of two interval columns, in merge order."""
    if left.domain != Domain.INTERVAL or right.domain != Domain.INTERVAL:
        raise PredicateError(
            "interval merge join needs interval columns, got "
            f"{left.domain.value} and {right.domain.value}"
        )
    left_sorted = sorted(left.items(), key=lambda item: (item[1].lo, item[1].hi))
    right_sorted = sorted(right.items(), key=lambda item: (item[1].lo, item[1].hi))
    out: list[tuple[TupleRef, TupleRef]] = []
    active_left: list[tuple[TupleRef, object]] = []
    active_right: list[tuple[TupleRef, object]] = []
    i = j = 0
    while i < len(left_sorted) or j < len(right_sorted):
        take_left = j >= len(right_sorted) or (
            i < len(left_sorted) and left_sorted[i][1].lo <= right_sorted[j][1].lo
        )
        if take_left:
            ref, interval = left_sorted[i]
            i += 1
            active_right = [
                (s_ref, s_iv) for s_ref, s_iv in active_right if s_iv.hi >= interval.lo
            ]
            for s_ref, s_iv in active_right:
                if interval.overlaps(s_iv):
                    out.append((ref, s_ref))
            active_left.append((ref, interval))
        else:
            ref, interval = right_sorted[j]
            j += 1
            active_left = [
                (r_ref, r_iv) for r_ref, r_iv in active_left if r_iv.hi >= interval.lo
            ]
            for r_ref, r_iv in active_left:
                if r_iv.overlaps(interval):
                    out.append((r_ref, ref))
            active_right.append((ref, interval))
    return out
