"""Sort-merge equijoin.

The merge phase enumerates each key group's cross product.  This module
emits the group's pairs in *boustrophedon* order — left tuple 0 against all
right tuples forward, left tuple 1 backward, and so on — which is both a
legitimate merge-phase enumeration and exactly the Lemma 3.2 perfect
pebbling of the group's complete bipartite join subgraph.  The paper points
at this connection twice: "the merge phase of a sort-merge join does in
some sense resemble this pebbling game" (§2) and "the construction given in
Theorem 3.2 is similar to the merge phase of sort-merge join" (§4).

Consequently sort-merge achieves ``π = m`` on every equijoin — the
algorithmic face of Theorems 3.2/4.1 — which the test-suite asserts.
"""

from __future__ import annotations

from repro.errors import PredicateError
from repro.relations.relation import Relation, TupleRef


def sort_merge_join(left: Relation, right: Relation) -> list[tuple[TupleRef, TupleRef]]:
    """All equality-matching pairs in merge emission order."""
    if left.domain != right.domain:
        raise PredicateError(
            f"cannot equijoin {left.domain.value} with {right.domain.value}"
        )

    def sort_key(item):
        ref, value = item
        return (repr(value), ref.ordinal)

    left_sorted = sorted(left.items(), key=sort_key)
    right_sorted = sorted(right.items(), key=sort_key)
    out: list[tuple[TupleRef, TupleRef]] = []
    i = j = 0
    while i < len(left_sorted) and j < len(right_sorted):
        l_val = left_sorted[i][1]
        r_val = right_sorted[j][1]
        if repr(l_val) < repr(r_val):
            i += 1
            continue
        if repr(l_val) > repr(r_val):
            j += 1
            continue
        # A key group: gather both runs, emit boustrophedon.
        i_end = i
        while i_end < len(left_sorted) and left_sorted[i_end][1] == l_val:
            i_end += 1
        j_end = j
        while j_end < len(right_sorted) and right_sorted[j_end][1] == r_val:
            j_end += 1
        group_left = left_sorted[i:i_end]
        group_right = right_sorted[j:j_end]
        for row, (l_ref, _) in enumerate(group_left):
            columns = group_right if row % 2 == 0 else list(reversed(group_right))
            for r_ref, _ in columns:
                out.append((l_ref, r_ref))
        i, j = i_end, j_end
    return out
