"""Index nested loops equijoin.

For each outer (left) tuple, probe a hash index on the inner (right)
relation and emit all matches.  Output order is outer order, each outer
tuple's matches scanning the index bucket top to bottom.

Pebbling view: within one key group of ``k`` left and ``l`` right tuples,
the emission order is ``(u1,v1..vl), (u2,v1..vl), …`` — the transition from
``(u1, vl)`` to ``(u2, v1)`` shares no tuple, so INL pays roughly one jump
per outer group row where ``l ≥ 2``, i.e. ``π ≈ m + (k−1)`` per group
instead of sort-merge's perfect ``m``.  The benchmark
``bench_join_algorithms`` shows exactly this gap.
"""

from __future__ import annotations

from repro.errors import PredicateError
from repro.relations.relation import Relation, TupleRef


def index_nested_loops(
    left: Relation, right: Relation
) -> list[tuple[TupleRef, TupleRef]]:
    """All equality-matching pairs in index-nested-loops emission order."""
    if left.domain != right.domain:
        raise PredicateError(
            f"cannot equijoin {left.domain.value} with {right.domain.value}"
        )
    index: dict = {}
    for ref, value in right.items():
        try:
            index.setdefault(value, []).append(ref)
        except TypeError as exc:
            raise PredicateError(f"unhashable join key {value!r}") from exc
    out: list[tuple[TupleRef, TupleRef]] = []
    for l_ref, value in left.items():
        for r_ref in index.get(value, ()):
            out.append((l_ref, r_ref))
    return out
