"""Set-containment join algorithms.

Two classic strategies (the paper's references [5, 14]):

- :func:`signature_nested_loops` — Helmer–Moerkotte style: precompute bit
  signatures, nested loops with the signature test as a cheap filter and
  the real ⊆ check as verify;
- :func:`inverted_index_join` — Ramasamy et al. style: inverted index on
  the right relation's elements, posting-list intersection per left tuple
  (exact, no verify needed).

Both can optionally report filter statistics, making the "repeated
processing" cost the paper's introduction alludes to measurable.
"""

from __future__ import annotations

from repro.errors import PredicateError
from repro.relations.domains import Domain
from repro.relations.relation import Relation, TupleRef
from repro.sets.inverted import InvertedIndex
from repro.sets.setvalue import contains
from repro.sets.signatures import SignatureScheme


def _require_set_columns(left: Relation, right: Relation) -> None:
    if left.domain != Domain.SET or right.domain != Domain.SET:
        raise PredicateError(
            "set-containment join needs set columns, got "
            f"{left.domain.value} and {right.domain.value}"
        )


def signature_nested_loops(
    left: Relation,
    right: Relation,
    scheme: SignatureScheme | None = None,
    report_stats: bool = False,
):
    """Containment join ``left ⊆ right`` with signature filtering.

    Emission order: left-major nested loops over signature-surviving pairs.
    With ``report_stats=True`` also returns
    ``{"candidates": …, "false_positives": …}``.
    """
    _require_set_columns(left, right)
    scheme = scheme or SignatureScheme(width=64, probes=2)
    left_sigs = [(ref, value, scheme.signature(value)) for ref, value in left.items()]
    right_sigs = [(ref, value, scheme.signature(value)) for ref, value in right.items()]
    out: list[tuple[TupleRef, TupleRef]] = []
    candidates = 0
    false_positives = 0
    for l_ref, l_val, l_sig in left_sigs:
        for r_ref, r_val, r_sig in right_sigs:
            if not scheme.may_contain(l_sig, r_sig):
                continue
            candidates += 1
            if contains(l_val, r_val):
                out.append((l_ref, r_ref))
            else:
                false_positives += 1
    if report_stats:
        return out, {"candidates": candidates, "false_positives": false_positives}
    return out


def inverted_index_join(
    left: Relation, right: Relation
) -> list[tuple[TupleRef, TupleRef]]:
    """Containment join via an inverted index on the right relation.

    Exact: posting-list intersection yields precisely the supersets of each
    left set.  Emission order is left-major with right matches in sorted
    ref order.
    """
    _require_set_columns(left, right)
    index = InvertedIndex([(ref, value) for ref, value in right.items()])
    out: list[tuple[TupleRef, TupleRef]] = []
    for l_ref, l_val in left.items():
        for r_ref in index.superset_candidates(l_val):
            out.append((l_ref, r_ref))
    return out
