"""Join algorithm implementations.

Every algorithm has the same contract: take the input relations (and a
predicate where applicable), return the list of matching
``(left TupleRef, right TupleRef)`` pairs *in emission order*, each exactly
once.  The emission order is the interesting part — through
:mod:`repro.joins.trace` it becomes a pebbling scheme whose cost locates
the algorithm inside the paper's model (e.g. sort-merge pebbles equijoins
perfectly, index nested loops does not).
"""

from repro.joins.algorithms.nested_loops import block_nested_loops
from repro.joins.algorithms.hash_join import hash_join
from repro.joins.algorithms.sort_merge import sort_merge_join
from repro.joins.algorithms.index_nested_loops import index_nested_loops
from repro.joins.algorithms.spatial import plane_sweep_join, pbsm_join, rtree_join
from repro.joins.algorithms.set_joins import (
    inverted_index_join,
    signature_nested_loops,
)
from repro.joins.algorithms.interval_join import interval_merge_join

__all__ = [
    "interval_merge_join",
    "block_nested_loops",
    "hash_join",
    "sort_merge_join",
    "index_nested_loops",
    "plane_sweep_join",
    "rtree_join",
    "pbsm_join",
    "signature_nested_loops",
    "inverted_index_join",
]
