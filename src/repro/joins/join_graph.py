"""Join-graph extraction (paper §2).

``build_join_graph(R, S, θ)`` produces the bipartite graph with one vertex
per tuple and one edge per θ-matching pair — the exact object the pebble
game is played on.  A naive O(|R|·|S|) evaluation always works; for the
three predicate classes the paper studies, accelerated extraction paths are
used automatically:

- equality → hash partitioning on the join key;
- spatial overlap over rectangles → plane sweep (polygons: bounding-box
  filter + exact verify);
- set containment → inverted index on the right relation (posting-list
  intersection);
- set overlap → inverted index (posting-list union);
- band join → sort both sides and slide a merge window.

The accelerated paths are *exact* (the spatial sweep is the full predicate
for rectangles; polygons fall back to bounding-box filter + verify), and
tests assert they agree with the naive path on random instances.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.graphs.bipartite import BipartiteGraph
from repro.geometry.primitives import Polygon, Rectangle
from repro.geometry.sweep import sweep_rectangle_pairs
from repro.joins.predicates import Equality, JoinPredicate, SetContainment
from repro.obs import metrics as obs_metrics
from repro.relations.domains import Domain
from repro.relations.relation import Relation
from repro.sets.inverted import InvertedIndex


def _empty_graph(left: Relation, right: Relation) -> BipartiteGraph:
    return BipartiteGraph(left=left.refs(), right=right.refs())


def _dedup_pairs(pairs):
    """Yield each (left-ref, right-ref) pair once, in first-seen order."""
    seen: set = set()
    for pair in pairs:
        if pair not in seen:
            seen.add(pair)
            yield pair


def _add_edges(graph: BipartiteGraph, pairs) -> BipartiteGraph:
    """The single edge-insertion point shared by every extraction path.

    Accelerated paths can surface the same candidate pair more than once
    (duplicate sweep events, posting-list unions); the naive path cannot.
    ``BipartiteGraph.add_edge`` happens to be idempotent (set-backed), so
    paths that skipped their own dedup were still correct — but only by
    accident of the storage choice.  Routing every path through one dedup
    point makes the semantics uniform by construction, and a multigraph-
    backed storage swap could no longer silently diverge between paths.
    """
    for r_ref, s_ref in _dedup_pairs(pairs):
        graph.add_edge(r_ref, s_ref)
    return graph


def _naive(left: Relation, right: Relation, predicate: JoinPredicate) -> BipartiteGraph:
    graph = _empty_graph(left, right)
    return _add_edges(
        graph,
        (
            (r_ref, s_ref)
            for r_ref, r_val in left.items()
            for s_ref, s_val in right.items()
            if predicate.matches(r_val, s_val)
        ),
    )


def _hash_equality(left: Relation, right: Relation) -> BipartiteGraph:
    graph = _empty_graph(left, right)
    buckets: dict = {}
    for s_ref, s_val in right.items():
        buckets.setdefault(s_val, []).append(s_ref)
    return _add_edges(
        graph,
        (
            (r_ref, s_ref)
            for r_ref, r_val in left.items()
            for s_ref in buckets.get(r_val, ())
        ),
    )


def _sweep_spatial(left: Relation, right: Relation) -> BipartiteGraph:
    graph = _empty_graph(left, right)
    left_entries = [(value, ref) for ref, value in left.items()]
    right_entries = [(value, ref) for ref, value in right.items()]
    return _add_edges(graph, sweep_rectangle_pairs(left_entries, right_entries))


def _polygon_filter_verify(
    left: Relation, right: Relation, predicate: JoinPredicate
) -> BipartiteGraph:
    # Filter on bounding boxes with the sweep, verify with the real test.
    # Candidates are deduplicated *before* verification so each pair pays
    # the exact predicate at most once.
    graph = _empty_graph(left, right)
    left_entries = [(value.bounding_box(), ref) for ref, value in left.items()]
    right_entries = [(value.bounding_box(), ref) for ref, value in right.items()]
    candidates = _dedup_pairs(sweep_rectangle_pairs(left_entries, right_entries))
    return _add_edges(
        graph,
        (
            (r_ref, s_ref)
            for r_ref, s_ref in candidates
            if predicate.matches(left.value(r_ref), right.value(s_ref))
        ),
    )


def _sweep_intervals(left: Relation, right: Relation) -> BipartiteGraph:
    from repro.geometry.interval import sweep_interval_pairs

    graph = _empty_graph(left, right)
    left_entries = [(value, ref) for ref, value in left.items()]
    right_entries = [(value, ref) for ref, value in right.items()]
    return _add_edges(graph, sweep_interval_pairs(left_entries, right_entries))


def _inverted_containment(left: Relation, right: Relation) -> BipartiteGraph:
    graph = _empty_graph(left, right)
    index = InvertedIndex([(ref, value) for ref, value in right.items()])
    return _add_edges(
        graph,
        (
            (r_ref, s_ref)
            for r_ref, r_val in left.items()
            for s_ref in index.superset_candidates(r_val)
        ),
    )


def _inverted_set_overlap(left: Relation, right: Relation) -> BipartiteGraph:
    # Overlap = union (not intersection) of the posting lists of the left
    # set's elements; exact, no verification needed.
    def pairs():
        index = InvertedIndex([(ref, value) for ref, value in right.items()])
        for r_ref, r_val in left.items():
            candidates: set = set()
            for element in r_val:
                candidates |= index.postings(element)
            for s_ref in sorted(candidates, key=repr):
                yield r_ref, s_ref

    return _add_edges(_empty_graph(left, right), pairs())


def _sorted_band(left: Relation, right: Relation, width: float) -> BipartiteGraph:
    # Classic band-join merge: sort both sides, slide a window of radius
    # `width` over the right side as the left side advances.
    def pairs():
        left_sorted = sorted(left.items(), key=lambda item: item[1])
        right_sorted = sorted(right.items(), key=lambda item: item[1])
        low = 0
        for r_ref, r_val in left_sorted:
            # Window bounds compare the *difference* against the width,
            # exactly as Band.matches computes |a - b| <= width; the
            # algebraically equal forms `right < r_val - width` /
            # `right <= r_val + width` round differently near the boundary
            # and disagree with the predicate.
            while low < len(right_sorted) and r_val - right_sorted[low][1] > width:
                low += 1
            probe = low
            while (
                probe < len(right_sorted)
                and right_sorted[probe][1] - r_val <= width
            ):
                yield r_ref, right_sorted[probe][0]
                probe += 1

    return _add_edges(_empty_graph(left, right), pairs())


def build_join_graph(
    left: Relation,
    right: Relation,
    predicate: JoinPredicate,
    accelerate: bool = True,
) -> BipartiteGraph:
    """The join graph of ``left ⋈_θ right``.

    Vertices are :class:`~repro.relations.relation.TupleRef` objects; the
    left/right sides follow the relations.  With ``accelerate=False`` the
    naive cross-product evaluation is forced (useful as an oracle).
    """
    predicate.check_domains(left.domain, right.domain)
    if not accelerate:
        return _naive(left, right, predicate)
    if isinstance(predicate, Equality):
        try:
            return _hash_equality(left, right)
        except TypeError:  # unhashable values: fall back to naive
            return _naive(left, right, predicate)
    if predicate.name == "spatial-overlap":
        if left.domain == Domain.INTERVAL and right.domain == Domain.INTERVAL:
            return _sweep_intervals(left, right)
        if left.domain == Domain.RECTANGLE and right.domain == Domain.RECTANGLE:
            return _sweep_spatial(left, right)
        if left.domain == Domain.POLYGON and right.domain == Domain.POLYGON:
            return _polygon_filter_verify(left, right, predicate)
    if isinstance(predicate, SetContainment):
        return _inverted_containment(left, right)
    if predicate.name == "set-overlap":
        return _inverted_set_overlap(left, right)
    if predicate.name == "band":
        return _sorted_band(left, right, predicate.width)
    return _naive(left, right, predicate)


# A small LRU of recently built join graphs.  Keys combine object identity
# with the (append-only) relation lengths, so a relation that grows after
# caching can never alias a stale graph; holding strong references to the
# relations in the value pins their ids for the entry's lifetime.
_GRAPH_CACHE: OrderedDict = OrderedDict()
_GRAPH_CACHE_LIMIT = 16


def _predicate_cache_key(predicate: JoinPredicate) -> tuple:
    return (type(predicate).__name__, tuple(sorted(vars(predicate).items())))


def clear_join_graph_cache() -> None:
    """Drop every memoized join graph (tests and long-lived processes)."""
    _GRAPH_CACHE.clear()


def build_join_graph_cached(
    left: Relation,
    right: Relation,
    predicate: JoinPredicate,
    accelerate: bool = True,
) -> BipartiteGraph:
    """Memoized :func:`build_join_graph`.

    Re-planning and re-executing the same query (the executor's trace
    path, repeated benchmark rounds) previously rebuilt the identical
    join graph each time; this front-end returns the cached graph
    instead and records the saved work under the
    ``joins.join_graph_cache.*`` metrics counters.  The returned graph is
    **shared** — callers must treat it as read-only.
    """
    key = (
        id(left),
        len(left),
        id(right),
        len(right),
        _predicate_cache_key(predicate),
        accelerate,
    )
    entry = _GRAPH_CACHE.get(key)
    if entry is not None and entry[0] is left and entry[1] is right:
        _GRAPH_CACHE.move_to_end(key)
        obs_metrics.inc("joins.join_graph_cache.hits")
        return entry[2]
    graph = build_join_graph(left, right, predicate, accelerate)
    obs_metrics.inc("joins.join_graph_cache.misses")
    _GRAPH_CACHE[key] = (left, right, graph)
    while len(_GRAPH_CACHE) > _GRAPH_CACHE_LIMIT:
        _GRAPH_CACHE.popitem(last=False)
    return graph


def join_output_size(graph: BipartiteGraph) -> int:
    """``m``: the number of result tuples — the paper's input-size measure
    for the pebbling problem ("our results are expressed in terms of the
    output size", §2)."""
    return graph.num_edges
