"""The trace bridge: join executions as pebbling schemes.

"For every pair of tuples (r, s) that joins, any join algorithm has to
consider this pair of tuples at some point of time in its execution and
produce a result tuple" (§2).  The *order* in which an algorithm emits its
result pairs therefore induces a pebbling scheme: configuration ``i`` puts
the pebbles on the ``i``-th emitted pair.  This module performs that
conversion and summarizes the resulting pebbling costs, which is how the
benchmarks compare real algorithms (sort-merge, hash join, plane sweep,
signature joins, …) inside the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import betti_number
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relations.relation import TupleRef
from repro.core.costs import effective_cost_bounds
from repro.core.scheme import PebblingScheme

JoinOutput = list[tuple[TupleRef, TupleRef]]


def scheme_from_output(
    graph: BipartiteGraph, output: JoinOutput
) -> PebblingScheme:
    """Convert a join algorithm's emitted pair order into a scheme.

    The output must contain every join-graph edge exactly once (all join
    algorithms in :mod:`repro.joins.algorithms` satisfy this; a buggy one
    raises :class:`~repro.errors.SchemeError` here, which the failure-
    injection tests rely on).
    """
    working = graph.without_isolated_vertices()
    return PebblingScheme.from_edge_order(working, output)


@dataclass(frozen=True)
class TraceReport:
    """Pebbling-cost accounting for one join execution."""

    algorithm: str
    output_size: int  # m: result tuples
    effective_cost: int  # π of the induced scheme
    raw_cost: int  # π̂
    jumps: int
    lower_bound: int  # m
    upper_bound: int  # sum of floor(1.25 m_c)

    @property
    def cost_ratio(self) -> float:
        """π / m: 1.0 means the execution pebbles perfectly."""
        if self.output_size == 0:
            return 1.0
        return self.effective_cost / self.output_size

    def row(self) -> tuple:
        return (
            self.algorithm,
            self.output_size,
            self.effective_cost,
            round(self.cost_ratio, 4),
            self.jumps,
        )


def trace_report(
    graph: BipartiteGraph, output: JoinOutput, algorithm: str
) -> TraceReport:
    """Build a :class:`TraceReport` for one execution's output order."""
    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        if output:
            raise SchemeError("join emitted pairs but the join graph is empty")
        return TraceReport(algorithm, 0, 0, 0, 0, 0, 0)
    with obs_trace.span("joins.trace_report", algorithm=algorithm):
        scheme = scheme_from_output(working, output)
        lower, upper = effective_cost_bounds(working)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("joins.trace_reports")
        obs_metrics.inc("joins.trace.jumps", scheme.jumps())
    return TraceReport(
        algorithm=algorithm,
        output_size=working.num_edges,
        effective_cost=scheme.effective_cost(working),
        raw_cost=scheme.cost(),
        jumps=scheme.jumps(),
        lower_bound=lower,
        upper_bound=upper,
    )


def beta0(graph: BipartiteGraph) -> int:
    """Convenience re-export of the Betti number for report code."""
    return betti_number(graph.without_isolated_vertices())
