"""The trace bridge: join executions as pebbling schemes.

"For every pair of tuples (r, s) that joins, any join algorithm has to
consider this pair of tuples at some point of time in its execution and
produce a result tuple" (§2).  The *order* in which an algorithm emits its
result pairs therefore induces a pebbling scheme: configuration ``i`` puts
the pebbles on the ``i``-th emitted pair.  This module performs that
conversion and summarizes the resulting pebbling costs, which is how the
benchmarks compare real algorithms (sort-merge, hash join, plane sweep,
signature joins, …) inside the paper's model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchemeError
from repro.graphs.bipartite import BipartiteGraph
from repro.graphs.components import betti_number
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.relations.relation import TupleRef
from repro.core.costs import effective_cost_bounds
from repro.core.scheme import PebblingScheme

JoinOutput = list[tuple[TupleRef, TupleRef]]


def scheme_from_output(
    graph: BipartiteGraph, output: JoinOutput
) -> PebblingScheme:
    """Convert a join algorithm's emitted pair order into a scheme.

    The output must contain every join-graph edge exactly once (all join
    algorithms in :mod:`repro.joins.algorithms` satisfy this; a buggy one
    raises :class:`~repro.errors.SchemeError` here, which the failure-
    injection tests rely on).
    """
    working = graph.without_isolated_vertices()
    return PebblingScheme.from_edge_order(working, output)


@dataclass(frozen=True)
class TraceReport:
    """Pebbling-cost accounting for one join execution."""

    algorithm: str
    output_size: int  # m: result tuples
    effective_cost: int  # π of the induced scheme
    raw_cost: int  # π̂
    jumps: int
    lower_bound: int  # m
    upper_bound: int  # sum of floor(1.25 m_c)

    @property
    def cost_ratio(self) -> float:
        """π / m: 1.0 means the execution pebbles perfectly."""
        if self.output_size == 0:
            return 1.0
        return self.effective_cost / self.output_size

    def row(self) -> tuple:
        return (
            self.algorithm,
            self.output_size,
            self.effective_cost,
            round(self.cost_ratio, 4),
            self.jumps,
        )


def trace_report(
    graph: BipartiteGraph, output: JoinOutput, algorithm: str
) -> TraceReport:
    """Build a :class:`TraceReport` for one execution's output order."""
    working = graph.without_isolated_vertices()
    if working.num_edges == 0:
        if output:
            raise SchemeError("join emitted pairs but the join graph is empty")
        return TraceReport(algorithm, 0, 0, 0, 0, 0, 0)
    with obs_trace.span("joins.trace_report", algorithm=algorithm):
        scheme = scheme_from_output(working, output)
        lower, upper = effective_cost_bounds(working)
    if obs_metrics.METRICS.enabled:
        obs_metrics.inc("joins.trace_reports")
        obs_metrics.inc("joins.trace.jumps", scheme.jumps())
    return TraceReport(
        algorithm=algorithm,
        output_size=working.num_edges,
        effective_cost=scheme.effective_cost(working),
        raw_cost=scheme.cost(),
        jumps=scheme.jumps(),
        lower_bound=lower,
        upper_bound=upper,
    )


def beta0(graph: BipartiteGraph) -> int:
    """Convenience re-export of the Betti number for report code."""
    return betti_number(graph.without_isolated_vertices())


@dataclass(frozen=True)
class MultiwayTraceReport:
    """Pebbling-cost accounting for one *multiway* execution.

    A multiway output is a stream of full variable bindings, not tuple
    pairs, so the bridge first projects it onto two atoms: each binding
    maps to the (first) row of each atom matching it, giving a
    ``TupleRef``–``TupleRef`` pair.  Deduplicated keep-first, that pair
    stream is a join-output order over the bipartite graph it spans, and
    the binary pebbling machinery applies unchanged.  ``beta0`` is the
    Betti number of the projected graph — the paper's obstruction to
    perfect pebbling, reported here so multiway runs can be compared with
    the binary benchmarks on the same axis.
    """

    report: TraceReport
    beta0: int
    left_atom: str
    right_atom: str
    projected_pairs: int  # distinct pairs the bindings project to

    def as_dict(self) -> dict:
        return {
            "algorithm": self.report.algorithm,
            "left_atom": self.left_atom,
            "right_atom": self.right_atom,
            "projected_pairs": self.projected_pairs,
            "effective_cost": self.report.effective_cost,
            "cost_ratio": round(self.report.cost_ratio, 4),
            "jumps": self.report.jumps,
            "beta0": self.beta0,
            "lower_bound": self.report.lower_bound,
            "upper_bound": self.report.upper_bound,
        }


def multiway_trace_report(
    query,
    bindings,
    algorithm: str,
    atom_pair: tuple[int, int] = (0, 1),
) -> MultiwayTraceReport:
    """Project a multiway execution onto an atom pair and pebble it.

    ``query`` is a :class:`~repro.joins.multiway.query.MultiwayQuery`,
    ``bindings`` the emitted full bindings in execution order (canonical
    ``query.variables()`` column order).  ``atom_pair`` picks which two
    atoms the bindings are projected onto (default: the first two).
    """
    left, right = (query.atoms[i] for i in atom_pair)
    if left.name == right.name:
        raise SchemeError("trace projection needs two distinct atoms")
    order = query.variables()
    var_index = {v: i for i, v in enumerate(order)}

    def first_row_index(atom):
        # Keep-first: a binding pebbles the first matching row of the atom.
        mapping: dict[tuple, int] = {}
        for ordinal, row in enumerate(atom.rows):
            mapping.setdefault(tuple(row), ordinal)
        positions = tuple(var_index[v] for v in atom.variables)
        return mapping, positions

    left_rows, left_pos = first_row_index(left)
    right_rows, right_pos = first_row_index(right)
    pairs: JoinOutput = []
    seen: set[tuple[TupleRef, TupleRef]] = set()
    for binding in bindings:
        lrow = tuple(binding[i] for i in left_pos)
        rrow = tuple(binding[i] for i in right_pos)
        pair = (
            TupleRef(left.name, left_rows[lrow]),
            TupleRef(right.name, right_rows[rrow]),
        )
        if pair not in seen:
            seen.add(pair)
            pairs.append(pair)
    graph = BipartiteGraph()
    for lref, rref in pairs:
        graph.add_left_vertex(lref)
        graph.add_right_vertex(rref)
        graph.add_edge(lref, rref)
    report = trace_report(graph, pairs, algorithm)
    return MultiwayTraceReport(
        report=report,
        beta0=beta0(graph),
        left_atom=left.name,
        right_atom=right.name,
        projected_pairs=len(pairs),
    )
