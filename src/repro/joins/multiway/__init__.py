"""Worst-case-optimal multiway joins: LFTJ, generic join, and the AGM bound.

The binary join layer evaluates one predicate between two relations; this
package evaluates full conjunctive queries ``R(a,b) ⋈ S(b,c) ⋈ T(c,a)``
where no binary plan is worst-case optimal:

- :mod:`repro.joins.multiway.query` — :class:`Atom` / :class:`MultiwayQuery`,
  the hypergraph representation, plus a brute-force oracle;
- :mod:`repro.joins.multiway.trie` — sorted-array trie views and the
  ``open/up/next/seek`` iterator Leapfrog Triejoin navigates;
- :mod:`repro.joins.multiway.leapfrog` — Leapfrog Triejoin (Veldhuizen);
- :mod:`repro.joins.multiway.generic` — generic join (Ngo–Ré–Rudra), the
  reference worst-case-optimal evaluator;
- :mod:`repro.joins.multiway.cascade` — the binary hash-join cascade
  strawman and its skew-aware cost estimate;
- :mod:`repro.joins.multiway.bounds` — fractional edge covers and the AGM
  output bound, solved exactly over rationals.
"""

from repro.joins.multiway.bounds import agm_bound, fractional_edge_cover
from repro.joins.multiway.cascade import binary_cascade, estimate_cascade
from repro.joins.multiway.generic import generic_join
from repro.joins.multiway.leapfrog import leapfrog_triejoin
from repro.joins.multiway.query import (
    Atom,
    MultiwayQuery,
    choose_variable_order,
    naive_multiway,
)
from repro.joins.multiway.result import MultiwayResult
from repro.joins.multiway.trie import TrieIterator, TrieRelation

__all__ = [
    "Atom",
    "MultiwayQuery",
    "MultiwayResult",
    "TrieIterator",
    "TrieRelation",
    "agm_bound",
    "binary_cascade",
    "choose_variable_order",
    "estimate_cascade",
    "fractional_edge_cover",
    "generic_join",
    "leapfrog_triejoin",
    "naive_multiway",
]
