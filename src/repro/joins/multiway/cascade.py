"""Binary hash-join cascade: the plan every binary-only engine is stuck with.

Joins the atoms left to right with pairwise hash joins, materializing each
intermediate relation in full.  On acyclic queries with a good order this
is fine; on cyclic queries (triangle, 4-cycle, clique) *every* pairwise
order materializes an intermediate that can exceed the AGM output bound
polynomially — the gap the worst-case-optimal algorithms close.  Kept as
the executable strawman and as the planner's cheap-path candidate.

Also home to :func:`estimate_cascade`, the planner's no-execution estimate
of the cascade's per-stage sizes: the first stage is estimated *exactly*
from value-frequency counters (cheap, and the skew-sensitive part), later
stages via max-degree caps.
"""

from __future__ import annotations

from collections import Counter

from repro.joins.multiway.query import MultiwayQuery, Row
from repro.joins.multiway.result import MultiwayResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget, current_budget

_CHECK_EVERY = 1024


def binary_cascade(
    query: MultiwayQuery, budget: Budget | None = None
) -> MultiwayResult:
    """Evaluate ``query`` as a left-to-right cascade of binary hash joins."""
    budget = budget if budget is not None else current_budget()
    with obs_trace.span("multiway.cascade", atoms=len(query.atoms)):
        result = _run(query, budget)
    obs_metrics.inc("multiway.cascade.runs")
    obs_metrics.inc("multiway.cascade.intermediates", result.intermediates)
    obs_metrics.observe("multiway.output_size", result.output_size)
    return result


def _run(query: MultiwayQuery, budget: Budget | None) -> MultiwayResult:
    atoms = query.atoms
    order = query.variables()
    result = MultiwayResult(algorithm="binary-cascade", order=order)
    acc_vars = list(atoms[0].variables)
    acc: list[Row] = sorted(atoms[0].distinct_rows())
    stage_sizes: list[int] = []
    steps = 0
    for stage, atom in enumerate(atoms[1:], start=1):
        shared = [v for v in atom.variables if v in acc_vars]
        fresh = [v for v in atom.variables if v not in acc_vars]
        shared_pos = [atom.variables.index(v) for v in shared]
        fresh_pos = [atom.variables.index(v) for v in fresh]
        buckets: dict[Row, list[Row]] = {}
        for row in atom.distinct_rows():
            key = tuple(row[i] for i in shared_pos)
            buckets.setdefault(key, []).append(tuple(row[i] for i in fresh_pos))
        acc_key = [acc_vars.index(v) for v in shared]
        out: list[Row] = []
        for t in acc:
            key = tuple(t[i] for i in acc_key)
            for ext in buckets.get(key, ()):
                out.append(t + ext)
                steps += 1
                if budget is not None and steps % _CHECK_EVERY == 0:
                    budget.checkpoint(_CHECK_EVERY)
        acc_vars.extend(fresh)
        acc = out
        stage_sizes.append(len(out))
        if stage < len(atoms) - 1:
            # Only non-final stages are *intermediate* materializations;
            # the last stage's output is the query output itself.
            result.intermediates += len(out)
    if budget is not None:
        budget.checkpoint(steps % _CHECK_EVERY)
    # acc_vars grew in first-appearance order, so it already matches
    # query.variables() — no final projection needed.
    assert tuple(acc_vars) == order
    result.bindings = acc
    result.stage_sizes = tuple(stage_sizes)
    return result


def estimate_cascade(query: MultiwayQuery) -> tuple[int, ...]:
    """Estimated per-stage output sizes of the cascade, without running it.

    Stage 1 is computed exactly as ``sum(cnt_left[k] * cnt_right[k])`` over
    the shared-variable projection counters — linear-time, and it is the
    stage where skew (heavy-hitter values) blows the cascade up.  Later
    stages multiply by the next atom's max degree on its shared variables,
    an upper-bound-flavoured cap rather than an independence guess, so a
    skewed instance is *reported* as super-linear instead of averaged away.
    """
    atoms = query.atoms
    if len(atoms) < 2:
        return ()
    first, second = atoms[0], atoms[1]
    shared = [v for v in second.variables if v in first.variables]
    left_cnt: Counter = Counter(
        tuple(row[first.variables.index(v)] for v in shared)
        for row in first.distinct_rows()
    )
    right_cnt: Counter = Counter(
        tuple(row[second.variables.index(v)] for v in shared)
        for row in second.distinct_rows()
    )
    est = sum(n * right_cnt[key] for key, n in left_cnt.items() if key in right_cnt)
    estimates = [est]
    acc_vars = set(first.variables) | set(second.variables)
    for atom in atoms[2:]:
        shared = [v for v in atom.variables if v in acc_vars]
        shared_pos = [atom.variables.index(v) for v in shared]
        cnt: Counter = Counter(
            tuple(row[i] for i in shared_pos) for row in atom.distinct_rows()
        )
        max_degree = max(cnt.values(), default=0)
        est = est * max_degree
        estimates.append(est)
        acc_vars |= set(atom.variables)
    return tuple(estimates)
