"""The AGM bound: fractional edge covers solved exactly over rationals.

Atserias–Grohe–Marx: for a join query with hypergraph ``H`` and relation
sizes ``N_e``, the output size is at most ``prod_e N_e^{w_e}`` for any
fractional edge cover ``w`` (``sum_{e ∋ v} w_e >= 1`` for every variable
``v``, ``w >= 0``), and the best bound comes from minimizing
``sum_e w_e · log2(N_e)``.  Worst-case-optimal algorithms run in time
``~O(AGM(Q))``; the binary cascade does not.

The LP here is tiny (atoms are the variables: 3 for a triangle, 6 for a
4-clique), so instead of pulling in an LP solver we enumerate basic
solutions exactly with :class:`fractions.Fraction` Gaussian elimination —
the optimum of a pointed LP sits at a vertex, and every vertex is the
solution of some square subsystem of tight constraints.
"""

from __future__ import annotations

import math
from fractions import Fraction
from itertools import combinations

from repro.errors import PredicateError
from repro.joins.multiway.query import MultiwayQuery


def fractional_edge_cover(query: MultiwayQuery) -> dict[str, Fraction]:
    """The minimum-cost fractional edge cover, as exact rational weights.

    Cost of atom ``e`` is ``log2(N_e)`` (clamped to sizes >= 1 — an atom
    with a single row costs nothing to pick).  Raises only on malformed
    queries; the LP itself is always feasible (all-ones is a cover).
    """
    atoms = query.atoms
    variables = query.variables()
    n = len(atoms)
    sizes = [max(1, len(atom.distinct_rows())) for atom in atoms]
    costs = [math.log2(size) for size in sizes]

    # Candidate tight constraints, each a row (a, b) meaning a·w = b:
    #   per variable v:  sum_{e ∋ v} w_e = 1
    #   per atom e:      w_e = 0
    rows: list[tuple[list[Fraction], Fraction]] = []
    for v in variables:
        coeff = [
            Fraction(1) if v in atom.variables else Fraction(0) for atom in atoms
        ]
        rows.append((coeff, Fraction(1)))
    for e in range(n):
        coeff = [Fraction(0)] * n
        coeff[e] = Fraction(1)
        rows.append((coeff, Fraction(0)))

    best: list[Fraction] | None = None
    best_cost = math.inf
    for subset in combinations(range(len(rows)), n):
        matrix = [rows[i][0][:] for i in subset]
        rhs = [rows[i][1] for i in subset]
        solution = _solve_exact(matrix, rhs)
        if solution is None:
            continue
        if any(w < 0 for w in solution):
            continue
        if not all(
            sum(w for w, atom in zip(solution, atoms) if v in atom.variables) >= 1
            for v in variables
        ):
            continue
        cost = sum(float(w) * c for w, c in zip(solution, costs))
        if cost < best_cost - 1e-12:
            best_cost = cost
            best = solution
    if best is None:  # pragma: no cover - all-ones is always a cover
        raise PredicateError("fractional edge cover LP found no vertex")
    return {atom.name: w for atom, w in zip(atoms, best)}


def agm_bound(query: MultiwayQuery) -> float:
    """The AGM worst-case output bound ``prod_e N_e^{w_e}``.

    Sizes are distinct-row counts (the multiway layer runs set semantics).
    Any empty atom forces an empty join, so the bound is 0.0.
    """
    if any(not atom.distinct_rows() for atom in query.atoms):
        return 0.0
    cover = fractional_edge_cover(query)
    sizes = {atom.name: len(atom.distinct_rows()) for atom in query.atoms}
    return math.prod(sizes[name] ** float(w) for name, w in cover.items())


def _solve_exact(
    matrix: list[list[Fraction]], rhs: list[Fraction]
) -> list[Fraction] | None:
    """Solve a square rational system by Gaussian elimination; None if singular."""
    n = len(matrix)
    a = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = next((r for r in range(col, n) if a[r][col] != 0), None)
        if pivot is None:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        inv = a[col][col]
        a[col] = [x / inv for x in a[col]]
        for r in range(n):
            if r != col and a[r][col] != 0:
                factor = a[r][col]
                a[r] = [x - factor * y for x, y in zip(a[r], a[col])]
    return [a[r][n] for r in range(n)]
