"""Generic join (Ngo–Ré–Rudra, "Skew Strikes Back"): the reference WCOJ.

Processes one variable at a time.  For the current variable the candidate
set is taken from the *smallest* participating atom's current fragment and
checked against the others — the intersection-by-smallest rule that drives
the worst-case-optimality proof.  Same asymptotics as Leapfrog Triejoin,
higher constants (it rebuilds per-level hash indexes instead of seeking in
sorted arrays); kept as an executable cross-check for LFTJ.
"""

from __future__ import annotations

from typing import Any

from repro.joins.multiway.query import MultiwayQuery, Row, choose_variable_order
from repro.joins.multiway.result import MultiwayResult
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget, current_budget

_CHECK_EVERY = 256


def generic_join(
    query: MultiwayQuery,
    order: tuple[str, ...] | None = None,
    budget: Budget | None = None,
) -> MultiwayResult:
    """Evaluate ``query`` with generic join under ``order``."""
    order = query.validate_order(order) if order else choose_variable_order(query)
    budget = budget if budget is not None else current_budget()
    with obs_trace.span("multiway.generic", atoms=len(query.atoms)):
        result = _run(query, order, budget)
    obs_metrics.inc("multiway.generic.runs")
    obs_metrics.inc("multiway.generic.intermediates", result.intermediates)
    obs_metrics.observe("multiway.output_size", result.output_size)
    return result


def _run(
    query: MultiwayQuery, order: tuple[str, ...], budget: Budget | None
) -> MultiwayResult:
    result = MultiwayResult(algorithm="generic", order=order)
    atoms = query.atoms
    var_pos = [{v: i for i, v in enumerate(atom.variables)} for atom in atoms]
    fragments: list[list[Row]] = [sorted(atom.distinct_rows()) for atom in atoms]
    if any(not frag for frag in fragments):
        return result
    containing = [
        [i for i, atom in enumerate(atoms) if v in atom.variables] for v in order
    ]
    last = len(order) - 1
    # Bindings are emitted in canonical query.variables() order even when
    # the search order differs.
    emit_perm = tuple(order.index(v) for v in query.variables())
    binding: list[Any] = []
    steps = 0

    def charge(amount: int = 1) -> None:
        nonlocal steps
        steps += amount
        if budget is not None and steps >= _CHECK_EVERY:
            budget.checkpoint(steps)
            steps = 0

    def level(depth: int, frags: list[list[Row]]) -> None:
        v = order[depth]
        members = containing[depth]
        # Per-atom hash index of the current fragments on this variable.
        index: dict[int, dict[Any, list[Row]]] = {}
        for i in members:
            pos = var_pos[i][v]
            grouped: dict[Any, list[Row]] = {}
            for row in frags[i]:
                grouped.setdefault(row[pos], []).append(row)
            index[i] = grouped
            charge(len(frags[i]))
        seed = min(members, key=lambda i: len(index[i]))
        others = [i for i in members if i != seed]
        for value in index[seed]:
            if any(value not in index[i] for i in others):
                continue
            result.intermediates += 1
            charge()
            binding.append(value)
            if depth == last:
                result.bindings.append(tuple(binding[i] for i in emit_perm))
            else:
                narrowed = list(frags)
                for i in members:
                    narrowed[i] = index[i][value]
                level(depth + 1, narrowed)
            binding.pop()

    level(0, fragments)
    if budget is not None and steps:
        budget.checkpoint(steps)
    return result
