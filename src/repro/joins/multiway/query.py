"""Conjunctive multiway join queries: atoms over shared variables.

The binary layer joins two single-column :class:`~repro.relations.relation.Relation`
objects under a predicate.  Worst-case-optimal joins need the full conjunctive
shape ``Q(x1..xk) :- R1(vars1), R2(vars2), ...`` where every atom is an n-ary
table and variables are shared *by name* across atoms.  :class:`Atom` and
:class:`MultiwayQuery` carry exactly that — no predicate object, equality on
shared variables is implied by the hypergraph structure.

All multiway algorithms in this package use **set semantics**: duplicate rows
within an atom are collapsed, and the output is the set of distinct variable
bindings.  That is the setting in which the AGM bound and worst-case
optimality statements hold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import PredicateError

Row = tuple[Any, ...]


@dataclass(frozen=True)
class Atom:
    """One n-ary relation occurrence: a name, a variable tuple, and rows.

    Variables within an atom must be distinct (self-joins on a column are
    expressed by repeating the *atom* with renamed variables, as usual in
    the conjunctive-query literature).  Rows are stored as given; algorithms
    treat them as a set.
    """

    name: str
    variables: tuple[str, ...]
    rows: tuple[Row, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise PredicateError("atom needs a non-empty name")
        if not self.variables:
            raise PredicateError(f"atom {self.name!r} needs at least one variable")
        if len(set(self.variables)) != len(self.variables):
            raise PredicateError(
                f"atom {self.name!r} repeats a variable: {self.variables}"
            )
        arity = len(self.variables)
        for row in self.rows:
            if len(row) != arity:
                raise PredicateError(
                    f"atom {self.name!r} has arity {arity} but row {row!r} "
                    f"has {len(row)} columns"
                )

    @property
    def arity(self) -> int:
        return len(self.variables)

    def distinct_rows(self) -> set[Row]:
        """The atom's rows under set semantics."""
        return set(self.rows)

    def describe(self) -> str:
        return f"{self.name}({', '.join(self.variables)})"


@dataclass(frozen=True)
class MultiwayQuery:
    """A full conjunctive query: a tuple of atoms sharing variables by name."""

    atoms: tuple[Atom, ...]
    _variables: tuple[str, ...] = field(init=False, compare=False, repr=False)

    def __post_init__(self) -> None:
        if not self.atoms:
            raise PredicateError("multiway query needs at least one atom")
        names = [atom.name for atom in self.atoms]
        if len(set(names)) != len(names):
            raise PredicateError(f"atom names must be distinct, got {names}")
        seen: list[str] = []
        for atom in self.atoms:
            for var in atom.variables:
                if var not in seen:
                    seen.append(var)
        object.__setattr__(self, "_variables", tuple(seen))

    def variables(self) -> tuple[str, ...]:
        """All variables, in first-appearance order across the atom list."""
        return self._variables

    def atoms_with(self, variable: str) -> tuple[Atom, ...]:
        return tuple(a for a in self.atoms if variable in a.variables)

    def total_rows(self) -> int:
        return sum(len(atom.rows) for atom in self.atoms)

    def describe(self) -> str:
        return " ⋈ ".join(atom.describe() for atom in self.atoms)

    def validate_order(self, order: tuple[str, ...]) -> tuple[str, ...]:
        """Check that ``order`` is a permutation of the query's variables."""
        if sorted(order) != sorted(self._variables):
            raise PredicateError(
                f"variable order {order} is not a permutation of "
                f"{self._variables}"
            )
        return tuple(order)


def choose_variable_order(query: MultiwayQuery) -> tuple[str, ...]:
    """Pick a variable order for LFTJ / generic join.

    Heuristic: order variables by how many atoms contain them (most-shared
    first — those are the most constrained), breaking ties by first
    appearance.  For the cyclic benchmark queries (triangle, 4-cycle,
    clique) every variable has equal degree, so this degrades gracefully to
    first-appearance order.
    """
    first_seen = {v: i for i, v in enumerate(query.variables())}
    return tuple(
        sorted(
            query.variables(),
            key=lambda v: (-len(query.atoms_with(v)), first_seen[v]),
        )
    )


def naive_multiway(query: MultiwayQuery) -> set[Row]:
    """Brute-force reference: backtracking scan, no indexes, no tries.

    Exists purely as an independent oracle for tests; exponential scans,
    do not use on anything but tiny instances.
    """
    order = query.variables()
    results: set[Row] = set()

    def extend(binding: dict[str, Any], remaining: tuple[Atom, ...]) -> None:
        if not remaining:
            results.add(tuple(binding[v] for v in order))
            return
        atom, rest = remaining[0], remaining[1:]
        for row in atom.distinct_rows():
            candidate = dict(binding)
            ok = True
            for var, value in zip(atom.variables, row):
                if var in candidate and candidate[var] != value:
                    ok = False
                    break
                candidate[var] = value
            if ok:
                extend(candidate, rest)

    extend({}, query.atoms)
    return results
