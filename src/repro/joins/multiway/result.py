"""Shared result record for the multiway join algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.joins.multiway.query import Row


@dataclass
class MultiwayResult:
    """One multiway execution: distinct bindings plus work counters.

    ``bindings`` is in the algorithm's emission order (LFTJ emits sorted
    under the variable order; the binary cascade emits probe order), which
    is what the pebbling trace bridge consumes.  ``intermediates`` counts
    materialized/visited partial results: search-tree nodes for LFTJ and
    generic join, materialized stage tuples for the binary cascade — the
    quantity the AGM bound story is about.  ``seeks`` counts trie seek
    operations (0 for algorithms that do not seek).
    """

    algorithm: str
    order: tuple[str, ...]
    bindings: list[Row] = field(default_factory=list)
    intermediates: int = 0
    seeks: int = 0
    stage_sizes: tuple[int, ...] = ()

    @property
    def output_size(self) -> int:
        return len(self.bindings)

    def binding_set(self) -> set[Row]:
        return set(self.bindings)

    def as_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "order": list(self.order),
            "output_size": self.output_size,
            "intermediates": self.intermediates,
            "seeks": self.seeks,
            "stage_sizes": list(self.stage_sizes),
        }
