"""Leapfrog Triejoin (Veldhuizen 2012): worst-case-optimal multiway join.

One trie iterator per atom, all sorted under a single global variable
order.  At each depth the iterators containing that variable "leapfrog":
each in turn seeks to the current maximum key, until all sit on the same
value (a match, extending the partial binding) or one runs off the end.
Total running time is ``O(AGM(Q) · log n)`` — intermediate work is bounded
by the worst-case output size, which is exactly what the binary cascade
cannot guarantee on cyclic queries.

``intermediates`` counts search-tree nodes (accepted partial bindings at
every depth), the LFTJ analogue of materialized intermediate tuples.
"""

from __future__ import annotations

from typing import Any

from repro.joins.multiway.query import MultiwayQuery, choose_variable_order
from repro.joins.multiway.result import MultiwayResult
from repro.joins.multiway.trie import TrieIterator, TrieRelation
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.budget import Budget, current_budget

# Budget checkpoints are batched: one checkpoint per this many leapfrog
# steps keeps the overhead out of the inner loop while still bounding how
# far a run can overshoot its deadline.
_CHECK_EVERY = 256


def leapfrog_triejoin(
    query: MultiwayQuery,
    order: tuple[str, ...] | None = None,
    budget: Budget | None = None,
) -> MultiwayResult:
    """Evaluate ``query`` with Leapfrog Triejoin under ``order``."""
    order = query.validate_order(order) if order else choose_variable_order(query)
    budget = budget if budget is not None else current_budget()
    with obs_trace.span("multiway.lftj", atoms=len(query.atoms)):
        result = _run(query, order, budget)
    obs_metrics.inc("multiway.lftj.runs")
    obs_metrics.inc("multiway.lftj.intermediates", result.intermediates)
    obs_metrics.inc("multiway.lftj.seeks", result.seeks)
    obs_metrics.observe("multiway.output_size", result.output_size)
    return result


def _run(
    query: MultiwayQuery, order: tuple[str, ...], budget: Budget | None
) -> MultiwayResult:
    result = MultiwayResult(algorithm="lftj", order=order)
    tries = [TrieRelation(atom, order) for atom in query.atoms]
    if any(len(t) == 0 for t in tries):
        return result
    iters = [TrieIterator(t) for t in tries]
    per_depth: list[list[TrieIterator]] = [
        [it for it, t in zip(iters, tries) if order[d] in t.depth_vars]
        for d in range(len(order))
    ]
    last = len(order) - 1
    # Bindings are emitted in canonical query.variables() order even when
    # the search order differs.
    emit_perm = tuple(order.index(v) for v in query.variables())
    binding: list[Any] = []
    steps = 0

    def charge() -> None:
        nonlocal steps
        steps += 1
        if budget is not None and steps % _CHECK_EVERY == 0:
            budget.checkpoint(_CHECK_EVERY)

    def level(depth: int) -> None:
        parts = per_depth[depth]
        for it in parts:
            it.open()
        try:
            arr = sorted(parts, key=lambda it: it.key())
            k = len(arr)
            p = 0
            xmax = arr[k - 1].key()
            while True:
                charge()
                x = arr[p].key()
                if x == xmax:
                    # All k iterators agree on x: a match at this depth.
                    result.intermediates += 1
                    binding.append(x)
                    if depth == last:
                        result.bindings.append(
                            tuple(binding[i] for i in emit_perm)
                        )
                    else:
                        level(depth + 1)
                    binding.pop()
                    arr[p].next()
                else:
                    arr[p].seek(xmax)
                if arr[p].at_end:
                    return
                xmax = arr[p].key()
                p = (p + 1) % k
        finally:
            for it in parts:
                it.up()

    level(0)
    result.seeks = sum(it.seeks for it in iters)
    if budget is not None:
        budget.checkpoint(steps % _CHECK_EVERY)
    return result
