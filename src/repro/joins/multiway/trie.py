"""Sorted-array trie view of an atom, plus the LFTJ trie iterator.

A :class:`TrieRelation` materializes an atom's distinct rows with columns
permuted to follow a global variable order, then sorts them
lexicographically.  The sorted array *is* the trie: every trie node is a
contiguous row range sharing a prefix, and the children of a node are the
distinct values of the next column within that range.  No pointer structure
is built; :class:`TrieIterator` navigates with binary search, which is what
gives Leapfrog Triejoin its ``O(log n)`` seeks.
"""

from __future__ import annotations

from typing import Any

from repro.errors import PredicateError
from repro.joins.multiway.query import Atom, Row


class TrieRelation:
    """An atom's rows, deduplicated and sorted under a global variable order."""

    def __init__(self, atom: Atom, order: tuple[str, ...]) -> None:
        depth_vars = tuple(v for v in order if v in atom.variables)
        if set(depth_vars) != set(atom.variables):
            raise PredicateError(
                f"variable order {order} does not cover atom {atom.describe()}"
            )
        perm = tuple(atom.variables.index(v) for v in depth_vars)
        self.atom = atom
        self.depth_vars = depth_vars
        self.rows: list[Row] = sorted(
            {tuple(row[i] for i in perm) for row in atom.rows}
        )

    @property
    def arity(self) -> int:
        return len(self.depth_vars)

    def __len__(self) -> int:
        return len(self.rows)


class TrieIterator:
    """Leapfrog trie iterator: ``open``/``up``/``next``/``seek`` over one trie.

    State is a stack of row ranges.  At depth ``d`` the iterator sits on a
    *key*: the value ``rows[lo][d]`` shared by the contiguous sub-range
    ``[lo, hi)``.  Rows are lexicographically sorted, so within the parent
    range the column-``d`` values are sorted and binary search applies.
    """

    def __init__(self, trie: TrieRelation) -> None:
        self._rows = trie.rows
        self._arity = trie.arity
        # Parent ranges per depth; depth -1 is the virtual root.
        self._parents: list[tuple[int, int]] = [(0, len(self._rows))]
        self._lo = 0
        self._hi = len(self._rows)
        self._depth = -1
        self.at_end = len(self._rows) == 0
        self.seeks = 0

    # -- navigation -------------------------------------------------------

    def key(self) -> Any:
        if self.at_end or self._depth < 0:
            raise PredicateError("trie iterator has no current key")
        return self._rows[self._lo][self._depth]

    def open(self) -> None:
        """Descend to the first key of the next column."""
        if self.at_end:
            raise PredicateError("cannot open a trie iterator at end")
        if self._depth + 1 >= self._arity:
            raise PredicateError("trie iterator already at max depth")
        parent = (self._lo, self._hi)
        self._parents.append(parent)
        self._depth += 1
        self._lo = parent[0]
        self._hi = self._run_end(self._lo, parent[1])

    def up(self) -> None:
        """Return to the parent column (restores its full key range)."""
        if self._depth < 0:
            raise PredicateError("trie iterator already at root")
        self._lo, self._hi = self._parents.pop()
        self._depth -= 1
        self.at_end = False

    def next(self) -> None:
        """Advance to the next distinct key at this depth."""
        parent_hi = self._parents[-1][1]
        self._lo = self._hi
        if self._lo >= parent_hi:
            self.at_end = True
        else:
            self._hi = self._run_end(self._lo, parent_hi)

    def seek(self, target: Any) -> None:
        """Jump to the least key ``>= target`` at this depth (leapfrog step)."""
        parent_lo, parent_hi = self._parents[-1]
        self.seeks += 1
        lo, hi, d = max(self._lo, parent_lo), parent_hi, self._depth
        rows = self._rows
        while lo < hi:
            mid = (lo + hi) // 2
            if rows[mid][d] < target:
                lo = mid + 1
            else:
                hi = mid
        self._lo = lo
        if lo >= parent_hi:
            self.at_end = True
        else:
            self.at_end = False
            self._hi = self._run_end(lo, parent_hi)

    # -- internals --------------------------------------------------------

    def _run_end(self, lo: int, parent_hi: int) -> int:
        """End of the run of rows sharing ``rows[lo][depth]`` within the parent."""
        d = self._depth
        rows = self._rows
        key = rows[lo][d]
        a, b = lo + 1, parent_hi
        while a < b:
            mid = (a + b) // 2
            if rows[mid][d] == key:
                a = mid + 1
            else:
                b = mid
        return a
