"""The join layer: predicates, join graphs, algorithms, and the trace bridge.

This is where the paper's abstraction meets running code:

- :mod:`repro.joins.predicates` — the three predicate classes the paper
  studies (equality, spatial overlap, set containment) plus extensions;
- :mod:`repro.joins.join_graph` — build the bipartite join graph of an
  instance (§2), naively or with predicate-specific acceleration;
- :mod:`repro.joins.algorithms` — real join algorithms (hash, sort-merge,
  index/block nested loops, plane-sweep/R-tree/PBSM spatial joins,
  signature/inverted-index set joins);
- :mod:`repro.joins.trace` — convert any algorithm's output order into a
  pebbling scheme, so the model's costs can be measured on real executions.
"""

from repro.joins.predicates import (
    Band,
    Equality,
    JoinPredicate,
    SetContainment,
    SetOverlap,
    SpatialOverlap,
)
from repro.joins.join_graph import build_join_graph
from repro.joins.trace import scheme_from_output, trace_report
from repro.joins.partitioning import (
    Partitioning,
    greedy_partitioning,
    hash_partitioning,
    optimal_partitioning_bruteforce,
    round_robin_partitioning,
)

__all__ = [
    "Partitioning",
    "hash_partitioning",
    "round_robin_partitioning",
    "greedy_partitioning",
    "optimal_partitioning_bruteforce",
    "JoinPredicate",
    "Equality",
    "SpatialOverlap",
    "SetContainment",
    "SetOverlap",
    "Band",
    "build_join_graph",
    "scheme_from_output",
    "trace_report",
]
