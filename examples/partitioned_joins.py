"""The paper's open problem (§5): optimal tuple-to-partition mappings.

Partitioned join algorithms map R and S into p x q capacity-bounded
partitions and execute only the sub-joins whose cell is crossed by a
joining pair.  Finding the mapping minimizing executed sub-joins is
NP-complete for all three predicate classes (paper §5); the paper
conjectures equijoins admit good approximations.

This example compares mapping strategies on an equijoin instance, a
spatial instance, and the adversarial containment instance — including
the exact (brute-force) optimum where feasible — and prints the cell
grids.

Run:  python examples/partitioned_joins.py
"""

from repro import Equality, SetContainment, SpatialOverlap, build_join_graph
from repro.analysis.render import render_partitioning
from repro.analysis.report import Table
from repro.errors import InstanceTooLargeError
from repro.joins.partitioning import (
    cell_capacity_lower_bound,
    greedy_partitioning,
    hash_partitioning,
    optimal_partitioning_bruteforce,
    replication_grid_partitioning,
    round_robin_partitioning,
)
from repro.sets.realize import realize_worst_case_containment
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.spatial import uniform_rectangles_workload


def main() -> None:
    p = q = 2
    cases = []

    left, right = zipf_equijoin_workload(8, 8, key_universe=4, skew=0.5, seed=3)
    cases.append(("equijoin/zipf", build_join_graph(left, right, Equality())))

    left, right = uniform_rectangles_workload(8, 8, extent=30.0, mean_side=6.0, seed=3)
    cases.append(("spatial/uniform", build_join_graph(left, right, SpatialOverlap())))

    left, right = realize_worst_case_containment(4)
    cases.append(("containment/G4", build_join_graph(left, right, SetContainment())))

    table = Table(
        ["workload", "m", "lower_bound", "round_robin", "hash", "greedy", "optimal"],
        title=f"Sub-joins executed under {p}x{q} balanced partitionings",
    )
    grids = []
    for name, graph in cases:
        rr = round_robin_partitioning(graph, p, q).cost(graph)
        hp_part = hash_partitioning(graph, p, q)
        hp = hp_part.cost(graph)
        gr = greedy_partitioning(graph, p, q).cost(graph)
        try:
            opt = optimal_partitioning_bruteforce(graph, p, q).cost(graph)
        except InstanceTooLargeError:
            opt = "-"
        table.add_row(
            [name, graph.num_edges, cell_capacity_lower_bound(graph, p, q),
             rr, hp, gr, opt]
        )
        grids.append((name, graph, hp_part))

    print(table.render())

    print("\nhash-partitioning cell grids (# = sub-join executed):")
    for name, graph, part in grids:
        print(f"\n[{name}]")
        print(render_partitioning(graph, part))

    left, right = uniform_rectangles_workload(12, 12, extent=30.0, mean_side=6.0, seed=5)
    graph = build_join_graph(left, right, SpatialOverlap())
    report = replication_grid_partitioning(graph, p, q)
    print(
        f"\nPBSM-style replication alternative on spatial input: "
        f"{report.active_subjoins} sub-joins at the price of "
        f"{report.replicas} replicated tuples — the 'replication of data' "
        f"trade-off the paper's intro criticizes in spatial join algorithms."
    )


if __name__ == "__main__":
    main()
