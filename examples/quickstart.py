"""Quickstart: the pebble game model in five minutes.

Builds a tiny equijoin, extracts its join graph, solves the pebbling
problem, and replays the optimal scheme move by move — the complete
pipeline of the paper's model on one screen.

Run:  python examples/quickstart.py
"""

from repro import (
    Equality,
    PebbleGame,
    Relation,
    build_join_graph,
    solve,
)


def main() -> None:
    # 1. Two single-column relations (multisets, per the paper's §2).
    orders = Relation("orders", [10, 10, 20, 30, 30])
    customers = Relation("customers", [10, 20, 20, 40])
    print(f"R = {orders.values}")
    print(f"S = {customers.values}")

    # 2. The join graph: one vertex per tuple, one edge per joining pair.
    graph = build_join_graph(orders, customers, Equality())
    print(f"\njoin graph: {graph}")
    print(f"result tuples (m): {graph.num_edges}")

    # 3. Solve PEBBLE.  Equijoin graphs route to the linear-time perfect
    #    pebbler (Theorems 3.2/4.1): pi equals m, one move per result.
    result = solve(graph)
    print(f"\nsolver: {result.summary()}")
    assert result.effective_cost == graph.num_edges  # perfect pebbling

    # 4. Replay the scheme through the two-pebble game.
    game = PebbleGame(graph.without_isolated_vertices())
    game.replay(result.scheme)
    print(f"game won: {game.is_won()} in {game.moves_used} pebble moves")

    print("\nmove log:")
    for event in game.log:
        note = f"deleted {event.deleted_edge}" if event.deleted_edge else ""
        print(f"  move {event.move_number:2d}: pebble {event.pebble} -> "
              f"{event.destination} {note}")


if __name__ == "__main__":
    main()
