"""Temporal joins: sessions, intervals, and the one-dimension worst case.

Joins two session logs on time overlap ("which ad impressions coincided
with which browsing sessions"), compares the temporal merge join against
the generic spatial algorithms inside the pebbling model, and finishes
with the library's 1D finding: even plain intervals realize the paper's
worst-case family, because same-relation overlaps are invisible to the
join graph.

Run:  python examples/temporal_sessions.py
"""

from repro import SpatialOverlap, build_join_graph, solve
from repro.analysis.report import Table
from repro.geometry.interval import realize_worst_case_intervals
from repro.joins.algorithms import (
    interval_merge_join,
    plane_sweep_join,
    rtree_join,
)
from repro.joins.trace import trace_report
from repro.relations.relation import Relation
from repro.workloads.spatial import sessions_interval_workload


def main() -> None:
    sessions, impressions = sessions_interval_workload(
        60, 60, horizon=500.0, mean_length=25.0, seed=11
    )
    graph = build_join_graph(sessions, impressions, SpatialOverlap())
    print(
        f"sessions x impressions: {len(sessions)} x {len(impressions)} "
        f"intervals, {graph.num_edges} overlapping pairs"
    )

    table = Table(
        ["algorithm", "m", "pi", "pi/m", "jumps"],
        title="Temporal join algorithms in the pebbling model",
    )
    for name, algo in (
        ("interval-merge", interval_merge_join),
        ("plane-sweep", plane_sweep_join),
        ("rtree", rtree_join),
    ):
        report = trace_report(graph, algo(sessions, impressions), name)
        table.add_row(
            [name, report.output_size, report.effective_cost,
             round(report.cost_ratio, 4), report.jumps]
        )
    print(table.render())

    # The 1D worst case: nesting realizes G_n with plain intervals.
    print("\nThe 1D worst case (nesting construction):")
    left_values, right_values = realize_worst_case_intervals(6)
    worst_graph = build_join_graph(
        Relation("R", left_values), Relation("S", right_values), SpatialOverlap()
    )
    result = solve(worst_graph)
    m = worst_graph.num_edges
    print(
        f"G_6 as a temporal join: m = {m}, optimal pi = "
        f"{result.effective_cost} = 1.25m - 1 — no join algorithm, temporal "
        f"or otherwise, can pebble this instance perfectly (Theorem 3.3)."
    )


if __name__ == "__main__":
    main()
