"""A guided tour of the paper's hardness machinery (§4).

Walks the full reduction chain on a concrete instance:

1. a TSP-4(1,2) instance;
2. the diamond-gadget reduction to TSP-3(1,2) (Theorem 4.3, Fig 2) —
   including the shipped gadget's machine-checked certificate;
3. the incidence-graph reduction to PEBBLE (Theorem 4.4);
4. solving the final pebbling instance and mapping the solution all the
   way back, measuring the L-reduction constants along the way.

Run:  python examples/hardness_tour.py
"""

from repro.analysis.report import Table
from repro.graphs.simple import Graph
from repro.core.gadgets import default_gadget
from repro.core.reductions import (
    Tsp12Instance,
    forward_tour,
    measure_diamond_reduction,
    measure_incidence_reduction,
    pebble_scheme_to_tsp_tour,
    reverse_tour,
    tsp3_to_pebble,
    tsp4_to_tsp3,
)
from repro.core.solvers.exact import solve_exact


def main() -> None:
    # -- 0. the shipped diamond gadget ------------------------------------
    gadget = default_gadget()
    cert = gadget.certify()
    print(f"diamond gadget: {gadget}")
    print(f"  degree bound ok:      {cert.degree_ok}")
    print(f"  endpoint property ok: {cert.endpoints_ok}")
    print(f"  corner pairs:         {6 - len(gadget.missing_pairs())}/6 "
          f"(missing {gadget.missing_pairs()})")
    print(
        "  note: the exhaustive template search proves no gadget on <= 14\n"
        "  nodes satisfies all three Fig-2 properties simultaneously; the\n"
        "  reduction compensates with one extra jump when the missing pair\n"
        "  would be needed (see EXPERIMENTS.md, E-T4.3)."
    )

    # -- 1. a TSP-4(1,2) instance -----------------------------------------
    source = Tsp12Instance(
        Graph(edges=[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4), (1, 3)])
    )
    tour, cost = source.optimal_tour()
    print(f"\nTSP-4(1,2) source: n={source.num_nodes}, "
          f"max degree={source.max_good_degree}, OPT={cost}, tour={tour}")

    # -- 2. diamond reduction to TSP-3(1,2) --------------------------------
    reduction = tsp4_to_tsp3(source)
    print(f"\nafter diamond reduction: n={reduction.target.num_nodes}, "
          f"max degree={reduction.target.max_good_degree}")
    lifted = forward_tour(reduction, tour)
    print(f"lifted tour cost: {reduction.target.tour_cost(lifted)}")
    recovered = reverse_tour(reduction, lifted)
    print(f"recovered source tour cost: {source.tour_cost(recovered)}")
    diamond_report = measure_diamond_reduction(reduction)
    print(f"measured alpha={diamond_report.alpha_observed:.2f} "
          f"(bound {gadget.num_nodes + 1}), beta={diamond_report.beta_observed:.2f} "
          f"(paper: 1)")

    # -- 3. incidence reduction to PEBBLE ----------------------------------
    incidence = tsp3_to_pebble(reduction.target)
    b = incidence.join_graph
    print(f"\nincidence join graph B: {len(b.left)} vertices x "
          f"{len(b.right)} edge-nodes, m={b.num_edges}")

    # -- 4. solve PEBBLE and map back ---------------------------------------
    result = solve_exact(b, node_budget=2_000_000)
    print(f"optimal pebbling of B: pi={result.effective_cost} "
          f"(jumps={result.jumps})")
    back = pebble_scheme_to_tsp_tour(incidence, result.scheme)
    print(f"tour of TSP-3 instance recovered from the scheme: "
          f"cost={reduction.target.tour_cost(back)}")
    incidence_report = measure_incidence_reduction(incidence)

    table = Table(
        ["reduction", "OPT(src)", "OPT(tgt)", "alpha_obs", "beta_obs"],
        title="L-reduction constants on this instance (Def 4.2)",
    )
    table.add_row(
        ["TSP-4 -> TSP-3 (diamond)", diamond_report.opt_source,
         diamond_report.opt_target, round(diamond_report.alpha_observed, 3),
         round(diamond_report.beta_observed, 3)]
    )
    table.add_row(
        ["TSP-3 -> PEBBLE (incidence)", incidence_report.opt_source,
         incidence_report.opt_target, round(incidence_report.alpha_observed, 3),
         round(incidence_report.beta_observed, 3)]
    )
    print()
    print(table.render())
    print(
        "\nConsequence (Thm 4.4 + PCP): unless P = NP there is an eps0 > 0\n"
        "such that PEBBLE cannot be approximated within 1 + eps0 — the gap\n"
        "these executable reductions transport."
    )


if __name__ == "__main__":
    main()
