"""Page-fetch scheduling: the pebble game's database-systems lineage.

The model descends from Merrett–Kambayashi–Yasuura (paper reference [6]),
where graph nodes are disk pages and the two pebbles are two memory
frames.  This example packs two relations into pages, builds the page
connection graph, and compares page-fetch counts of a good schedule
(pebbling solver) against a naive schedule — the I/O story behind the
abstract costs.

Run:  python examples/page_fetch_scheduling.py
"""

import random

from repro.analysis.report import Table
from repro.core.scheme import PebblingScheme
from repro.core.solvers.registry import solve
from repro.relations.relation import Relation
from repro.relations.storage import (
    PagedRelation,
    page_connection_graph,
    schedule_report,
)


def main() -> None:
    rng = random.Random(42)
    # Orders clustered by customer id; customers stored by id.
    orders = Relation("orders", sorted(rng.randrange(12) for _ in range(48)))
    customers = Relation("customers", list(range(12)) * 2)

    paged_orders = PagedRelation(orders, page_size=8)
    paged_customers = PagedRelation(customers, page_size=4)
    graph = page_connection_graph(
        paged_orders, paged_customers, lambda a, b: a == b
    )
    print(
        f"{paged_orders.num_pages} order pages x "
        f"{paged_customers.num_pages} customer pages, "
        f"{graph.num_edges} joining page pairs"
    )

    working = graph.without_isolated_vertices()

    # A good schedule: the pebbling solver.
    good = solve(working)
    good_report = schedule_report(working, good.scheme)

    # A naive schedule: visit joining page pairs in arbitrary sorted order.
    naive_scheme = PebblingScheme.from_edge_order(working, working.edges())
    naive_report = schedule_report(working, naive_scheme)

    table = Table(
        ["schedule", "page pairs", "fetches", "fetches per pair"],
        title="Two-frame page-fetch schedules (the [6] view of pebbling)",
    )
    table.add_row(
        ["pebbling solver", good_report.page_pairs, good_report.fetches,
         round(good_report.overhead, 3)]
    )
    table.add_row(
        ["naive order", naive_report.page_pairs, naive_report.fetches,
         round(naive_report.overhead, 3)]
    )
    print(table.render())
    saved = naive_report.fetches - good_report.fetches
    print(f"\nthe good schedule saves {saved} page fetches "
          f"({saved / max(naive_report.fetches, 1):.0%}).")


if __name__ == "__main__":
    main()
