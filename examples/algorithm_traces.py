"""Real join algorithms, measured inside the pebbling model.

Every join algorithm emits its result pairs in some order; that order *is*
a pebbling scheme (paper §2: any algorithm must consider each joining pair
at some point).  This example traces six algorithms across the three
predicate classes and ranks them by pebbling cost — making precise the
paper's remark that the merge phase of sort-merge join "resembles this
pebbling game".

Run:  python examples/algorithm_traces.py
"""

from repro import Equality, SetContainment, SpatialOverlap, build_join_graph
from repro.analysis.report import Table
from repro.joins.algorithms import (
    block_nested_loops,
    hash_join,
    index_nested_loops,
    inverted_index_join,
    pbsm_join,
    plane_sweep_join,
    rtree_join,
    signature_nested_loops,
    sort_merge_join,
)
from repro.joins.trace import trace_report
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.sets import zipf_sets_workload
from repro.workloads.spatial import clustered_rectangles_workload


def main() -> None:
    table = Table(
        ["workload", "algorithm", "m", "pi", "pi/m", "jumps"],
        title="Join algorithm executions as pebbling schemes",
    )

    # --- equijoin -------------------------------------------------------
    left, right = zipf_equijoin_workload(50, 50, key_universe=10, skew=1.0, seed=7)
    graph = build_join_graph(left, right, Equality())
    for name, output in (
        ("sort-merge", sort_merge_join(left, right)),
        ("hash", hash_join(left, right)),
        ("index-NL", index_nested_loops(left, right)),
        ("block-NL", block_nested_loops(left, right, Equality(), block_size=10)),
    ):
        report = trace_report(graph, output, name)
        table.add_row(["equijoin/zipf", name, report.output_size,
                       report.effective_cost, round(report.cost_ratio, 4),
                       report.jumps])

    # --- spatial overlap --------------------------------------------------
    left, right = clustered_rectangles_workload(40, 40, clusters=4, seed=7)
    graph = build_join_graph(left, right, SpatialOverlap())
    for name, output in (
        ("plane-sweep", plane_sweep_join(left, right)),
        ("rtree", rtree_join(left, right)),
        ("pbsm", pbsm_join(left, right)),
    ):
        report = trace_report(graph, output, name)
        table.add_row(["spatial/clustered", name, report.output_size,
                       report.effective_cost, round(report.cost_ratio, 4),
                       report.jumps])

    # --- set containment --------------------------------------------------
    left, right = zipf_sets_workload(
        30, 30, universe=12, left_size=2, right_size=6, seed=7
    )
    graph = build_join_graph(left, right, SetContainment())
    for name, output in (
        ("signature-NL", signature_nested_loops(left, right)),
        ("inverted-index", inverted_index_join(left, right)),
    ):
        report = trace_report(graph, output, name)
        table.add_row(["containment/zipf", name, report.output_size,
                       report.effective_cost, round(report.cost_ratio, 4),
                       report.jumps])

    print(table.render())
    print(
        "\nReading: on equijoins sort-merge achieves the perfect ratio 1.0 "
        "(its merge enumeration IS the Lemma 3.2 boustrophedon), while "
        "probe-order algorithms pay a jump per outer-tuple group.  On the "
        "other predicates every practical emission order pays jumps — and "
        "on worst-case instances some jumps are unavoidable (Thm 3.3)."
    )


if __name__ == "__main__":
    main()
