"""The paper's headline result, on realistic workloads.

Compares the intrinsic pebbling difficulty of the three join predicate
classes:

- an equijoin (Zipf-skewed keys)        -> always pi/m = 1.0;
- a spatial overlap join (map overlay)  -> usually close to 1, but the
  worst-case family realized as rectangles is forced above 1;
- a set-containment join (market baskets + the Lemma 3.3 worst case)
  -> the adversarial instance provably cannot beat ~1.25.

Run:  python examples/join_predicate_showdown.py
"""

from repro import (
    Equality,
    SetContainment,
    SpatialOverlap,
    build_join_graph,
    solve,
)
from repro.analysis.report import Table
from repro.geometry.realize import realize_worst_case_family
from repro.sets.realize import realize_worst_case_containment
from repro.workloads.equijoin import zipf_equijoin_workload
from repro.workloads.sets import market_basket_workload
from repro.workloads.spatial import map_overlay_workload


def main() -> None:
    table = Table(
        ["workload", "predicate", "m", "pi", "pi/m", "optimal?"],
        title="Intrinsic pebbling difficulty by join predicate class",
    )

    cases = [
        (
            "zipf keys",
            Equality(),
            zipf_equijoin_workload(60, 60, key_universe=15, skew=1.0, seed=1),
        ),
        (
            "map overlay",
            SpatialOverlap(),
            map_overlay_workload(tiles_left=4, tiles_right=5, seed=1),
        ),
        (
            "worst-case rectangles (G_8)",
            SpatialOverlap(),
            realize_worst_case_family(8),
        ),
        (
            "market baskets",
            SetContainment(),
            market_basket_workload(20, 25, catalog=40, hit_fraction=0.8, seed=1),
        ),
        (
            "worst-case sets (G_8, Lemma 3.3)",
            SetContainment(),
            realize_worst_case_containment(8),
        ),
    ]

    for name, predicate, (left, right) in cases:
        graph = build_join_graph(left, right, predicate)
        result = solve(graph, exact_edge_limit=24)
        m = graph.num_edges
        table.add_row(
            [
                name,
                predicate.name,
                m,
                result.effective_cost,
                round(result.effective_cost / m, 4) if m else 1.0,
                result.optimal,
            ]
        )

    print(table.render())
    print(
        "\nReading: equijoins always pebble perfectly (ratio 1.0) — "
        "Theorem 3.2.\nSpatial-overlap and set-containment joins are "
        "universal (Lemmas 3.3/3.4), so adversarial instances force the "
        "ratio toward 1.25 — Theorem 3.3 — and no algorithm, however "
        "clever, can do better on them."
    )


if __name__ == "__main__":
    main()
