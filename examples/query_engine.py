"""The query engine: plan, execute, and EXPLAIN ANALYZE with pebbling.

Shows the adoption-facing layer: describe joins, let the planner pick the
algorithm from the predicate class and statistics, execute, and read an
explain line that includes the execution's *pebbling* accounting — the
paper's model as a first-class plan metric.

Run:  python examples/query_engine.py
"""

from repro import Equality, SetContainment, SpatialOverlap
from repro.engine import JoinQuery, execute, plan
from repro.engine.stats import collect_stats
from repro.workloads.equijoin import fk_pk_workload, zipf_equijoin_workload
from repro.workloads.sets import market_basket_workload
from repro.workloads.spatial import clustered_rectangles_workload


def main() -> None:
    queries = [
        JoinQuery(*zipf_equijoin_workload(40, 40, key_universe=8, skew=1.2, seed=4), Equality()),
        JoinQuery(*fk_pk_workload(60, 50, seed=4), Equality()),
        JoinQuery(
            *clustered_rectangles_workload(30, 30, clusters=3, seed=4), SpatialOverlap()
        ),
        JoinQuery(
            *market_basket_workload(15, 20, catalog=50, hit_fraction=0.7, seed=4),
            SetContainment(),
        ),
    ]

    for query in queries:
        left_stats = collect_stats(query.left)
        print(f"-- {query.describe()}")
        print(
            f"   stats: left distinct={left_stats.distinct}, "
            f"duplication={left_stats.duplication_factor:.2f}"
        )
        chosen = plan(query)
        result = execute(query, chosen)
        print(f"   {result.explain_analyze()}")
        print(f"   first rows: {result.rows[:3]}")
        print()

    print(
        "Note the equijoin plans: large-output joins route to sort-merge, "
        "whose\nemission order pebbles perfectly (ratio 1.000) — "
        "Theorem 3.2 showing up\nas an execution metric."
    )


if __name__ == "__main__":
    main()
