"""The worst-case family G_n across every substrate: a gallery.

One graph, four realizations: the Theorem 3.3 family is built as a set-
containment instance (Lemma 3.3), as rectangles (Lemma 3.4), as universal
comb polygons, and as nested 1D intervals — each checked to produce the
same join graph and the same optimal pebbling cost, and the two geometric
ones written out as SVG files you can open in a browser.

Run:  python examples/worst_case_gallery.py
"""

from repro import SetContainment, SpatialOverlap, build_join_graph, solve
from repro.analysis.render import render_bipartite, render_scheme
from repro.analysis.report import Table
from repro.analysis.svg import join_graph_svg, spatial_instance_svg
from repro.core.families import worst_case_effective_cost, worst_case_family
from repro.geometry.interval import realize_worst_case_intervals
from repro.geometry.realize import (
    realize_bipartite_with_combs,
    realize_worst_case_family,
)
from repro.relations.relation import Relation
from repro.sets.realize import realize_worst_case_containment

N = 4


def main() -> None:
    family = worst_case_family(N)
    print(f"G_{N}: the Theorem 3.3 worst case (m = {family.num_edges})")
    print(render_bipartite(family))
    print()

    realizations = [
        ("set containment (Lemma 3.3)", SetContainment(),
         realize_worst_case_containment(N)),
        ("rectangles (Lemma 3.4)", SpatialOverlap(),
         realize_worst_case_family(N)),
        ("comb polygons (universal)", SpatialOverlap(),
         realize_bipartite_with_combs(family)),
    ]
    interval_left, interval_right = realize_worst_case_intervals(N)
    realizations.append(
        ("nested intervals (1D)", SpatialOverlap(),
         (Relation("R", interval_left), Relation("S", interval_right)))
    )

    table = Table(
        ["realization", "m", "pi", "formula 2n+ceil((n-2)/2)"],
        title=f"Four faces of G_{N}: same graph, same optimal cost",
    )
    expected = worst_case_effective_cost(N)
    for name, predicate, (left, right) in realizations:
        graph = build_join_graph(left, right, predicate)
        result = solve(graph)
        assert result.effective_cost == expected, name
        table.add_row([name, graph.num_edges, result.effective_cost, expected])
    print(table.render())

    # Write the geometric realizations as SVGs.
    rect_left, rect_right = realize_worst_case_family(N)
    with open(f"g{N}_rectangles.svg", "w") as handle:
        handle.write(spatial_instance_svg(rect_left, rect_right))
    comb_left, comb_right = realize_bipartite_with_combs(family)
    with open(f"g{N}_combs.svg", "w") as handle:
        handle.write(spatial_instance_svg(comb_left, comb_right))
    result = solve(family)
    with open(f"g{N}_graph.svg", "w") as handle:
        handle.write(join_graph_svg(family, result.scheme))
    print(
        f"\nwrote g{N}_rectangles.svg, g{N}_combs.svg, g{N}_graph.svg "
        f"(join graph with optimal visit order)"
    )

    print("\noptimal scheme timeline:")
    print(render_scheme(family, result.scheme))


if __name__ == "__main__":
    main()
